"""E1 — CFD violation-detection time vs. number of tuples.

Source shape (Fan et al., TODS / Semandaq): detection cost grows roughly
linearly with the relation size, and the SQL-generation path agrees with
the direct index-based path on which tuples are violating.
"""

from __future__ import annotations

import time

import pytest

from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.detection.cfd_detect import CFDDetector, SQLCFDDetector
from repro.relational.database import Database

from conftest import print_series

SIZES = [1000, 2000, 4000, 8000]
NOISE_RATE = 0.05


def _workload(size: int):
    generator = CustomerGenerator(seed=101)
    clean = generator.generate(size)
    dirty = inject_noise(clean, rate=NOISE_RATE,
                         attributes=["street", "city"], seed=size).dirty
    return dirty, generator.canonical_cfds()


@pytest.mark.parametrize("size", SIZES)
def test_e01_direct_detection_scaling(benchmark, size):
    """Direct (index-based) detection at each relation size."""
    relation, cfds = _workload(size)
    report = benchmark(lambda: CFDDetector(relation, cfds).detect())
    assert not report.is_clean()


@pytest.mark.parametrize("size", [1000, 4000])
def test_e01_sql_detection_scaling(benchmark, size):
    """SQL-generation detection (the Semandaq path) at two sizes."""
    relation, cfds = _workload(size)
    database = Database()
    database.add(relation)
    report = benchmark.pedantic(
        lambda: SQLCFDDetector(database, cfds).detect(), rounds=1, iterations=1)
    assert not report.is_clean()


def test_e01_series_and_path_agreement(benchmark):
    """Print the figure series and check the two paths find the same tuples."""

    def compute():
        rows = []
        for size in SIZES:
            relation, cfds = _workload(size)
            database = Database()
            database.add(relation)

            started = time.perf_counter()
            direct = CFDDetector(relation, cfds).detect()
            direct_seconds = time.perf_counter() - started

            started = time.perf_counter()
            via_sql = SQLCFDDetector(database, cfds).detect()
            sql_seconds = time.perf_counter() - started

            assert direct.violating_tids() == via_sql.violating_tids()
            rows.append([size, len(direct), direct_seconds, sql_seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_series(
        "E1: CFD detection time vs. number of tuples (noise 5%)",
        ["tuples", "violations", "direct_s", "sql_s"], rows)

    # shape check: roughly linear growth (8x data should stay well under 32x time)
    assert rows[-1][2] < rows[0][2] * 40
