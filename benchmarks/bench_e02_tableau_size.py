"""E2 — CFD detection time vs. pattern-tableau size.

Source shape (Fan et al., TODS): with the relation size fixed, detection
cost grows roughly linearly with the number of pattern tuples in the CFD's
tableau.
"""

from __future__ import annotations

import time

import pytest

from repro.constraints.cfd import merge_cfds
from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.detection.cfd_detect import CFDDetector

from conftest import print_series

TABLEAU_SIZES = [1, 4, 16, 48]
RELATION_SIZE = 4000


def _relation():
    generator = CustomerGenerator(seed=202)
    clean = generator.generate(RELATION_SIZE)
    return inject_noise(clean, rate=0.05, attributes=["street"], seed=7).dirty


def _merged_cfd(patterns: int):
    cfds = CustomerGenerator.extended_cfds(patterns)
    merged = merge_cfds(cfds)
    assert len(merged) == 1
    return merged


@pytest.mark.parametrize("patterns", TABLEAU_SIZES)
def test_e02_detection_vs_tableau_size(benchmark, patterns):
    relation = _relation()
    cfds = _merged_cfd(patterns)
    benchmark(lambda: CFDDetector(relation, cfds).detect())


def test_e02_series(benchmark):
    relation = _relation()

    def compute():
        rows = []
        for patterns in TABLEAU_SIZES:
            cfds = _merged_cfd(patterns)
            started = time.perf_counter()
            report = CFDDetector(relation, cfds).detect()
            seconds = time.perf_counter() - started
            rows.append([patterns, len(report), seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E2: detection time vs. tableau size (4000 tuples, noise 5%)",
                 ["patterns", "violations", "seconds"], rows)
    # shape: more patterns cover more of the data, so violations do not decrease
    assert rows[-1][1] >= rows[0][1]
