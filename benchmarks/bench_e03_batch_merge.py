"""E3 — merged-tableau (batch) detection vs. one detection pass per CFD.

Source shape (Fan et al., Semandaq): when many CFDs share an embedded FD,
detecting them together over a merged tableau beats issuing one scan per
CFD, by a margin that widens with the number of CFDs.
"""

from __future__ import annotations

import time

import pytest

from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.detection.batch import BatchCFDDetector

from conftest import print_series

CFD_COUNTS = [4, 16, 48]
RELATION_SIZE = 3000


def _workload(cfd_count: int):
    generator = CustomerGenerator(seed=303)
    clean = generator.generate(RELATION_SIZE)
    dirty = inject_noise(clean, rate=0.05, attributes=["street"], seed=11).dirty
    return dirty, CustomerGenerator.extended_cfds(cfd_count)


@pytest.mark.parametrize("cfd_count", CFD_COUNTS)
def test_e03_batch_merged_detection(benchmark, cfd_count):
    relation, cfds = _workload(cfd_count)
    detector = BatchCFDDetector(relation, cfds)
    benchmark(detector.detect)


@pytest.mark.parametrize("cfd_count", CFD_COUNTS)
def test_e03_naive_per_cfd_detection(benchmark, cfd_count):
    relation, cfds = _workload(cfd_count)
    detector = BatchCFDDetector(relation, cfds)
    benchmark.pedantic(detector.detect_naive, rounds=2, iterations=1)


def test_e03_series(benchmark):
    def compute():
        rows = []
        for cfd_count in CFD_COUNTS:
            relation, cfds = _workload(cfd_count)
            detector = BatchCFDDetector(relation, cfds)

            started = time.perf_counter()
            merged = detector.detect()
            merged_seconds = time.perf_counter() - started

            started = time.perf_counter()
            naive = detector.detect_naive()
            naive_seconds = time.perf_counter() - started

            assert merged.violating_tids() == naive.violating_tids()
            rows.append([cfd_count, merged_seconds, naive_seconds,
                         naive_seconds / merged_seconds if merged_seconds else float("inf")])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E3: merged-tableau vs. per-CFD detection (3000 tuples)",
                 ["cfds", "merged_s", "per_cfd_s", "speedup"], rows)
    # shape: the merged path wins, and the margin grows with the number of CFDs
    assert rows[-1][3] > 1.0
    assert rows[-1][3] >= rows[0][3]
