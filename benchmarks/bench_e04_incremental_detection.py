"""E4 — incremental detection vs. full re-detection as the delta grows.

Source shape: incremental maintenance wins clearly for small deltas and
the advantage narrows as the delta approaches a large fraction of the base
relation.
"""

from __future__ import annotations

import time

import pytest

from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.detection.incremental import IncrementalCFDDetector

from conftest import print_series

BASE_SIZE = 3000
DELTA_FRACTIONS = [0.01, 0.05, 0.20, 0.50]


def _base_and_delta(fraction: float):
    generator = CustomerGenerator(seed=404)
    total = int(BASE_SIZE * (1 + fraction))
    clean = generator.generate(total)
    dirty = inject_noise(clean, rate=0.05, attributes=["street", "city"], seed=13).dirty
    tids = dirty.tids()
    base = dirty.filter(lambda t: t.tid in set(tids[:BASE_SIZE]), name="customer")
    delta_rows = [dirty.tuple(tid).as_dict() for tid in tids[BASE_SIZE:]]
    return base, delta_rows, generator.canonical_cfds()


@pytest.mark.parametrize("fraction", [0.01, 0.20])
def test_e04_incremental_insertions(benchmark, fraction):
    base, delta_rows, cfds = _base_and_delta(fraction)

    def run():
        detector = IncrementalCFDDetector(base.copy(), cfds)
        for row in delta_rows:
            detector.insert_tuple(row)
        return detector

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_e04_series(benchmark):
    def compute():
        rows = []
        for fraction in DELTA_FRACTIONS:
            base, delta_rows, cfds = _base_and_delta(fraction)

            # incremental: build once on the base (not timed), then apply the delta
            detector = IncrementalCFDDetector(base.copy(), cfds)
            started = time.perf_counter()
            for row in delta_rows:
                detector.insert_tuple(row)
            incremental_seconds = time.perf_counter() - started

            # full re-detection over base + delta
            combined = base.copy()
            for row in delta_rows:
                combined.insert_dict(row)
            started = time.perf_counter()
            full_report = IncrementalCFDDetector(combined, cfds).current_report()
            full_seconds = time.perf_counter() - started

            assert detector.current_report().violating_tids() == full_report.violating_tids()
            rows.append([f"{fraction:.0%}", len(delta_rows),
                         incremental_seconds, full_seconds,
                         full_seconds / incremental_seconds if incremental_seconds else 0.0])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E4: incremental vs. full detection (base 3000 tuples)",
                 ["delta", "inserted", "incremental_s", "full_s", "speedup"], rows)
    # shape: incremental wins for small deltas
    assert rows[0][4] > 1.0
