"""E5 — repair quality (precision / recall) vs. noise rate.

Source shape (Cong et al., VLDB 2007): precision and recall degrade
gracefully as the noise rate grows, staying far above a random-correction
baseline; an ablation compares the violation-resolution orderings of
BatchRepair.
"""

from __future__ import annotations

import pytest

from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.repair.batch_repair import BatchRepair
from repro.repair.quality import evaluate_repair

from conftest import print_series

NOISE_RATES = [0.01, 0.03, 0.06, 0.10, 0.20]
RELATION_SIZE = 1500


def _workload(rate: float, seed: int = 29):
    # many locations -> small groups per (cc, zip), so majority resolution is
    # genuinely challenged as the noise rate grows (as in the paper's data)
    generator = CustomerGenerator(seed=505, locations=400)
    clean = generator.generate(RELATION_SIZE)
    noise = inject_noise(clean, rate=rate, attributes=["street", "city"], seed=seed)
    return generator, clean, noise


@pytest.mark.parametrize("rate", [0.03, 0.10])
def test_e05_repair_at_noise_rate(benchmark, rate):
    generator, clean, noise = _workload(rate)
    result = benchmark.pedantic(
        lambda: BatchRepair(noise.dirty.copy(), generator.canonical_cfds()).repair(),
        rounds=1, iterations=1)
    assert result.converged


def test_e05_series(benchmark):
    def compute():
        rows = []
        for rate in NOISE_RATES:
            generator, clean, noise = _workload(rate)
            cfds = generator.canonical_cfds()
            result = BatchRepair(noise.dirty, cfds).repair()
            quality = evaluate_repair(clean, noise.dirty, result.relation)
            rows.append([f"{rate:.0%}", quality.errors, len(result.changes),
                         quality.precision, quality.recall, quality.f1])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E5: repair quality vs. noise rate (1500 tuples)",
                 ["noise", "errors", "changes", "precision", "recall", "f1"], rows)
    # shape: useful quality at low noise, graceful degradation as noise grows
    assert rows[0][4] > 0.6          # recall at 1% noise
    assert rows[-1][4] <= rows[0][4] + 0.05
    assert rows[-1][3] > 0.3         # precision still useful at 20% noise


def test_e05_ordering_ablation(benchmark):
    """Ablation: resolution ordering inside BatchRepair (DESIGN.md #3)."""

    def compute():
        generator, clean, noise = _workload(0.05)
        cfds = generator.canonical_cfds()
        rows = []
        for ordering in BatchRepair.ORDERINGS:
            result = BatchRepair(noise.dirty.copy(), cfds, ordering=ordering).repair()
            quality = evaluate_repair(clean, noise.dirty, result.relation)
            rows.append([ordering, quality.precision, quality.recall, result.passes])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E5 (ablation): resolution ordering at 5% noise",
                 ["ordering", "precision", "recall", "passes"], rows)
    assert all(row[2] > 0.4 for row in rows)
