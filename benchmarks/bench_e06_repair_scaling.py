"""E6 — repair time vs. relation size.

Source shape (Cong et al.): repair time grows superlinearly but stays
practical at the sizes of the experiments; the number of changed cells
tracks the number of injected errors.
"""

from __future__ import annotations

import time

import pytest

from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.repair.batch_repair import BatchRepair

from conftest import print_series

SIZES = [500, 1000, 2000, 4000]
NOISE_RATE = 0.05


def _workload(size: int):
    generator = CustomerGenerator(seed=606)
    clean = generator.generate(size)
    noise = inject_noise(clean, rate=NOISE_RATE, attributes=["street", "city"], seed=size)
    return noise.dirty, generator.canonical_cfds(), len(noise.errors)


@pytest.mark.parametrize("size", [500, 2000])
def test_e06_repair_scaling(benchmark, size):
    dirty, cfds, _ = _workload(size)
    benchmark.pedantic(lambda: BatchRepair(dirty.copy(), cfds).repair(),
                       rounds=1, iterations=1)


def test_e06_series(benchmark):
    def compute():
        rows = []
        for size in SIZES:
            dirty, cfds, errors = _workload(size)
            started = time.perf_counter()
            result = BatchRepair(dirty, cfds).repair()
            seconds = time.perf_counter() - started
            rows.append([size, errors, len(result.changes), result.passes, seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E6: repair time vs. relation size (noise 5%)",
                 ["tuples", "errors", "changes", "passes", "seconds"], rows)
    # shape: time grows with size but stays laptop-feasible
    assert rows[-1][4] < 120
    assert rows[-1][4] >= rows[0][4]
