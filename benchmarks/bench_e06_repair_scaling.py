"""E6 — repair time vs. relation size, string path vs. dictionary path.

Source shape (Cong et al.): repair time grows superlinearly but stays
practical at the sizes of the experiments; the number of changed cells
tracks the number of injected errors.

Since the dictionary-coded repair core, ``BatchRepair`` runs on column
codes by default (compiled pattern tests, per-code string caches, a
memoised ``(code, code)`` distance cache) while ``use_columns=False``
keeps the original row/string implementation.  The speedup series below
records both, asserts the repairs are byte-identical at every size, and
requires the dictionary path to be at least :data:`SPEEDUP_TARGET` times
faster at the largest size — this is an algorithmic (single-process)
speedup, so no CPU-count gate applies.
"""

from __future__ import annotations

import time

import pytest

from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.repair.batch_repair import BatchRepair

from conftest import print_series

SIZES = [500, 1000, 2000, 4000]
NOISE_RATE = 0.05
SPEEDUP_TARGET = 1.5


def _workload(size: int):
    generator = CustomerGenerator(seed=606)
    clean = generator.generate(size)
    noise = inject_noise(clean, rate=NOISE_RATE, attributes=["street", "city"], seed=size)
    return noise.dirty, generator.canonical_cfds(), len(noise.errors)


def _identical(left, right) -> bool:
    return (left.changes == right.changes and left.cost == right.cost
            and left.passes == right.passes and left.converged == right.converged)


@pytest.mark.parametrize("size", [500, 2000])
def test_e06_repair_scaling(benchmark, size):
    dirty, cfds, _ = _workload(size)
    benchmark.pedantic(lambda: BatchRepair(dirty.copy(), cfds).repair(),
                       rounds=1, iterations=1)


def test_e06_parity(benchmark):
    """Dictionary-path repairs are byte-identical to the string path."""
    dirty, cfds, _ = _workload(500)

    def compute():
        strings = BatchRepair(dirty, cfds, use_columns=False).repair()
        codes = BatchRepair(dirty, cfds, use_columns=True).repair()
        chunked = BatchRepair(dirty, cfds, use_columns=True, engine="serial").repair()
        assert _identical(codes, strings)
        assert _identical(chunked, strings)
        return codes

    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert result.changes and result.converged


def test_e06_series(benchmark):
    def compute():
        rows = []
        for size in SIZES:
            dirty, cfds, errors = _workload(size)
            started = time.perf_counter()
            result = BatchRepair(dirty, cfds).repair()
            seconds = time.perf_counter() - started
            rows.append([size, errors, len(result.changes), result.passes, seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E6: repair time vs. relation size (noise 5%)",
                 ["tuples", "errors", "changes", "passes", "seconds"], rows)
    # shape: time grows with size but stays laptop-feasible
    assert rows[-1][4] < 120
    assert rows[-1][4] >= rows[0][4]


def test_e06_dictionary_speedup(benchmark):
    """String path vs. dictionary path; ≥ 1.5x at the largest size."""
    def compute():
        rows = []
        for size in SIZES:
            dirty, cfds, _ = _workload(size)
            started = time.perf_counter()
            strings = BatchRepair(dirty, cfds, use_columns=False).repair()
            string_s = time.perf_counter() - started
            started = time.perf_counter()
            codes = BatchRepair(dirty, cfds, use_columns=True).repair()
            dict_s = time.perf_counter() - started
            assert _identical(codes, strings)
            rows.append([size, len(codes.changes), string_s, dict_s, string_s / dict_s])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E6: string-path vs. dictionary-path repair (noise 5%)",
                 ["tuples", "changes", "string_s", "dict_s", "speedup"], rows)

    benchmark.extra_info["speedups"] = {str(r[0]): round(r[4], 2) for r in rows}
    benchmark.extra_info["speedup_largest"] = round(rows[-1][4], 2)

    assert rows[-1][4] >= SPEEDUP_TARGET, (
        f"dictionary-path repair reached only {rows[-1][4]:.2f}x over the string "
        f"path at {SIZES[-1]} tuples (target {SPEEDUP_TARGET}x)")
