"""E7 — IncRepair vs. BatchRepair as the delta grows (crossover).

Source shape (Cong et al.): repairing only the delta against a clean base
is much cheaper for small deltas; as the delta approaches a significant
fraction of the base, re-running the batch repair becomes competitive.
"""

from __future__ import annotations

import time

import pytest

from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.repair.batch_repair import BatchRepair
from repro.repair.inc_repair import IncRepair

from conftest import print_series

BASE_SIZE = 2000
DELTA_FRACTIONS = [0.01, 0.05, 0.20, 0.40]


def _workload(fraction: float):
    generator = CustomerGenerator(seed=707)
    cfds = generator.canonical_cfds()
    delta_size = int(BASE_SIZE * fraction)
    clean = generator.generate(BASE_SIZE + delta_size)
    noise = inject_noise(clean, rate=0.05, attributes=["street", "city"], seed=31)
    dirty = noise.dirty
    tids = dirty.tids()
    base = dirty.filter(lambda t: t.tid in set(tids[:BASE_SIZE]), name="customer")
    clean_base = BatchRepair(base, cfds).repair().relation
    delta_rows = [dirty.tuple(tid).as_dict() for tid in tids[BASE_SIZE:]]
    return clean_base, delta_rows, cfds


@pytest.mark.parametrize("fraction", [0.01, 0.20])
def test_e07_increpair(benchmark, fraction):
    clean_base, delta_rows, cfds = _workload(fraction)

    def run():
        combined = clean_base.copy()
        delta_tids = [combined.insert_dict(row) for row in delta_rows]
        return IncRepair(combined, cfds).repair_delta(delta_tids)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_e07_series(benchmark):
    rounds = 3  # repairs run in milliseconds; best-of-N tames scheduler noise

    def compute():
        rows = []
        for fraction in DELTA_FRACTIONS:
            clean_base, delta_rows, cfds = _workload(fraction)

            incremental_seconds = float("inf")
            for _ in range(rounds):
                combined = clean_base.copy()
                delta_tids = [combined.insert_dict(row) for row in delta_rows]
                started = time.perf_counter()
                IncRepair(combined, cfds).repair_delta(delta_tids)
                incremental_seconds = min(incremental_seconds,
                                          time.perf_counter() - started)

            batch_seconds = float("inf")
            for _ in range(rounds):
                full = clean_base.copy()
                for row in delta_rows:
                    full.insert_dict(row)
                started = time.perf_counter()
                BatchRepair(full, cfds).repair()
                batch_seconds = min(batch_seconds, time.perf_counter() - started)

            rows.append([f"{fraction:.0%}", len(delta_rows), incremental_seconds,
                         batch_seconds,
                         batch_seconds / incremental_seconds if incremental_seconds else 0.0])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E7: IncRepair vs. BatchRepair as the delta grows (base 2000 tuples)",
                 ["delta", "inserted", "increpair_s", "batch_s", "speedup"], rows)
    # shape: IncRepair beats BatchRepair at every delta.  Since the columnar
    # core cut IncRepair's fixed per-pass index costs, its advantage no longer
    # shrinks sharply with the delta on laptop-sized workloads; only require
    # that it does not *grow* beyond noise (the crossover proper needs the
    # repair layer itself to go columnar — see ROADMAP open items).
    assert all(row[4] > 1.0 for row in rows)
    assert rows[-1][4] <= rows[0][4] * 1.5
