"""E8 — CIND violation detection scaling.

Source shape (Bravo, Fan & Ma, VLDB 2007): CIND detection is a
condition-filtered anti-join and scales roughly linearly with the number
of tuples; the number of reported violations matches the number injected.
"""

from __future__ import annotations

import time

import pytest

from repro.datagen.orders import OrdersGenerator
from repro.detection.cind_detect import CINDDetector

from conftest import print_series

SIZES = [2000, 4000, 8000, 16000]
VIOLATION_RATE = 0.05


def _workload(size: int):
    generator = OrdersGenerator(seed=808)
    database, expected = generator.generate(cd_count=size, violation_rate=VIOLATION_RATE)
    return database, expected, [generator.canonical_cind()]


@pytest.mark.parametrize("size", [2000, 8000])
def test_e08_cind_detection(benchmark, size):
    database, expected, cinds = _workload(size)
    report = benchmark(lambda: CINDDetector(database, cinds).detect())
    assert len(report.cind_violations()) == expected


def test_e08_series(benchmark):
    def compute():
        rows = []
        for size in SIZES:
            database, expected, cinds = _workload(size)
            started = time.perf_counter()
            report = CINDDetector(database, cinds).detect()
            seconds = time.perf_counter() - started
            assert len(report.cind_violations()) == expected
            rows.append([size, expected, len(report.cind_violations()), seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E8: CIND detection vs. number of CD tuples (violation rate 5%)",
                 ["cd_tuples", "injected", "detected", "seconds"], rows)
    # shape: roughly linear — 8x the data well under 32x the time
    assert rows[-1][3] < rows[0][3] * 40
