"""E9 — CFD discovery runtime and output size vs. data size and support.

Source shape (CFDMiner / CTANE line of work): runtime grows with the
relation size; the number of discovered constant CFDs falls as the support
threshold rises; everything discovered actually holds on the data.

The string-vs-code series compares discovery on the columnar substrate
(memoized tid sets, stripped array-backed partitions with the per-relation
cache) against the historical row/string path (``use_columns=False``):
identical CFD lists, and the measured speedup lands in the benchmark JSON
``extra_info`` with a >= 1.5x floor asserted at the largest size.
"""

from __future__ import annotations

import time

import pytest

from repro.datagen.customer import CustomerGenerator
from repro.detection.cfd_detect import detect_cfd_violations
from repro.discovery.cfd_discovery import CFDDiscovery

from conftest import print_series

SIZES = [200, 400, 800]
SUPPORTS = [3, 10, 40]


def _relation(size: int):
    return CustomerGenerator(seed=909).generate(size)


@pytest.mark.parametrize("size", SIZES)
def test_e09_discovery_scaling(benchmark, size):
    relation = _relation(size)
    benchmark.pedantic(
        lambda: CFDDiscovery(relation, min_support=5, max_lhs_size=2).discover(),
        rounds=1, iterations=1)


def test_e09_series_support_sweep(benchmark):
    def compute():
        relation = _relation(400)
        rows = []
        for support in SUPPORTS:
            discovery = CFDDiscovery(relation, min_support=support, max_lhs_size=2)
            started = time.perf_counter()
            constant = discovery.discover_constant_cfds()
            variable = discovery.discover_variable_cfds()
            seconds = time.perf_counter() - started
            for cfd in constant[:10] + variable[:10]:
                assert detect_cfd_violations(relation, [cfd]).is_clean()
            rows.append([support, len(constant), len(variable), seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E9: discovered CFDs vs. support threshold (400 tuples)",
                 ["min_support", "constant_cfds", "variable_cfds", "seconds"], rows)
    # shape: higher support -> fewer constant CFDs
    assert rows[-1][1] <= rows[0][1]


def test_e09_series_size_sweep(benchmark):
    def compute():
        rows = []
        for size in SIZES:
            relation = _relation(size)
            started = time.perf_counter()
            discovered = CFDDiscovery(relation, min_support=5, max_lhs_size=2).discover()
            seconds = time.perf_counter() - started
            rows.append([size, len(discovered), seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E9: discovery runtime vs. relation size (support 5)",
                 ["tuples", "cfds", "seconds"], rows)
    assert rows[-1][2] >= rows[0][2]


def test_e09_string_vs_code_speedup(benchmark):
    """Columnar discovery vs the historical string path: parity plus speedup."""
    def compute():
        rows = []
        for size in SIZES:
            relation = _relation(size)
            started = time.perf_counter()
            strings = CFDDiscovery(relation, min_support=5, max_lhs_size=2,
                                   use_columns=False).discover()
            string_seconds = time.perf_counter() - started
            started = time.perf_counter()
            code = CFDDiscovery(relation, min_support=5, max_lhs_size=2).discover()
            code_seconds = time.perf_counter() - started
            # identical output lists, names and order included
            assert [repr(c) for c in code] == [repr(c) for c in strings]
            rows.append([size, len(code), string_seconds, code_seconds,
                         string_seconds / code_seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E9: discovery on codes vs. the string path (support 5)",
                 ["tuples", "cfds", "string_s", "code_s", "speedup"], rows)
    benchmark.extra_info["speedups"] = {str(r[0]): round(r[4], 2) for r in rows}
    benchmark.extra_info["speedup_largest"] = round(rows[-1][4], 2)
    assert rows[-1][4] >= 1.5
