"""E10 — record-matching quality: derived RCKs vs. exact key equality.

Source shape (§4 of the tutorial / Fan et al. on record matching): on
dirty data, matching with the *derived* relative candidate keys finds
strictly more true matches (higher recall) than requiring exact equality
on the full attribute list, at comparable precision; blocking cuts the
number of compared pairs dramatically without hurting quality.
"""

from __future__ import annotations

import pytest

from repro.datagen.cards import CardBillingGenerator
from repro.matching.derivation import derive_rcks
from repro.matching.evaluation import evaluate_matching
from repro.matching.matcher import RecordMatcher
from repro.matching.rck import RelativeCandidateKey
from repro.matching.rules import Comparator, MatchingRule

from conftest import print_series

TARGET = ["fn", "ln", "addr", "phn", "email"]
DIRTY_RATES = [0.1, 0.2, 0.3, 0.4]
HOLDERS = 250


def _rules():
    return [
        MatchingRule.build([Comparator.equality("phn")], ["addr"], name="a"),
        MatchingRule.build([Comparator.equality("email")], ["fn", "ln"], name="b"),
        MatchingRule.build(
            [Comparator.equality("ln"), Comparator.equality("addr"),
             Comparator.similar("fn", threshold=0.7)], TARGET, name="c"),
    ]


def _exact_key():
    return [RelativeCandidateKey.build([Comparator.equality(a) for a in TARGET],
                                       TARGET, name="exact")]


def _workload(dirty_rate: float):
    return CardBillingGenerator(seed=1010).generate(
        holders=HOLDERS, billings_per_holder=1, dirty_rate=dirty_rate)


@pytest.mark.parametrize("dirty_rate", [0.2, 0.4])
def test_e10_rck_matching(benchmark, dirty_rate):
    workload = _workload(dirty_rate)
    rcks = derive_rcks(_rules(), TARGET)
    matcher = RecordMatcher(workload.card, workload.billing, rcks, blocking=("ln", "ln"))
    benchmark.pedantic(matcher.match, rounds=1, iterations=1)


def test_e10_series_quality(benchmark):
    def compute():
        rcks = derive_rcks(_rules(), TARGET)
        rows = []
        for dirty_rate in DIRTY_RATES:
            workload = _workload(dirty_rate)
            exact = RecordMatcher(workload.card, workload.billing, _exact_key(),
                                  blocking=("cno", "cno"))
            derived = RecordMatcher(workload.card, workload.billing, rcks,
                                    blocking=("cno", "cno"))
            exact_quality = evaluate_matching(exact.matched_pairs(), workload.true_matches)
            derived_quality = evaluate_matching(derived.matched_pairs(), workload.true_matches)
            rows.append([f"{dirty_rate:.0%}",
                         exact_quality.recall, derived_quality.recall,
                         derived_quality.precision, derived_quality.f1])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E10: match quality — exact key vs. derived RCKs",
                 ["dirty", "recall_exact", "recall_rck", "precision_rck", "f1_rck"], rows)
    # shape: derived RCKs recover matches exact equality misses, at high precision
    for row in rows:
        assert row[2] >= row[1]
        assert row[3] > 0.9
    assert rows[-1][2] > rows[-1][1]


def test_e10_blocking_ablation(benchmark):
    def compute():
        rcks = derive_rcks(_rules(), TARGET)
        workload = _workload(0.3)
        rows = []
        for label, blocking in (("none", None), ("by last name", ("ln", "ln")),
                                ("by card number", ("cno", "cno"))):
            matcher = RecordMatcher(workload.card, workload.billing, rcks, blocking=blocking)
            quality = evaluate_matching(matcher.matched_pairs(), workload.true_matches)
            rows.append([label, matcher.candidate_pairs_examined,
                         quality.recall, quality.precision])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E10 (ablation): blocking strategy (dirty rate 30%)",
                 ["blocking", "pairs_compared", "recall", "precision"], rows)
    # blocking examines far fewer pairs
    assert rows[1][1] < rows[0][1]
