"""E11 — consistent query answering: certain vs. naive answers, rewriting overhead.

Source shape (Arenas et al. / Chomicki): certain answers are a subset of
the naive answers; the first-order rewriting computes them without
enumerating repairs and scales linearly, while enumeration blows up with
the number of conflicting groups.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.cqa.answer import CQAEngine, SelectionQuery
from repro.cqa.repairs import count_key_repairs
from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema

from conftest import print_series

SIZES = [1000, 2000, 4000]


def _account_relation(size: int, conflict_rate: float = 0.05, seed: int = 3) -> Relation:
    """An account relation keyed by acct with a controllable fraction of conflicts."""
    rng = random.Random(seed)
    schema = RelationSchema("account", [
        Attribute("acct"), Attribute("owner"), Attribute("city")])
    relation = Relation(schema)
    cities = ["edi", "ldn", "nyc", "mh", "gla"]
    for index in range(size):
        owner = f"owner{index % 97}"
        city = rng.choice(cities)
        relation.insert_dict({"acct": f"a{index}", "owner": owner, "city": city})
        if rng.random() < conflict_rate:
            # a conflicting duplicate with a different city
            other_city = rng.choice([c for c in cities if c != city])
            relation.insert_dict({"acct": f"a{index}", "owner": owner, "city": other_city})
    return relation


QUERY = SelectionQuery(project=("owner",), equalities={"city": "edi"})


@pytest.mark.parametrize("size", [1000, 4000])
def test_e11_rewriting(benchmark, size):
    relation = _account_relation(size)
    engine = CQAEngine(relation, ["acct"])
    benchmark(lambda: engine.certain_answers_rewritten(QUERY))


def test_e11_series(benchmark):
    def compute():
        rows = []
        for size in SIZES:
            relation = _account_relation(size)
            engine = CQAEngine(relation, ["acct"])

            started = time.perf_counter()
            naive = engine.naive_answers(QUERY)
            naive_seconds = time.perf_counter() - started

            started = time.perf_counter()
            certain = engine.certain_answers_rewritten(QUERY)
            rewriting_seconds = time.perf_counter() - started

            assert certain <= naive
            rows.append([size, count_key_repairs(relation, ["acct"]),
                         len(naive), len(certain), naive_seconds, rewriting_seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E11: certain vs. naive answers (5% conflicting keys)",
                 ["tuples", "repair_count", "naive", "certain", "naive_s", "rewriting_s"], rows)
    # shape: the number of repairs explodes while the rewriting stays linear-ish
    assert rows[-1][1] > 10 ** 6
    assert rows[-1][5] < 5.0


def test_e11_rewriting_matches_enumeration_on_small_data(benchmark):
    def compute():
        relation = _account_relation(60, conflict_rate=0.08, seed=11)
        engine = CQAEngine(relation, ["acct"])
        enumerated = engine.certain_answers(QUERY, max_repairs=100000)
        rewritten = engine.certain_answers_rewritten(QUERY)
        assert enumerated == rewritten
        return [[len(relation), count_key_repairs(relation, ["acct"]),
                 len(enumerated), len(rewritten)]]

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E11 (oracle check): enumeration vs. rewriting on small data",
                 ["tuples", "repairs", "certain_enumerated", "certain_rewritten"], rows)
