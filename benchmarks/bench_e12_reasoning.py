"""E12 — CFD satisfiability / implication analysis time vs. number of CFDs.

Source shape (Fan et al., TODS): the static analyses stay fast for the
constraint-set sizes used in practice (tens to a few hundred CFDs); the
cost grows with the number of constant patterns.
"""

from __future__ import annotations

import time

import pytest

from repro.constraints.cfd import CFD
from repro.constraints.reasoning import implies, is_satisfiable, minimal_cover
from repro.datagen.customer import CustomerGenerator

from conftest import print_series

CFD_COUNTS = [10, 50, 150, 400]


def _cfd_set(count: int) -> list[CFD]:
    """A mixed CFD set: constant zip patterns plus a few variable CFDs."""
    cfds = CustomerGenerator.extended_cfds(min(count, 58))
    index = 0
    while len(cfds) < count:
        cfds.append(CFD.single("customer", ["cc", "zip"], ["street"],
                               {"cc": "01", "zip": f"Z{index}"}))
        index += 1
    return cfds[:count]


@pytest.mark.parametrize("count", [10, 150])
def test_e12_satisfiability(benchmark, count):
    cfds = _cfd_set(count)
    assert benchmark(lambda: is_satisfiable(cfds))


def test_e12_series(benchmark):
    def compute():
        rows = []
        candidate = CFD.single("customer", ["cc", "zip"], ["street"], {"cc": "44"})
        general = CFD.single("customer", ["cc", "zip"], ["street"])
        for count in CFD_COUNTS:
            cfds = _cfd_set(count)

            started = time.perf_counter()
            satisfiable = is_satisfiable(cfds)
            satisfiability_seconds = time.perf_counter() - started

            started = time.perf_counter()
            implied = implies(cfds + [general], candidate)
            implication_seconds = time.perf_counter() - started

            assert satisfiable and implied
            rows.append([count, satisfiability_seconds, implication_seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E12: CFD reasoning time vs. number of CFDs",
                 ["cfds", "satisfiability_s", "implication_s"], rows)
    assert rows[-1][1] < 30


def test_e12_minimal_cover(benchmark):
    def compute():
        cfds = _cfd_set(40) + [CFD.single("customer", ["cc", "zip"], ["street"])]
        cover = minimal_cover(cfds)
        # the all-wildcard CFD subsumes every constant zip pattern on the same FD
        assert len(cover) < len(cfds)
        return [[len(cfds), len(cover)]]

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E12 (cover): minimal cover size", ["input_cfds", "cover_size"], rows)
