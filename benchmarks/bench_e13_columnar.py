"""E13 — columnar vs. row-at-a-time CFD detection.

Companion to E1: the same noisy-customer workload, detected twice — once
with the dictionary-encoded columnar path (the default) and once with the
original row path (``use_columns=False``).  The series reports the
per-size speedup and asserts the columnar path wins by a wide margin at
the largest size; both paths must return byte-identical reports.

The measured speedups land in the JSON emitted with
``--benchmark-json`` via ``benchmark.extra_info``.
"""

from __future__ import annotations

import time

import pytest

from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.detection.cfd_detect import CFDDetector

from conftest import print_series

SIZES = [1000, 2000, 4000, 8000]
NOISE_RATE = 0.05
ROUNDS = 3


def _workload(size: int):
    generator = CustomerGenerator(seed=101)
    clean = generator.generate(size)
    dirty = inject_noise(clean, rate=NOISE_RATE,
                         attributes=["street", "city"], seed=size).dirty
    return dirty, generator.canonical_cfds()


def _time(callable_, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


@pytest.mark.parametrize("size", [1000, 8000])
def test_e13_columnar_detection(benchmark, size):
    """Columnar detection timing at the two endpoint sizes."""
    relation, cfds = _workload(size)
    relation.columns  # build the store once; steady-state cost is what E13 measures
    report = benchmark(lambda: CFDDetector(relation, cfds).detect())
    assert not report.is_clean()


def test_e13_row_vs_columnar_series(benchmark):
    """Print the speedup series; parity and a >=3x win at the largest size."""

    def compute():
        rows = []
        for size in SIZES:
            relation, cfds = _workload(size)

            columnar_report = CFDDetector(relation, cfds).detect()
            row_report = CFDDetector(relation, cfds, use_columns=False).detect()
            assert [(v.cfd, v.pattern, v.tids) for v in columnar_report] == \
                [(v.cfd, v.pattern, v.tids) for v in row_report]

            columnar_s = _time(lambda: CFDDetector(relation, cfds).detect())
            row_s = _time(lambda: CFDDetector(relation, cfds,
                                              use_columns=False).detect())
            rows.append([size, len(columnar_report), row_s, columnar_s,
                         row_s / columnar_s])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_series(
        "E13: row vs. columnar CFD detection (noise 5%)",
        ["tuples", "violations", "row_s", "columnar_s", "speedup"], rows)

    benchmark.extra_info["speedups"] = {str(row[0]): round(row[4], 2) for row in rows}
    benchmark.extra_info["speedup_largest"] = round(rows[-1][4], 2)

    # acceptance: the columnar path is at least 3x faster at the largest size
    assert rows[-1][4] >= 3.0
