"""E14 — chunked/parallel detection vs. the sequential columnar baseline.

Companion to E13: the same noisy-customer workload, detected with the
sequential columnar path (the PR 1 baseline) and with the chunked engine
on the multiprocessing backend in steady state (one detector, worker
pool warm, state broadcast once — the serving configuration the
ROADMAP's north star describes).

Two sequential timings are reported so the comparison is not confounded
by plan caching: ``cold`` constructs a fresh detector per run (exactly
how E13 records the PR 1 columnar baseline — index rebuilt every time)
and ``warm`` reuses one detector (cached indexes).  The acceptance
assertion compares warm-parallel against the E13-convention cold
baseline; both ratios land in the benchmark JSON via
``benchmark.extra_info``.

Every configuration must return **byte-identical** reports; that part is
asserted unconditionally (and is what the CI smoke job runs).  The
≥ 1.5x speedup assertion at the largest E1 size only applies on a
multi-core runner (≥ 4 CPUs) — on fewer cores the numbers are recorded
but cannot meaningfully beat Amdahl.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.detection.cfd_detect import CFDDetector

from conftest import print_series

SIZES = [1000, 2000, 4000, 8000]
NOISE_RATE = 0.05
ROUNDS = 5
SPEEDUP_TARGET = 1.5
MIN_CPUS_FOR_TARGET = 4


def _workload(size: int):
    generator = CustomerGenerator(seed=101)
    clean = generator.generate(size)
    dirty = inject_noise(clean, rate=NOISE_RATE,
                         attributes=["street", "city"], seed=size).dirty
    return dirty, generator.canonical_cfds()


def _time(callable_, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def _fingerprint(report):
    return [(v.cfd, v.pattern, v.tids) for v in report]


def test_e14_parity(benchmark):
    """Chunked serial and parallel reports are byte-identical to sequential."""
    relation, cfds = _workload(1000)

    def compute():
        sequential = CFDDetector(relation, cfds, engine="sequential").detect()
        serial = CFDDetector(relation, cfds, engine="serial").detect()
        parallel = CFDDetector(relation, cfds, engine="parallel", workers=2).detect()
        assert _fingerprint(serial) == _fingerprint(sequential)
        assert _fingerprint(parallel) == _fingerprint(sequential)
        return sequential

    report = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert not report.is_clean()


def test_e14_parallel_speedup(benchmark, monkeypatch):
    """Sequential vs. parallel series; ≥ 1.5x at the largest size on ≥ 4 cores."""
    # measure the true multiprocessing path at every size in the series
    monkeypatch.setenv("REPRO_PARALLEL_THRESHOLD", "0")
    workers = os.cpu_count() or 1

    def compute():
        rows = []
        for size in SIZES:
            relation, cfds = _workload(size)

            # baselines pin engine="sequential" so an inherited REPRO_ENGINE
            # cannot silently turn the comparison into parallel-vs-parallel
            sequential_report = CFDDetector(relation, cfds,
                                            engine="sequential").detect()
            warm_detector = CFDDetector(relation, cfds, engine="sequential")
            warm_detector.detect()  # warm-up: indexes built and cached
            parallel_detector = CFDDetector(relation, cfds,
                                            engine="parallel", workers=workers)
            parallel_report = parallel_detector.detect()  # warm-up + broadcast
            assert _fingerprint(parallel_report) == _fingerprint(sequential_report)

            cold_s = _time(lambda: CFDDetector(relation, cfds,
                                               engine="sequential").detect())
            warm_s = _time(warm_detector.detect)
            parallel_s = _time(parallel_detector.detect)
            rows.append([size, len(sequential_report), cold_s, warm_s, parallel_s,
                         cold_s / parallel_s, warm_s / parallel_s])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    print_series(
        f"E14: sequential vs. parallel chunked CFD detection "
        f"({workers} workers, noise 5%)",
        ["tuples", "violations", "seq_cold_s", "seq_warm_s", "parallel_s",
         "speedup_cold", "speedup_warm"], rows)

    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["speedups_vs_cold"] = {str(r[0]): round(r[5], 2) for r in rows}
    benchmark.extra_info["speedups_vs_warm"] = {str(r[0]): round(r[6], 2) for r in rows}
    benchmark.extra_info["speedup_largest"] = round(rows[-1][5], 2)

    if workers >= MIN_CPUS_FOR_TARGET:
        assert rows[-1][5] >= SPEEDUP_TARGET, (
            f"parallel engine reached only {rows[-1][5]:.2f}x over the columnar "
            f"baseline at the largest size with {workers} workers "
            f"(target {SPEEDUP_TARGET}x)")
    else:
        pytest.skip(f"speedup target needs >= {MIN_CPUS_FOR_TARGET} CPUs "
                    f"(found {workers}); recorded speedup "
                    f"{rows[-1][5]:.2f}x at {SIZES[-1]} tuples")
