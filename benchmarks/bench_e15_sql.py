"""E15 — code-native SQL execution vs. the row-at-a-time path.

The MonetDB/X100 and C-Store compressed-execution argument applied to this
engine's SQL layer: a single-table range-filtered GROUP BY with a full
aggregate complement runs once on the retained row path
(``use_columns=False`` — ``_ExecRow`` binding dicts, value-at-a-time
evaluation) and once on the code-native pipeline (dictionary-code filters,
grouping on code tuples, aggregates on codes).  Result relations are
asserted identical at every size; the measured speedup lands in the
benchmark JSON ``extra_info`` with a >= 1.5x floor asserted at the
largest size.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql.engine import SQLEngine
from repro.relational.types import NULL, AttributeType

from conftest import print_series

SIZES = [500, 1000, 2000, 4000]

SCHEMA = RelationSchema("t", [
    Attribute("city", AttributeType.STRING),
    Attribute("zip", AttributeType.STRING),
    Attribute("amount", AttributeType.INTEGER),
    Attribute("score", AttributeType.FLOAT),
])

QUERY = ("SELECT zip, COUNT(*) AS n, COUNT(DISTINCT city) AS cities, "
         "MIN(amount) AS lo, MAX(amount) AS hi, SUM(amount) AS total, "
         "AVG(score) AS mean FROM t "
         "WHERE amount >= 100 AND amount < 900 GROUP BY zip ORDER BY zip")


def _database(size: int) -> Database:
    rng = random.Random(1500 + size)
    relation = Relation(SCHEMA)
    for _ in range(size):
        relation.insert([
            NULL if rng.random() < 0.05 else f"city_{rng.randrange(25)}",
            f"zip_{rng.randrange(40)}",
            rng.randrange(1000),
            round(rng.random() * 100, 3),
        ])
    database = Database()
    database.add(relation)
    return database


def _fingerprint(result):
    return ([a.name for a in result.schema.attributes],
            [t.values for t in result])


@pytest.mark.parametrize("size", SIZES)
def test_e15_sql_groupby_scaling(benchmark, size):
    database = _database(size)
    engine = SQLEngine(database)
    benchmark.pedantic(lambda: engine.query(QUERY), rounds=3, iterations=1)


def test_e15_row_vs_code_parity(benchmark):
    """Smoke: identical results across row, code and chunked-engine paths."""
    def compute():
        database = _database(1000)
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        serial = SQLEngine(database, engine="serial")
        queries = [
            QUERY,
            "SELECT city, amount FROM t WHERE amount BETWEEN 200 AND 400 "
            "ORDER BY amount DESC, city LIMIT 50",
            "SELECT DISTINCT zip FROM t WHERE city NOT IN ('city_1', 'city_2')",
        ]
        for sql in queries:
            expected = _fingerprint(row.query(sql))
            assert row.last_plan == "row"
            assert _fingerprint(code.query(sql)) == expected
            assert code.last_plan == "code"
            assert _fingerprint(serial.query(sql)) == expected
        return len(queries)

    assert benchmark.pedantic(compute, rounds=1, iterations=1) == 3


def test_e15_row_vs_code_groupby_speedup(benchmark):
    """The headline series: row path vs. code-native pipeline, with parity."""
    def compute():
        rows = []
        for size in SIZES:
            database = _database(size)
            row_engine = SQLEngine(database, use_columns=False)
            code_engine = SQLEngine(database)
            started = time.perf_counter()
            row_result = row_engine.query(QUERY)
            row_seconds = time.perf_counter() - started
            started = time.perf_counter()
            code_result = code_engine.query(QUERY)
            code_seconds = time.perf_counter() - started
            assert _fingerprint(code_result) == _fingerprint(row_result)
            rows.append([size, len(code_result), row_seconds, code_seconds,
                         row_seconds / code_seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E15: GROUP BY + aggregates, row path vs. codes",
                 ["tuples", "groups", "row_s", "code_s", "speedup"], rows)
    benchmark.extra_info["speedups"] = {str(r[0]): round(r[4], 2) for r in rows}
    benchmark.extra_info["speedup_largest"] = round(rows[-1][4], 2)
    assert rows[-1][4] >= 1.5
