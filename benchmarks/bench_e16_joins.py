"""E16 — code-native joins and CIND anti-joins vs. the string/row paths.

The cross-relation half of the compressed-execution argument: an INNER
JOIN with grouped aggregates runs once on the retained row path
(``use_columns=False`` — ``_ExecRow`` merges, value-at-a-time hashing)
and once as an integer hash join over dictionary-bridge translations;
CIND detection runs once row-at-a-time (string keys per tuple) and once
as the bridged-code anti-join.  Results are asserted identical at every
size; the measured speedups land in the benchmark JSON ``extra_info``
with a >= 1.5x floor asserted at the largest size.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.constraints.cind import CIND
from repro.constraints.tableau import PatternTuple
from repro.detection.cind_detect import CINDDetector
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql.engine import SQLEngine
from repro.relational.types import NULL, AttributeType

from conftest import print_series

SIZES = [500, 1000, 2000, 4000]

ORDERS = RelationSchema("orders", [
    Attribute("city", AttributeType.STRING),
    Attribute("zip", AttributeType.STRING),
    Attribute("amount", AttributeType.INTEGER),
    Attribute("score", AttributeType.FLOAT),
])
ZIPS = RelationSchema("zips", [
    Attribute("zip", AttributeType.STRING),
    Attribute("region", AttributeType.STRING),
    Attribute("pop", AttributeType.INTEGER),
])

JOIN_QUERY = ("SELECT z.region, COUNT(*) AS n, MIN(o.amount) AS lo, "
              "MAX(o.amount) AS hi, SUM(z.pop) AS pop, AVG(o.score) AS mean "
              "FROM orders o JOIN zips z ON o.zip = z.zip "
              "WHERE o.amount >= 100 AND o.amount < 900 "
              "GROUP BY z.region ORDER BY region")

CIND_CONSTRAINT = CIND("orders", ["zip"], "zips", ["zip"],
                       PatternTuple({}), PatternTuple({"region": "region_0"}))


def _database(size: int) -> Database:
    rng = random.Random(1600 + size)
    orders = Relation(ORDERS)
    for _ in range(size):
        orders.insert([
            NULL if rng.random() < 0.05 else f"city_{rng.randrange(25)}",
            f"zip_{rng.randrange(60)}",
            rng.randrange(1000),
            round(rng.random() * 100, 3),
        ])
    zips = Relation(ZIPS)
    for _ in range(size // 4):
        zips.insert([
            f"zip_{rng.randrange(80)}",  # partial overlap with the orders pool
            f"region_{rng.randrange(4)}",
            rng.randrange(10_000),
        ])
    database = Database()
    database.add(orders)
    database.add(zips)
    return database


def _fingerprint(result):
    return ([a.name for a in result.schema.attributes],
            [t.values for t in result])


def _violation_tids(report):
    return [v.tid for v in report.violations]


@pytest.mark.parametrize("size", SIZES)
def test_e16_join_scaling(benchmark, size):
    database = _database(size)
    engine = SQLEngine(database)
    benchmark.pedantic(lambda: engine.query(JOIN_QUERY), rounds=3, iterations=1)


def test_e16_join_and_cind_parity(benchmark):
    """Smoke: identical join results and CIND reports across all paths."""
    def compute():
        database = _database(1000)
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        serial = SQLEngine(database, engine="serial")
        queries = [
            JOIN_QUERY,
            "SELECT o.city, z.region FROM orders o JOIN zips z "
            "ON o.zip = z.zip WHERE o.amount < 300 ORDER BY city, region LIMIT 80",
            "SELECT DISTINCT z.region FROM orders o JOIN zips z ON o.zip = z.zip",
        ]
        for sql in queries:
            expected = _fingerprint(row.query(sql))
            assert row.last_plan == "row"
            assert _fingerprint(code.query(sql)) == expected
            assert code.last_plan == "join"
            assert _fingerprint(serial.query(sql)) == expected
        expected_tids = _violation_tids(
            CINDDetector(database, [CIND_CONSTRAINT], use_columns=False).detect())
        for kwargs in ({}, {"engine": "serial"}):
            report = CINDDetector(database, [CIND_CONSTRAINT], **kwargs).detect()
            assert _violation_tids(report) == expected_tids
        return len(queries)

    assert benchmark.pedantic(compute, rounds=1, iterations=1) == 3


def test_e16_row_vs_code_join_speedup(benchmark):
    """The headline series: row-path join vs. the integer hash join."""
    def compute():
        rows = []
        for size in SIZES:
            database = _database(size)
            row_engine = SQLEngine(database, use_columns=False)
            code_engine = SQLEngine(database)
            code_engine.query(JOIN_QUERY)  # steady state: caches + bridges built
            started = time.perf_counter()
            row_result = row_engine.query(JOIN_QUERY)
            row_seconds = time.perf_counter() - started
            started = time.perf_counter()
            code_result = code_engine.query(JOIN_QUERY)
            code_seconds = time.perf_counter() - started
            assert _fingerprint(code_result) == _fingerprint(row_result)
            assert code_engine.last_plan == "join"
            rows.append([size, len(code_result), row_seconds, code_seconds,
                         row_seconds / code_seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E16: grouped equi join, row path vs. bridged codes",
                 ["tuples", "groups", "row_s", "code_s", "speedup"], rows)
    benchmark.extra_info["speedups"] = {str(r[0]): round(r[4], 2) for r in rows}
    benchmark.extra_info["speedup_largest"] = round(rows[-1][4], 2)
    assert rows[-1][4] >= 1.5


def test_e16_string_vs_code_cind_speedup(benchmark):
    """CIND anti-join: per-tuple string keys vs. bridged canonical codes."""
    def compute():
        rows = []
        for size in SIZES:
            database = _database(size)
            strings = CINDDetector(database, [CIND_CONSTRAINT], use_columns=False)
            codes = CINDDetector(database, [CIND_CONSTRAINT])
            codes.detect()  # steady state: code sets + bridges built
            started = time.perf_counter()
            string_report = strings.detect()
            string_seconds = time.perf_counter() - started
            started = time.perf_counter()
            code_report = codes.detect()
            code_seconds = time.perf_counter() - started
            assert _violation_tids(code_report) == _violation_tids(string_report)
            rows.append([size, len(code_report.violations), string_seconds,
                         code_seconds, string_seconds / code_seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E16: CIND anti-join, string keys vs. bridged codes",
                 ["tuples", "violations", "string_s", "code_s", "speedup"], rows)
    benchmark.extra_info["cind_speedups"] = {str(r[0]): round(r[4], 2) for r in rows}
    benchmark.extra_info["cind_speedup_largest"] = round(rows[-1][4], 2)
    assert rows[-1][4] >= 1.5
