"""E17 — multiway (3-table) joins: leapfrog on rank arrays vs. the alternatives.

The N-ary half of the compressed-execution argument: a 3-table chain
join with grouped aggregates runs once on the retained row path
(``use_columns=False`` — left-deep ``_ExecRow`` pipeline), once as the
leapfrog-style sorted-intersection join over shared-code rank arrays,
and once as a cascade of two 2-table hash joins with the intermediate
result materialised into a temporary database.  Results are asserted
identical at every size; the measured speedups land in the benchmark
JSON ``extra_info`` with a >= 1.5x floor (row vs. multiway) asserted at
the largest size.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql.engine import SQLEngine
from repro.relational.types import NULL, AttributeType

from conftest import print_series

SIZES = [500, 1000, 2000, 4000]

ORDERS = RelationSchema("orders", [
    Attribute("city", AttributeType.STRING),
    Attribute("zip", AttributeType.STRING),
    Attribute("country", AttributeType.STRING),
    Attribute("amount", AttributeType.INTEGER),
    Attribute("score", AttributeType.FLOAT),
])
ZIPS = RelationSchema("zips", [
    Attribute("zip", AttributeType.STRING),
    Attribute("region", AttributeType.STRING),
    Attribute("pop", AttributeType.INTEGER),
])
REGIONS = RelationSchema("regions", [
    Attribute("region", AttributeType.STRING),
    Attribute("country", AttributeType.STRING),
    Attribute("gdp", AttributeType.FLOAT),
])

MULTI_QUERY = ("SELECT r.country, COUNT(*) AS n, MIN(o.amount) AS lo, "
               "MAX(z.pop) AS hi, SUM(o.amount) AS s, AVG(o.score) AS mean "
               "FROM orders o, zips z, regions r "
               "WHERE o.zip = z.zip AND z.region = r.region "
               "AND o.amount >= 100 AND o.amount < 900 "
               "GROUP BY r.country ORDER BY country")


def _database(size: int) -> Database:
    rng = random.Random(1700 + size)
    orders = Relation(ORDERS)
    for _ in range(size):
        orders.insert([
            NULL if rng.random() < 0.05 else f"city_{rng.randrange(25)}",
            f"zip_{rng.randrange(60)}",
            f"country_{rng.randrange(6)}",
            rng.randrange(1000),
            round(rng.random() * 100, 3),
        ])
    zips = Relation(ZIPS)
    for _ in range(size // 4):
        zips.insert([
            f"zip_{rng.randrange(80)}",  # partial overlap with the orders pool
            f"region_{rng.randrange(12)}",
            rng.randrange(10_000),
        ])
    regions = Relation(REGIONS)
    for _ in range(size // 16):
        regions.insert([
            f"region_{rng.randrange(16)}",
            f"country_{rng.randrange(8)}",
            round(rng.random() * 5, 3),
        ])
    database = Database()
    database.add(orders)
    database.add(zips)
    database.add(regions)
    return database


def _fingerprint(result):
    return ([a.name for a in result.schema.attributes],
            [t.values for t in result])


def _cascade(database: Database) -> "tuple[object, float]":
    """The 2-table baseline: hash-join o⋈z, materialise, hash-join with r.

    Both hops run on the code-native hash-join path; the cost under
    measurement is the intermediate materialisation the multiway plan
    avoids.
    """
    engine = SQLEngine(database)
    started = time.perf_counter()
    middle = engine.query(
        "SELECT o.amount AS amount, o.score AS score, z.region AS region, "
        "z.pop AS pop FROM orders o JOIN zips z ON o.zip = z.zip "
        "WHERE o.amount >= 100 AND o.amount < 900", result_name="middle")
    assert engine.last_plan == "join"
    staging = Database()
    staging.add(middle)
    staging.add(database.relation("regions"))
    stage2 = SQLEngine(staging)
    result = stage2.query(
        "SELECT r.country, COUNT(*) AS n, MIN(m.amount) AS lo, "
        "MAX(m.pop) AS hi, SUM(m.amount) AS s, AVG(m.score) AS mean "
        "FROM middle m JOIN regions r ON m.region = r.region "
        "GROUP BY r.country ORDER BY country")
    seconds = time.perf_counter() - started
    assert stage2.last_plan == "join"
    return result, seconds


@pytest.mark.parametrize("size", SIZES)
def test_e17_multiway_scaling(benchmark, size):
    database = _database(size)
    engine = SQLEngine(database)
    benchmark.pedantic(lambda: engine.query(MULTI_QUERY), rounds=3, iterations=1)


def test_e17_multiway_parity_smoke(benchmark):
    """Smoke: identical 3-table results across row, multiway and serial pool."""
    def compute():
        database = _database(1000)
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        serial = SQLEngine(database, engine="serial")
        queries = [
            MULTI_QUERY,
            "SELECT o.city, z.region, r.gdp FROM orders o, zips z, regions r "
            "WHERE o.zip = z.zip AND z.region = r.region AND o.amount < 300 "
            "ORDER BY city, region, gdp LIMIT 80",
            "SELECT DISTINCT r.country FROM orders o, zips z, regions r "
            "WHERE o.zip = z.zip AND z.region = r.region",
        ]
        for sql in queries:
            expected = _fingerprint(row.query(sql))
            assert row.last_plan == "row"
            assert _fingerprint(code.query(sql)) == expected
            assert code.last_plan == "multiway"
            assert _fingerprint(serial.query(sql)) == expected
        return len(queries)

    assert benchmark.pedantic(compute, rounds=1, iterations=1) == 3


def test_e17_row_vs_multiway_speedup(benchmark):
    """The headline series: row-path 3-table join vs. leapfrog on ranks."""
    def compute():
        rows = []
        for size in SIZES:
            database = _database(size)
            row_engine = SQLEngine(database, use_columns=False)
            code_engine = SQLEngine(database)
            code_engine.query(MULTI_QUERY)  # steady state: caches + bridges built
            started = time.perf_counter()
            row_result = row_engine.query(MULTI_QUERY)
            row_seconds = time.perf_counter() - started
            started = time.perf_counter()
            code_result = code_engine.query(MULTI_QUERY)
            code_seconds = time.perf_counter() - started
            assert _fingerprint(code_result) == _fingerprint(row_result)
            assert code_engine.last_plan == "multiway"
            rows.append([size, len(code_result), row_seconds, code_seconds,
                         row_seconds / code_seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E17: 3-table grouped join, row path vs. leapfrog on ranks",
                 ["tuples", "groups", "row_s", "multi_s", "speedup"], rows)
    benchmark.extra_info["speedups"] = {str(r[0]): round(r[4], 2) for r in rows}
    benchmark.extra_info["speedup_largest"] = round(rows[-1][4], 2)
    assert rows[-1][4] >= 1.5


def test_e17_cascade_vs_multiway(benchmark):
    """2-table hash-join cascade (materialised middle) vs. one multiway pass."""
    def compute():
        rows = []
        for size in SIZES:
            database = _database(size)
            code_engine = SQLEngine(database)
            code_engine.query(MULTI_QUERY)  # steady state
            cascade_result, cascade_seconds = _cascade(database)
            started = time.perf_counter()
            multi_result = code_engine.query(MULTI_QUERY)
            multi_seconds = time.perf_counter() - started
            assert code_engine.last_plan == "multiway"
            assert _fingerprint(multi_result) == _fingerprint(cascade_result)
            rows.append([size, len(multi_result), cascade_seconds,
                         multi_seconds, cascade_seconds / multi_seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E17: hash-join cascade vs. one multiway pass",
                 ["tuples", "groups", "cascade_s", "multi_s", "ratio"], rows)
    # recorded as a series only: the cascade also runs on code-native paths,
    # so the ratio varies with how selective the middle materialisation is
    benchmark.extra_info["cascade_ratios"] = {str(r[0]): round(r[4], 2)
                                              for r in rows}
