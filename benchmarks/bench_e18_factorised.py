"""E18 — factorised (semiring) aggregates vs. enumerating the join product.

The aggregate half of the compressed-execution argument: a grouped
3-table chain join whose aggregates all fold exactly (COUNT / COUNT
DISTINCT / MIN / MAX / integer SUM and AVG) runs once with the
factorised plan disabled (``columnar.FACTORISE = False`` — the join
still runs code-native but enumerates every joined tuple into the
aggregate states) and once factorised (per-table partial aggregates per
join-variable binding, combined by semiring multiplication — the tuple
product is never enumerated).  Results are asserted identical at every
size; the measured speedups land in the benchmark JSON ``extra_info``
with a >= 3x floor asserted at the largest size.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql import columnar
from repro.relational.sql.engine import SQLEngine
from repro.relational.types import NULL, AttributeType

from conftest import print_series

SIZES = [500, 1000, 2000, 4000]

ORDERS = RelationSchema("orders", [
    Attribute("city", AttributeType.STRING),
    Attribute("zip", AttributeType.STRING),
    Attribute("amount", AttributeType.INTEGER),
])
ZIPS = RelationSchema("zips", [
    Attribute("zip", AttributeType.STRING),
    Attribute("region", AttributeType.STRING),
    Attribute("pop", AttributeType.INTEGER),
])
REGIONS = RelationSchema("regions", [
    Attribute("region", AttributeType.STRING),
    Attribute("country", AttributeType.STRING),
])

#: every aggregate folds exactly, so the plan factorises
FACT_QUERY = ("SELECT r.country, COUNT(*) AS n, COUNT(DISTINCT o.city) AS d, "
              "MIN(o.amount) AS lo, MAX(z.pop) AS hi, SUM(o.amount) AS s, "
              "AVG(z.pop) AS mean FROM orders o, zips z, regions r "
              "WHERE o.zip = z.zip AND z.region = r.region "
              "AND o.amount >= 100 AND o.amount < 900 "
              "GROUP BY r.country ORDER BY country")

PAIR_QUERY = ("SELECT z.region, COUNT(*) AS n, SUM(o.amount) AS s, "
              "MAX(o.amount) AS hi FROM orders o JOIN zips z "
              "ON o.zip = z.zip GROUP BY region ORDER BY region")


def _database(size: int) -> Database:
    # dense key overlap on purpose: the enumerated plans pay for the full
    # join fan-out, which is exactly what factorisation folds away
    rng = random.Random(1800 + size)
    orders = Relation(ORDERS)
    for _ in range(size):
        orders.insert([
            NULL if rng.random() < 0.05 else f"city_{rng.randrange(25)}",
            f"zip_{rng.randrange(60)}",
            rng.randrange(1000),
        ])
    zips = Relation(ZIPS)
    for _ in range(size // 4):
        zips.insert([
            f"zip_{rng.randrange(80)}",  # partial overlap with the orders pool
            f"region_{rng.randrange(12)}",
            rng.randrange(10_000),
        ])
    regions = Relation(REGIONS)
    for _ in range(size // 16):
        regions.insert([
            f"region_{rng.randrange(16)}",
            f"country_{rng.randrange(6)}",
        ])
    database = Database()
    database.add(orders)
    database.add(zips)
    database.add(regions)
    return database


def _fingerprint(result):
    return ([a.name for a in result.schema.attributes],
            [t.values for t in result])


def _enumerated(engine: SQLEngine, sql: str):
    """Run *sql* on the enumerated plan (factorisation disabled)."""
    saved = columnar.FACTORISE
    columnar.FACTORISE = False
    try:
        started = time.perf_counter()
        result = engine.query(sql)
        return result, time.perf_counter() - started
    finally:
        columnar.FACTORISE = saved


@pytest.mark.parametrize("size", SIZES)
def test_e18_factorised_scaling(benchmark, size):
    database = _database(size)
    engine = SQLEngine(database)
    benchmark.pedantic(lambda: engine.query(FACT_QUERY), rounds=3, iterations=1)


def test_e18_factorised_parity_smoke(benchmark):
    """Smoke: factorised == enumerated == row on 2-table and 3-table plans."""
    def compute():
        database = _database(1000)
        row = SQLEngine(database, use_columns=False)
        code = SQLEngine(database)
        serial = SQLEngine(database, engine="serial")
        plans = {FACT_QUERY: "multiway", PAIR_QUERY: "join"}
        for sql, enumerated_plan in plans.items():
            expected = _fingerprint(row.query(sql))
            assert row.last_plan == "row"
            enumerated, _ = _enumerated(code, sql)
            assert _fingerprint(enumerated) == expected
            assert code.last_plan == enumerated_plan
            assert _fingerprint(code.query(sql)) == expected
            assert code.last_plan == "factorised"
            assert _fingerprint(serial.query(sql)) == expected
            assert serial.last_plan == "factorised"
        return len(plans)

    assert benchmark.pedantic(compute, rounds=1, iterations=1) == 2


def test_e18_enumerated_vs_factorised_speedup(benchmark):
    """The headline series: enumerate the tuple product vs. fold partials."""
    def compute():
        rows = []
        for size in SIZES:
            database = _database(size)
            engine = SQLEngine(database)
            engine.query(FACT_QUERY)  # steady state: caches + bridges built
            enumerated, enum_seconds = _enumerated(engine, FACT_QUERY)
            engine.query(FACT_QUERY, explain=True)
            started = time.perf_counter()
            factorised = engine.query(FACT_QUERY)
            fact_seconds = time.perf_counter() - started
            assert engine.last_plan == "factorised"
            assert _fingerprint(factorised) == _fingerprint(enumerated)
            tuples = engine.last_explain["factorised"]["tuples"]
            rows.append([size, tuples, enum_seconds, fact_seconds,
                         enum_seconds / fact_seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E18: grouped 3-table join, enumerated tuples vs. "
                 "factorised folds",
                 ["rows", "tuples", "enum_s", "fact_s", "speedup"], rows)
    benchmark.extra_info["speedups"] = {str(r[0]): round(r[4], 2) for r in rows}
    benchmark.extra_info["speedup_largest"] = round(rows[-1][4], 2)
    assert rows[-1][4] >= 3.0


def test_e18_two_table_fold(benchmark):
    """2-table hash join: fold build-side partials into buckets pre-probe."""
    def compute():
        rows = []
        for size in SIZES:
            database = _database(size)
            engine = SQLEngine(database)
            engine.query(PAIR_QUERY)  # steady state
            enumerated, enum_seconds = _enumerated(engine, PAIR_QUERY)
            started = time.perf_counter()
            factorised = engine.query(PAIR_QUERY)
            fact_seconds = time.perf_counter() - started
            assert engine.last_plan == "factorised"
            assert _fingerprint(factorised) == _fingerprint(enumerated)
            rows.append([size, len(factorised), enum_seconds, fact_seconds,
                         enum_seconds / fact_seconds])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_series("E18: 2-table grouped join, enumerated vs. factorised",
                 ["rows", "groups", "enum_s", "fact_s", "ratio"], rows)
    # recorded as a series only: a 2-table fan-out is linear in the probe
    # side, so the fold saves bucket traversal rather than a tuple product
    benchmark.extra_info["pair_ratios"] = {str(r[0]): round(r[4], 2)
                                           for r in rows}
