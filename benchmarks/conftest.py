"""Shared fixtures and helpers for the benchmark harness.

Every experiment E1–E12 of DESIGN.md has one module in this directory.
Benchmarks are kept laptop-sized (thousands of tuples, not millions): the
goal is to reproduce the *shape* of the published series — who wins, how
cost scales, where crossovers fall — not absolute wall-clock numbers.

Run with::

    pytest benchmarks/ --benchmark-only -s

(`-s` shows the printed series tables in addition to pytest-benchmark's
timing table.)
"""

from __future__ import annotations

import sys
from pathlib import Path

# allow running the benchmarks without installing the package
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))


def print_series(title: str, header: list[str], rows: list[list]) -> None:
    """Print a small fixed-width table (the series a paper figure would plot)."""
    rendered = [[_format(cell) for cell in row] for row in rows]
    widths = [max(len(header[i]), *(len(row[i]) for row in rendered)) if rendered else len(header[i])
              for i in range(len(header))]
    print()
    print(f"== {title} ==")
    print("  " + " | ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in rendered:
        print("  " + " | ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    print()


def _format(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)
