"""Shared fixtures and helpers for the benchmark harness.

Every experiment E1–E12 of DESIGN.md has one module in this directory.
Benchmarks are kept laptop-sized (thousands of tuples, not millions): the
goal is to reproduce the *shape* of the published series — who wins, how
cost scales, where crossovers fall — not absolute wall-clock numbers.

Run with::

    pytest benchmarks/ --benchmark-only -s

(`-s` shows the printed series tables in addition to pytest-benchmark's
timing table.)
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# allow running the benchmarks without installing the package
SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import obs  # noqa: E402  (needs the src path above)


def _cache_hit_rates(counters: dict[str, int]) -> dict[str, float]:
    """hit / (hit + miss) per cache that recorded at least one event."""
    rates: dict[str, float] = {}
    for name, hits in counters.items():
        if not name.endswith(".hit"):
            continue
        misses = counters.get(name[: -len(".hit")] + ".miss", 0)
        if hits + misses:
            rates[name[: -len(".hit")]] = hits / (hits + misses)
    return rates


@pytest.fixture(autouse=True)
def metrics_in_extra_info(request):
    """Attach an obs metrics snapshot to each benchmark's ``extra_info``.

    Collection is switched on for the duration of the benchmark and the
    registry is reset around it, so the snapshot covers exactly one
    benchmark: cache hit rates, engine chunk/run counts, and plan-choice
    counters land in the ``--benchmark-json`` output.
    """
    saved_enabled, saved_trace = obs.enabled, obs.trace_enabled
    obs.enable()
    obs.reset()
    yield
    snapshot = obs.metrics()
    obs.enabled, obs.trace_enabled = saved_enabled, saved_trace
    obs.reset()
    benchmark = request.node.funcargs.get("benchmark")
    if benchmark is None:
        return
    counters = snapshot["counters"]
    benchmark.extra_info["obs"] = {
        "cache_hit_rates": _cache_hit_rates(counters),
        "engine": {name: value for name, value in counters.items()
                   if name.startswith("engine.")},
        "sql_plans": {name: value for name, value in counters.items()
                      if name.startswith("sql.plan.")},
        "chunks": {name: summary for name, summary
                   in snapshot["histograms"].items()
                   if name.endswith(".chunks")},
    }


def print_series(title: str, header: list[str], rows: list[list]) -> None:
    """Print a small fixed-width table (the series a paper figure would plot)."""
    rendered = [[_format(cell) for cell in row] for row in rows]
    widths = [max(len(header[i]), *(len(row[i]) for row in rendered)) if rendered else len(header[i])
              for i in range(len(header))]
    print()
    print(f"== {title} ==")
    print("  " + " | ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    print("  " + "-+-".join("-" * w for w in widths))
    for row in rendered:
        print("  " + " | ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    print()


def _format(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)
