"""End-to-end cleaning of a synthetically dirtied customer relation.

This mirrors the experimental protocol of the repair papers and the
Semandaq demo: generate a clean customer relation, inject noise at a known
rate, register the canonical CFDs, detect violations, let the system
propose a repair, interact with it (confirm one cell the system would have
changed), apply the repair, and measure precision/recall against the
ground truth.

Run with::

    python examples/customer_cleaning.py
"""

from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.repair.quality import evaluate_repair
from repro.semandaq.session import SemandaqSession

TUPLES = 2000
NOISE_RATE = 0.04


def main() -> None:
    # 1. build the workload: clean data + controlled noise
    generator = CustomerGenerator(seed=42)
    clean = generator.generate(TUPLES)
    noise = inject_noise(clean, rate=NOISE_RATE, attributes=["street", "city"], seed=7)
    dirty = noise.dirty
    # keep an untouched snapshot of the dirty data: the session repairs `dirty`
    # in place, and the quality metrics need the pre-repair state
    dirty_snapshot = dirty.copy()
    print(f"generated {TUPLES} customer tuples; injected {len(noise.errors)} cell errors "
          f"({noise.rate:.1%} of all cells)")

    # 2. open a Semandaq session and register the data semantics
    session = SemandaqSession(dirty)
    cfds = session.register_cfds(generator.canonical_cfds())
    analysis = session.check_consistency()
    print(f"registered {len(cfds)} CFDs; satisfiable={analysis['satisfiable']}, "
          f"conflicts={len(analysis['conflicts'])}")

    # 3. detect violations (SQL-based detection under the hood)
    report = session.detect()
    print(report.summary())

    # 4. inspect the proposed repair before applying it
    proposal = session.propose_repair("customer")
    print(f"proposed repair: {len(proposal.changes)} cell changes, "
          f"cost {proposal.cost:.2f}, {proposal.passes} pass(es)")

    # 5. the user confirms one cell the system wanted to change: lock it
    if proposal.changes:
        first = proposal.changes[0]
        session.confirm_cell(first.tid, first.attribute, "customer")
        print(f"user confirmed cell t{first.tid}.{first.attribute} = "
              f"{dirty.value(first.tid, first.attribute)!r}; it will not be modified")

    # 6. apply the (re-computed) repair and evaluate against the ground truth
    session.apply_repair("customer")
    repaired = session.database.relation("customer")
    quality = evaluate_repair(clean, dirty_snapshot, repaired)
    print(f"repair quality: precision={quality.precision:.3f}, "
          f"recall={quality.recall:.3f}, f1={quality.f1:.3f}")

    remaining = session.detect()
    print(f"violations remaining after repair: {len(remaining)}")


if __name__ == "__main__":
    main()
