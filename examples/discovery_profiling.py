"""Profiling: discover FDs and CFDs from data, then use them for cleaning.

The tutorial lists profiling — discovering dependencies from sample data —
as a core data-quality activity.  This example discovers constraints from
a clean sample of the customer relation, shows a few of them, and then
uses the *discovered* CFDs (not the hand-written ones) to detect errors in
a dirtied copy of the data.

Run with::

    python examples/discovery_profiling.py
"""

from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.detection.batch import BatchCFDDetector
from repro.discovery.cfd_discovery import CFDDiscovery
from repro.discovery.fd_discovery import discover_fds

SAMPLE_SIZE = 600
NOISE_RATE = 0.03


def main() -> None:
    generator = CustomerGenerator(seed=77)
    sample = generator.generate(SAMPLE_SIZE)

    # 1. discover classical FDs (levelwise, stripped partitions)
    fds = discover_fds(sample, max_lhs_size=2)
    print(f"discovered {len(fds)} minimal FDs with at most 2 LHS attributes, e.g.:")
    for fd in fds[:6]:
        print(f"  {fd}")

    # 2. discover CFDs: constant patterns via CFDMiner-style itemsets,
    #    variable CFDs via conditional refinement
    discovery = CFDDiscovery(sample, min_support=10, max_lhs_size=2)
    constant_cfds = discovery.discover_constant_cfds()
    variable_cfds = discovery.discover_variable_cfds()
    print(f"\ndiscovered {len(constant_cfds)} constant CFDs and "
          f"{len(variable_cfds)} variable CFDs (support >= 10), e.g.:")
    for cfd in (constant_cfds[:3] + variable_cfds[:3]):
        print(f"  {cfd}")

    # 3. use the discovered variable CFDs to find errors in a dirtied copy
    noise = inject_noise(sample, rate=NOISE_RATE, attributes=["street", "city"], seed=5)
    detector = BatchCFDDetector(noise.dirty, variable_cfds)
    report = detector.detect()
    caught = report.violating_tids()
    dirty_tids = {tid for tid, _ in noise.error_cells}
    coverage = len(caught & dirty_tids) / len(dirty_tids) if dirty_tids else 1.0
    print(f"\ninjected errors into {len(dirty_tids)} tuples; the discovered CFDs flag "
          f"{len(caught)} tuples, covering {coverage:.0%} of the dirtied ones")


if __name__ == "__main__":
    main()
