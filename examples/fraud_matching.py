"""Object identification: matching billing records to card holders with RCKs.

Section 4 of the tutorial: given ``card`` and ``billing`` records that may
spell names and addresses differently, derive relative candidate keys
(RCKs) from three matching rules and use them to identify which billing
records belong to which card holder — comparing against naive exact
matching on the full attribute list.

Run with::

    python examples/fraud_matching.py
"""

from repro.datagen.cards import CardBillingGenerator
from repro.matching.derivation import derive_rcks
from repro.matching.evaluation import evaluate_matching
from repro.matching.matcher import RecordMatcher
from repro.matching.rck import RelativeCandidateKey
from repro.matching.rules import Comparator, MatchingRule

TARGET = ["fn", "ln", "addr", "phn", "email"]


def tutorial_rules() -> list[MatchingRule]:
    """The tutorial's matching rules (a), (b) and (c)."""
    return [
        # (a) same phone number => same address (even if spelled differently)
        MatchingRule.build([Comparator.equality("phn")], ["addr"], name="a"),
        # (b) same email => same first and last name
        MatchingRule.build([Comparator.equality("email")], ["fn", "ln"], name="b"),
        # (c) same last name and address, similar first name => same holder
        MatchingRule.build(
            [Comparator.equality("ln"), Comparator.equality("addr"),
             Comparator.similar("fn", method="jaro_winkler", threshold=0.7)],
            TARGET, name="c"),
    ]


def main() -> None:
    # 1. generate card/billing data where 35% of billing records are perturbed
    workload = CardBillingGenerator(seed=11).generate(
        holders=300, billings_per_holder=1, dirty_rate=0.35)
    print(f"{len(workload.card)} card holders, {len(workload.billing)} billing records, "
          f"{len(workload.true_matches)} true matches")

    # 2. derive RCKs from the rules
    rcks = derive_rcks(tutorial_rules(), TARGET)
    print("derived relative candidate keys:")
    for rck in rcks:
        print(f"  {rck}")

    # 3. baseline: exact equality on the full Y list
    exact_key = [RelativeCandidateKey.build(
        [Comparator.equality(a) for a in TARGET], TARGET, name="exact")]
    exact = RecordMatcher(workload.card, workload.billing, exact_key,
                          blocking=("cno", "cno"))
    exact_quality = evaluate_matching(exact.matched_pairs(), workload.true_matches)

    # 4. matching with the derived RCKs (same blocking)
    derived = RecordMatcher(workload.card, workload.billing, rcks, blocking=("cno", "cno"))
    decisions = derived.match()
    derived_quality = evaluate_matching({d.pair for d in decisions}, workload.true_matches)

    print(f"exact-key matching:   precision={exact_quality.precision:.3f} "
          f"recall={exact_quality.recall:.3f} f1={exact_quality.f1:.3f}")
    print(f"derived-RCK matching: precision={derived_quality.precision:.3f} "
          f"recall={derived_quality.recall:.3f} f1={derived_quality.f1:.3f}")

    print("matches contributed by each key:")
    for key_repr, count in derived.matches_by_rck().items():
        print(f"  {count:5d}  {key_repr}")


if __name__ == "__main__":
    main()
