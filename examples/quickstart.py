"""Quickstart: declare CFDs, detect violations, repair the data.

Run with::

    python examples/quickstart.py

The example reproduces the two CFDs of the paper's Section 3 on a tiny
customer relation, shows the violations they catch, and repairs them.
"""

from repro import Relation, RelationSchema, SemandaqSession, detect_violations, repair

CUSTOMER_SCHEMA = RelationSchema("customer", [
    "cc", "ac", "phn", "name", "street", "city", "zip",
])

# a small, visibly dirty customer relation
ROWS = [
    # UK customers: within cc=44, zip should determine street (and city)
    {"cc": "44", "ac": "131", "phn": "5551111", "name": "mike",
     "street": "mayfield road", "city": "edi", "zip": "EH8 9AB"},
    {"cc": "44", "ac": "131", "phn": "5552222", "name": "rick",
     "street": "mayfield road", "city": "edi", "zip": "EH8 9AB"},
    {"cc": "44", "ac": "131", "phn": "5553333", "name": "joe",
     "street": "crichton street", "city": "ldn", "zip": "EH8 9AB"},   # dirty
    # US customers: area code 908 is Murray Hill ('mh')
    {"cc": "01", "ac": "908", "phn": "5554444", "name": "mary",
     "street": "mountain ave", "city": "mh", "zip": "07974"},
    {"cc": "01", "ac": "908", "phn": "5555555", "name": "anna",
     "street": "mountain ave", "city": "nyc", "zip": "07974"},        # dirty
]

# the paper's CFDs, in the library's textual syntax
CFDS = [
    "customer([cc='44', zip] -> [street])",
    "customer([cc='44', zip] -> [city])",
    "customer([cc='01', ac='908', phn] -> [street, city='mh', zip])",
]


def main() -> None:
    relation = Relation.from_dicts(CUSTOMER_SCHEMA, ROWS)
    print("input relation:")
    print(relation.pretty())
    print()

    # 1. detect violations
    report = detect_violations(relation, cfds=CFDS)
    print(report.summary())
    for violation in report:
        print(f"  violation of {violation.cfd.name or violation.cfd!r} "
              f"by tuples {list(violation.tids)}")
    print()

    # 2. repair at minimal cost
    result = repair(relation, CFDS)
    print(result.summary())
    for change in result.changes:
        print(f"  t{change.tid}.{change.attribute}: "
              f"{change.old_value!r} -> {change.new_value!r}")
    print()
    print("repaired relation:")
    print(result.relation.pretty())
    print()

    # 3. the same workflow through the Semandaq session (detect -> repair -> report)
    session = SemandaqSession(Relation.from_dicts(CUSTOMER_SCHEMA, ROWS))
    session.register_cfds("\n".join(CFDS))
    session.detect()
    session.apply_repair("customer")
    print(session.report())


if __name__ == "__main__":
    main()
