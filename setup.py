"""Setup shim so that ``pip install -e .`` works offline (legacy editable install).

The environment has no network access and no ``wheel`` package, so the
PEP 660 editable path (which builds a wheel) is unavailable; keeping a
``setup.py`` lets pip fall back to ``setup.py develop``.
"""

from setuptools import setup

setup()
