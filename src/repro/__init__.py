"""repro — constraint-based data cleaning.

A from-scratch reproduction of the systems surveyed in *"A Revival of
Integrity Constraints for Data Cleaning"* (Fan, Geerts, Jia — VLDB 2008):
conditional functional dependencies (CFDs), conditional inclusion
dependencies (CINDs), extended CFDs, SQL-based violation detection,
minimal-cost repairing, relative candidate keys for record matching,
constraint discovery, consistent query answering and the Semandaq
prototype — all on top of a small, self-contained in-memory relational
engine.

Quick start::

    from repro import CFD, Relation, RelationSchema, detect_violations, repair

See ``examples/quickstart.py`` for a complete walk-through.
"""

from repro.constraints import (
    CFD,
    CIND,
    ECFD,
    FunctionalDependency,
    InclusionDependency,
    parse_cfd,
    parse_cfds,
    parse_cind,
    parse_fd,
)
from repro.core import (
    CleaningPipeline,
    PipelineResult,
    detect_violations,
    discover_cfds,
    match_records,
    repair,
)
from repro.relational import (
    Attribute,
    AttributeType,
    Database,
    Relation,
    RelationSchema,
    SQLEngine,
    read_csv,
)
from repro.repair import BatchRepair, CostModel, IncRepair, evaluate_repair
from repro.semandaq import SemandaqSession

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # relational substrate
    "Attribute",
    "AttributeType",
    "RelationSchema",
    "Relation",
    "Database",
    "SQLEngine",
    "read_csv",
    # constraints
    "CFD",
    "CIND",
    "ECFD",
    "FunctionalDependency",
    "InclusionDependency",
    "parse_fd",
    "parse_cfd",
    "parse_cfds",
    "parse_cind",
    # cleaning API
    "CleaningPipeline",
    "PipelineResult",
    "detect_violations",
    "repair",
    "discover_cfds",
    "match_records",
    "BatchRepair",
    "IncRepair",
    "CostModel",
    "evaluate_repair",
    "SemandaqSession",
]
