"""Centralised, validated parsing of the ``REPRO_*`` environment knobs.

Every process-level default the library reads from the environment goes
through this module, so a malformed value produces one clear
:class:`ConfigError` instead of a bare ``int()`` traceback deep inside
``resolve_pool``.  The recognised variables:

``REPRO_ENGINE``
    Default execution engine (``sequential`` / ``serial`` / ``parallel``)
    when a caller passes ``engine=None``.
``REPRO_WORKERS``
    Default worker count for the parallel engine.
``REPRO_PARALLEL_THRESHOLD``
    Minimum live-row count before the parallel engine actually forks;
    below it work is inlined in-process.
``REPRO_OBS``
    Truthy value enables the :mod:`repro.obs` metrics registry at import
    time (counters, histograms, spans).
``REPRO_OBS_TRACE``
    Truthy value additionally records finished spans into the in-memory
    trace buffer (implies nothing about ``REPRO_OBS``; both are read).

:class:`ConfigError` subclasses :class:`ValueError` as well as
:class:`~repro.errors.ReproError`, so call sites (and tests) that predate
centralisation and expect ``ValueError`` keep working.
"""

from __future__ import annotations

import os

from repro.errors import ReproError

ENGINE_ENV = "REPRO_ENGINE"
WORKERS_ENV = "REPRO_WORKERS"
THRESHOLD_ENV = "REPRO_PARALLEL_THRESHOLD"
OBS_ENV = "REPRO_OBS"
OBS_TRACE_ENV = "REPRO_OBS_TRACE"

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"0", "false", "no", "off", ""}


class ConfigError(ReproError, ValueError):
    """A ``REPRO_*`` environment variable holds a malformed value."""


def env_flag(name: str, default: bool = False) -> bool:
    """Parse a boolean environment variable (1/true/yes/on vs 0/false/no/off)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise ConfigError(
        f"{name}={raw!r} is not a boolean; expected one of "
        f"1/true/yes/on or 0/false/no/off")


def env_int(name: str, minimum: int | None = None) -> int | None:
    """Parse an integer environment variable; ``None`` when unset/empty."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw.strip())
    except ValueError:
        raise ConfigError(f"{name}={raw!r} is not an integer") from None
    if minimum is not None and value < minimum:
        raise ConfigError(f"{name}={raw!r} must be at least {minimum}")
    return value


def env_choice(name: str, choices: tuple[str, ...]) -> str | None:
    """Parse an enumerated environment variable; ``None`` when unset/empty."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    value = raw.strip().lower()
    if value not in choices:
        raise ConfigError(
            f"{name}={raw!r} is not a recognised value; expected one of "
            f"{', '.join(choices)}")
    return value


# -- named accessors ----------------------------------------------------------------

def engine_default(choices: tuple[str, ...]) -> str | None:
    """The ``REPRO_ENGINE`` default, validated against *choices*."""
    return env_choice(ENGINE_ENV, choices)


def workers_default() -> int | None:
    """The ``REPRO_WORKERS`` default (at least 1 when set)."""
    return env_int(WORKERS_ENV, minimum=1)


def parallel_threshold_default() -> int | None:
    """The ``REPRO_PARALLEL_THRESHOLD`` default (non-negative when set)."""
    return env_int(THRESHOLD_ENV, minimum=0)


def obs_enabled_default() -> bool:
    """Whether ``REPRO_OBS`` asks for metrics collection."""
    return env_flag(OBS_ENV)


def obs_trace_default() -> bool:
    """Whether ``REPRO_OBS_TRACE`` asks for span trace recording."""
    return env_flag(OBS_TRACE_ENV)
