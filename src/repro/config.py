"""Centralised, validated parsing of the ``REPRO_*`` environment knobs.

Every process-level default the library reads from the environment goes
through this module, so a malformed value produces one clear
:class:`ConfigError` instead of a bare ``int()`` traceback deep inside
``resolve_pool``.  The recognised variables:

``REPRO_ENGINE``
    Default execution engine (``sequential`` / ``serial`` / ``parallel``)
    when a caller passes ``engine=None``.
``REPRO_WORKERS``
    Default worker count for the parallel engine.
``REPRO_PARALLEL_THRESHOLD``
    Minimum live-row count before the parallel engine actually forks;
    below it work is inlined in-process.
``REPRO_TASK_TIMEOUT``
    Per-task supervision timeout in seconds for the parallel engine: a
    dispatched task whose result has not arrived after this long is
    declared hung, the pool is rebuilt and the task retried.  ``0``
    disables the timeout.
``REPRO_TASK_RETRIES``
    How many times a failed (crashed / timed out / raising) task is
    re-dispatched to the pool before the engine falls back to running it
    in-process.
``REPRO_TASK_FALLBACK``
    Truthy (the default) lets the parallel engine degrade to in-process
    execution for tasks that failed every retry; falsy makes it raise
    :class:`~repro.errors.WorkerCrashError` /
    :class:`~repro.errors.TaskTimeoutError` instead (strict mode).
``REPRO_FAULTS``
    Seeded fault injection in the worker dispatch path, for chaos
    testing: a comma-separated list of ``kind:rate`` pairs with kinds
    ``raise`` (transient in-worker exception), ``crash`` (hard
    ``os._exit``, simulating an OOM kill) and ``hang`` (the worker
    sleeps until the supervision timeout kills it).  Rates are
    probabilities in ``[0, 1]`` drawn per dispatched task.
``REPRO_FAULTS_SEED``
    Integer seed of the fault-injection random streams (one stream per
    worker process, derived from the seed and the worker pid).
``REPRO_OBS``
    Truthy value enables the :mod:`repro.obs` metrics registry at import
    time (counters, histograms, spans).
``REPRO_OBS_TRACE``
    Truthy value additionally records finished spans into the in-memory
    trace buffer (implies nothing about ``REPRO_OBS``; both are read).

:class:`ConfigError` subclasses :class:`ValueError` as well as
:class:`~repro.errors.ReproError`, so call sites (and tests) that predate
centralisation and expect ``ValueError`` keep working.
"""

from __future__ import annotations

import os

from repro.errors import ReproError

ENGINE_ENV = "REPRO_ENGINE"
WORKERS_ENV = "REPRO_WORKERS"
THRESHOLD_ENV = "REPRO_PARALLEL_THRESHOLD"
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"
TASK_RETRIES_ENV = "REPRO_TASK_RETRIES"
TASK_FALLBACK_ENV = "REPRO_TASK_FALLBACK"
FAULTS_ENV = "REPRO_FAULTS"
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"
OBS_ENV = "REPRO_OBS"
OBS_TRACE_ENV = "REPRO_OBS_TRACE"

#: fault kinds REPRO_FAULTS understands (see repro.engine.worker).
FAULT_KINDS = ("raise", "crash", "hang")

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"0", "false", "no", "off", ""}


class ConfigError(ReproError, ValueError):
    """A ``REPRO_*`` environment variable holds a malformed value."""


def env_flag(name: str, default: bool = False) -> bool:
    """Parse a boolean environment variable (1/true/yes/on vs 0/false/no/off)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise ConfigError(
        f"{name}={raw!r} is not a boolean; expected one of "
        f"1/true/yes/on or 0/false/no/off")


def env_int(name: str, minimum: int | None = None) -> int | None:
    """Parse an integer environment variable; ``None`` when unset/empty."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw.strip())
    except ValueError:
        raise ConfigError(f"{name}={raw!r} is not an integer") from None
    if minimum is not None and value < minimum:
        raise ConfigError(f"{name}={raw!r} must be at least {minimum}")
    return value


def env_float(name: str, minimum: float | None = None) -> float | None:
    """Parse a float environment variable; ``None`` when unset/empty."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        value = float(raw.strip())
    except ValueError:
        raise ConfigError(f"{name}={raw!r} is not a number") from None
    if minimum is not None and value < minimum:
        raise ConfigError(f"{name}={raw!r} must be at least {minimum}")
    return value


def env_choice(name: str, choices: tuple[str, ...]) -> str | None:
    """Parse an enumerated environment variable; ``None`` when unset/empty."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    value = raw.strip().lower()
    if value not in choices:
        raise ConfigError(
            f"{name}={raw!r} is not a recognised value; expected one of "
            f"{', '.join(choices)}")
    return value


# -- named accessors ----------------------------------------------------------------

def engine_default(choices: tuple[str, ...]) -> str | None:
    """The ``REPRO_ENGINE`` default, validated against *choices*."""
    return env_choice(ENGINE_ENV, choices)


def workers_default() -> int | None:
    """The ``REPRO_WORKERS`` default (at least 1 when set)."""
    return env_int(WORKERS_ENV, minimum=1)


def parallel_threshold_default() -> int | None:
    """The ``REPRO_PARALLEL_THRESHOLD`` default (non-negative when set)."""
    return env_int(THRESHOLD_ENV, minimum=0)


def task_timeout_default() -> float | None:
    """The ``REPRO_TASK_TIMEOUT`` default in seconds (non-negative when set)."""
    return env_float(TASK_TIMEOUT_ENV, minimum=0.0)


def task_retries_default() -> int | None:
    """The ``REPRO_TASK_RETRIES`` default (non-negative when set)."""
    return env_int(TASK_RETRIES_ENV, minimum=0)


def task_fallback_default() -> bool:
    """Whether failed tasks may degrade to in-process execution (default on)."""
    return env_flag(TASK_FALLBACK_ENV, default=True)


def faults_default() -> dict[str, float]:
    """The ``REPRO_FAULTS`` injection rates: ``{kind: probability}``.

    Empty when unset.  Kinds are validated against :data:`FAULT_KINDS`
    and rates must be probabilities in ``[0, 1]``.
    """
    raw = os.environ.get(FAULTS_ENV)
    if raw is None or not raw.strip():
        return {}
    rates: dict[str, float] = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        kind, separator, rate_text = part.partition(":")
        kind = kind.strip().lower()
        if kind not in FAULT_KINDS:
            raise ConfigError(
                f"{FAULTS_ENV}={raw!r} names unknown fault kind {kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}")
        if not separator:
            raise ConfigError(
                f"{FAULTS_ENV}={raw!r} is malformed; expected kind:rate pairs "
                f"like 'raise:0.1,crash:0.05'")
        try:
            rate = float(rate_text.strip())
        except ValueError:
            raise ConfigError(
                f"{FAULTS_ENV}={raw!r}: rate {rate_text.strip()!r} for "
                f"{kind!r} is not a number") from None
        if not 0.0 <= rate <= 1.0:
            raise ConfigError(
                f"{FAULTS_ENV}={raw!r}: rate {rate!r} for {kind!r} must be "
                f"a probability in [0, 1]")
        rates[kind] = rate
    return rates


def faults_seed_default() -> int:
    """The ``REPRO_FAULTS_SEED`` default (0 when unset)."""
    return env_int(FAULTS_SEED_ENV) or 0


def obs_enabled_default() -> bool:
    """Whether ``REPRO_OBS`` asks for metrics collection."""
    return env_flag(OBS_ENV)


def obs_trace_default() -> bool:
    """Whether ``REPRO_OBS_TRACE`` asks for span trace recording."""
    return env_flag(OBS_TRACE_ENV)
