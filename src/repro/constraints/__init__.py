"""Constraint formalisms for data cleaning.

This package implements the dependency classes discussed in the tutorial:

* classical functional dependencies (:mod:`repro.constraints.fd`) and
  inclusion dependencies (:mod:`repro.constraints.ind`),
* conditional functional dependencies — CFDs — with pattern tableaux
  (:mod:`repro.constraints.cfd`, :mod:`repro.constraints.tableau`),
* conditional inclusion dependencies — CINDs (:mod:`repro.constraints.cind`),
* extended CFDs with disjunction and negation — eCFDs
  (:mod:`repro.constraints.ecfd`),
* a textual syntax for all of the above (:mod:`repro.constraints.parse`),
* static analyses: satisfiability, implication and minimal cover
  (:mod:`repro.constraints.reasoning`), and
* the violation data model shared with the detection and repair packages
  (:mod:`repro.constraints.violations`).
"""

from repro.constraints.tableau import Pattern, PatternTuple, UNDERSCORE, is_wildcard
from repro.constraints.fd import FunctionalDependency
from repro.constraints.ind import InclusionDependency
from repro.constraints.cfd import CFD
from repro.constraints.cind import CIND
from repro.constraints.ecfd import ECFD, AttributeCondition
from repro.constraints.parse import parse_cfd, parse_cfds, parse_cind, parse_fd
from repro.constraints.violations import (
    CFDViolation,
    CINDViolation,
    Violation,
    ViolationReport,
)

__all__ = [
    "Pattern",
    "PatternTuple",
    "UNDERSCORE",
    "is_wildcard",
    "FunctionalDependency",
    "InclusionDependency",
    "CFD",
    "CIND",
    "ECFD",
    "AttributeCondition",
    "parse_cfd",
    "parse_cfds",
    "parse_cind",
    "parse_fd",
    "CFDViolation",
    "CINDViolation",
    "Violation",
    "ViolationReport",
]
