"""Conditional functional dependencies (CFDs), following Fan et al. (TODS).

A CFD ``φ = (R: X → Y, Tp)`` consists of an embedded FD ``X → Y`` and a
pattern tableau ``Tp`` over ``X ∪ Y`` whose cells are constants or the
unnamed variable ``_``.  An instance satisfies ``φ`` when for every pair
of tuples ``t1, t2`` and every pattern ``tp ∈ Tp``: if ``t1[X] = t2[X] ≍
tp[X]`` then ``t1[Y] = t2[Y] ≍ tp[Y]``.

Two useful special cases:

* a **constant CFD** has a single pattern that is constant on all of
  ``X ∪ Y`` — a single tuple can violate it;
* a **variable CFD** has a wildcard on the RHS — violations always involve
  a pair of tuples.

This module provides the CFD class itself; detection lives in
:mod:`repro.detection.cfd_detect` and static analyses in
:mod:`repro.constraints.reasoning`.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ConstraintError
from repro.constraints.fd import FunctionalDependency
from repro.constraints.tableau import Pattern, PatternTuple, UNDERSCORE, is_wildcard
from repro.relational.relation import Relation


class CFD:
    """A conditional functional dependency ``(R: X → Y, Tp)``."""

    def __init__(self, relation_name: str, lhs: Sequence[str], rhs: Sequence[str],
                 patterns: Sequence[PatternTuple | Mapping[str, Pattern]] | None = None,
                 name: str | None = None) -> None:
        self.embedded_fd = FunctionalDependency(relation_name, lhs, rhs)
        self.name = name
        normalized: list[PatternTuple] = []
        for pattern in (patterns or [PatternTuple({})]):
            if isinstance(pattern, PatternTuple):
                normalized.append(pattern)
            else:
                normalized.append(PatternTuple(pattern))
        if not normalized:
            normalized = [PatternTuple({})]
        for pattern in normalized:
            known = set(self.attributes())
            for attribute in pattern.attributes():
                if attribute not in known:
                    raise ConstraintError(
                        f"pattern attribute {attribute!r} is not part of the embedded FD "
                        f"{self.embedded_fd}"
                    )
        self.tableau: tuple[PatternTuple, ...] = tuple(normalized)

    # -- convenient constructors ---------------------------------------------

    @classmethod
    def single(cls, relation_name: str, lhs: Sequence[str], rhs: Sequence[str],
               pattern: Mapping[str, Pattern] | None = None, name: str | None = None) -> "CFD":
        """A CFD with exactly one pattern tuple (the common case)."""
        return cls(relation_name, lhs, rhs, [PatternTuple(pattern or {})], name=name)

    @classmethod
    def from_fd(cls, fd: FunctionalDependency, name: str | None = None) -> "CFD":
        """Embed a classical FD as a CFD with the all-wildcard pattern."""
        return cls(fd.relation_name, list(fd.lhs), list(fd.rhs), name=name)

    # -- structure ---------------------------------------------------------------

    @property
    def relation_name(self) -> str:
        return self.embedded_fd.relation_name

    @property
    def lhs(self) -> tuple[str, ...]:
        return self.embedded_fd.lhs

    @property
    def rhs(self) -> tuple[str, ...]:
        return self.embedded_fd.rhs

    def attributes(self) -> tuple[str, ...]:
        """All attributes of the embedded FD."""
        return self.embedded_fd.attributes()

    def validate_against(self, relation: Relation) -> None:
        """Raise :class:`ConstraintError` if the CFD mentions unknown attributes."""
        self.embedded_fd.validate_against(relation)

    def is_constant(self) -> bool:
        """Whether every pattern pins every attribute of ``X ∪ Y`` to a constant."""
        return all(
            all(pattern.is_constant_on(a) for a in self.attributes())
            for pattern in self.tableau
        )

    def is_variable(self) -> bool:
        """Whether every pattern has only wildcards on the RHS."""
        return all(
            all(not pattern.is_constant_on(a) for a in self.rhs)
            for pattern in self.tableau
        )

    def normalize(self) -> list["CFD"]:
        """Equivalent CFDs each with a single RHS attribute and a single pattern.

        This is the normal form used by the reasoning and detection
        algorithms of Fan et al.
        """
        result: list[CFD] = []
        for pattern in self.tableau:
            for attribute in self.rhs:
                cells = {a: pattern.pattern(a) for a in self.lhs}
                cells[attribute] = pattern.pattern(attribute)
                result.append(CFD(self.relation_name, list(self.lhs), [attribute],
                                  [PatternTuple(cells)], name=self.name))
        return result

    def merge_with(self, other: "CFD") -> "CFD":
        """Merge two CFDs sharing the same embedded FD into one tableau."""
        if (self.relation_name.lower(), set(self.lhs), set(self.rhs)) != (
                other.relation_name.lower(), set(other.lhs), set(other.rhs)):
            raise ConstraintError("can only merge CFDs with the same embedded FD")
        patterns = list(dict.fromkeys(self.tableau + other.tableau))
        return CFD(self.relation_name, list(self.lhs), list(self.rhs), patterns,
                   name=self.name or other.name)

    # -- semantics ------------------------------------------------------------------

    def lhs_matches(self, row, pattern: PatternTuple) -> bool:
        """Whether *row* matches *pattern* on the LHS attributes."""
        return pattern.matches(row, self.lhs)

    def rhs_matches(self, row, pattern: PatternTuple) -> bool:
        """Whether *row* matches *pattern* on the RHS attributes."""
        return pattern.matches(row, self.rhs)

    def holds_on(self, relation: Relation) -> bool:
        """Whether *relation* satisfies this CFD (delegates to the detector)."""
        from repro.detection.cfd_detect import CFDDetector

        report = CFDDetector(relation, [self]).detect()
        return report.is_clean()

    def applicable_tids(self, relation: Relation) -> set[int]:
        """Tuple ids matching at least one pattern on the LHS."""
        result: set[int] = set()
        for row in relation:
            if any(self.lhs_matches(row, pattern) for pattern in self.tableau):
                result.add(row.tid)
        return result

    # -- dunder ------------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CFD):
            return NotImplemented
        return (
            self.relation_name.lower() == other.relation_name.lower()
            and self.lhs == other.lhs and self.rhs == other.rhs
            and set(self.tableau) == set(other.tableau)
        )

    def __hash__(self) -> int:
        return hash((self.relation_name.lower(), self.lhs, self.rhs, frozenset(self.tableau)))

    def __repr__(self) -> str:
        def render(pattern: PatternTuple, attributes: Iterable[str]) -> str:
            parts = []
            for attribute in attributes:
                value = pattern.pattern(attribute)
                parts.append(attribute if is_wildcard(value) else f"{attribute}={value!r}")
            return ", ".join(parts)

        rendered = " | ".join(
            f"([{render(p, self.lhs)}] -> [{render(p, self.rhs)}])" for p in self.tableau
        )
        label = f"{self.name}: " if self.name else ""
        return f"{label}{self.relation_name}{rendered}"


def group_by_embedded_fd(cfds: Sequence[CFD]) -> dict[tuple, list[CFD]]:
    """Group CFDs sharing the same embedded FD (used by merged-tableau detection)."""
    groups: dict[tuple, list[CFD]] = {}
    for cfd in cfds:
        key = (cfd.relation_name.lower(), cfd.lhs, cfd.rhs)
        groups.setdefault(key, []).append(cfd)
    return groups


def merge_cfds(cfds: Sequence[CFD]) -> list[CFD]:
    """Merge CFDs sharing an embedded FD into single CFDs with larger tableaux."""
    merged: list[CFD] = []
    for group in group_by_embedded_fd(cfds).values():
        combined = group[0]
        for cfd in group[1:]:
            combined = combined.merge_with(cfd)
        merged.append(combined)
    return merged
