"""Conditional inclusion dependencies (CINDs), following Bravo, Fan & Ma (VLDB 2007).

A CIND ``ψ = (R1[X; Xp] ⊆ R2[Y; Yp], Tp)`` extends an IND ``R1[X] ⊆ R2[Y]``
with pattern attributes: ``Xp`` are attributes of ``R1`` whose values must
match the pattern (the *condition*), and ``Yp`` are attributes of ``R2``
that must carry the pattern's constants in the matching tuple (the
*consequence*).  The tutorial's example is::

    (CD(album, price; genre='a-book') ⊆ book(title, price; format='audio'))

i.e. every CD tuple whose genre is ``a-book`` must have a book tuple with
the same (title, price) whose format is ``audio``.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.errors import ConstraintError
from repro.constraints.tableau import PatternTuple
from repro.relational.database import Database
from repro.relational.types import is_null


class CIND:
    """A conditional inclusion dependency."""

    def __init__(self, lhs_relation: str, lhs_attributes: Sequence[str],
                 rhs_relation: str, rhs_attributes: Sequence[str],
                 lhs_pattern: Mapping[str, Any] | PatternTuple | None = None,
                 rhs_pattern: Mapping[str, Any] | PatternTuple | None = None,
                 name: str | None = None) -> None:
        if len(lhs_attributes) != len(rhs_attributes):
            raise ConstraintError(
                "a CIND needs the same number of correspondence attributes on both sides")
        if not lhs_attributes:
            raise ConstraintError("a CIND needs at least one correspondence attribute")
        self.lhs_relation = lhs_relation
        self.rhs_relation = rhs_relation
        self.lhs_attributes = tuple(a.lower() for a in lhs_attributes)
        self.rhs_attributes = tuple(a.lower() for a in rhs_attributes)
        self.lhs_pattern = _as_pattern(lhs_pattern)
        self.rhs_pattern = _as_pattern(rhs_pattern)
        self.name = name

        lhs_overlap = set(self.lhs_pattern.attributes()) & set(self.lhs_attributes)
        if lhs_overlap:
            raise ConstraintError(
                f"pattern attributes {sorted(lhs_overlap)} overlap the correspondence "
                f"attributes of {lhs_relation!r}")
        rhs_overlap = set(self.rhs_pattern.attributes()) & set(self.rhs_attributes)
        if rhs_overlap:
            raise ConstraintError(
                f"pattern attributes {sorted(rhs_overlap)} overlap the correspondence "
                f"attributes of {rhs_relation!r}")

    # -- structure -------------------------------------------------------------

    def validate_against(self, database: Database) -> None:
        """Check relations and attributes exist in *database*."""
        left = database.relation(self.lhs_relation)
        right = database.relation(self.rhs_relation)
        for attribute in list(self.lhs_attributes) + self.lhs_pattern.attributes():
            if not left.schema.has_attribute(attribute):
                raise ConstraintError(
                    f"CIND {self} uses unknown attribute {attribute!r} of {self.lhs_relation!r}")
        for attribute in list(self.rhs_attributes) + self.rhs_pattern.attributes():
            if not right.schema.has_attribute(attribute):
                raise ConstraintError(
                    f"CIND {self} uses unknown attribute {attribute!r} of {self.rhs_relation!r}")

    def is_standard_ind(self) -> bool:
        """Whether the CIND degenerates to a classical IND (no constants)."""
        return not self.lhs_pattern.constants() and not self.rhs_pattern.constants()

    # -- semantics ----------------------------------------------------------------

    def applies_to(self, row) -> bool:
        """Whether an LHS tuple matches the condition pattern."""
        return self.lhs_pattern.matches(row)

    def rhs_satisfied_by(self, row) -> bool:
        """Whether an RHS tuple carries the consequence pattern's constants."""
        return self.rhs_pattern.matches(row)

    def holds_on(self, database: Database) -> bool:
        """Whether *database* satisfies this CIND (delegates to the detector)."""
        from repro.detection.cind_detect import CINDDetector

        return CINDDetector(database, [self]).detect().is_clean()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CIND):
            return NotImplemented
        return (
            self.lhs_relation.lower(), self.lhs_attributes, self.lhs_pattern,
            self.rhs_relation.lower(), self.rhs_attributes, self.rhs_pattern,
        ) == (
            other.lhs_relation.lower(), other.lhs_attributes, other.lhs_pattern,
            other.rhs_relation.lower(), other.rhs_attributes, other.rhs_pattern,
        )

    def __hash__(self) -> int:
        return hash((self.lhs_relation.lower(), self.lhs_attributes, self.lhs_pattern,
                     self.rhs_relation.lower(), self.rhs_attributes, self.rhs_pattern))

    def __repr__(self) -> str:
        def side(relation: str, attributes: tuple[str, ...], pattern: PatternTuple) -> str:
            constants = pattern.constants()
            condition = "; " + ", ".join(f"{a}={v!r}" for a, v in constants.items()) if constants else ""
            return f"{relation}({', '.join(attributes)}{condition})"

        label = f"{self.name}: " if self.name else ""
        return (f"{label}{side(self.lhs_relation, self.lhs_attributes, self.lhs_pattern)} ⊆ "
                f"{side(self.rhs_relation, self.rhs_attributes, self.rhs_pattern)}")


def _as_pattern(pattern: Mapping[str, Any] | PatternTuple | None) -> PatternTuple:
    if pattern is None:
        return PatternTuple({})
    if isinstance(pattern, PatternTuple):
        return pattern
    return PatternTuple(pattern)
