"""Extended CFDs (eCFDs): disjunction and negation in patterns.

Bravo et al. (ICDE 2008, reference [3] of the tutorial) extend CFD
patterns from single constants to **sets** of allowed values and their
complements, without increasing the complexity of the associated static
analyses.  An :class:`AttributeCondition` captures one such cell:

* ``AttributeCondition.any()``          — the unnamed variable ``_``;
* ``AttributeCondition.one_of({a, b})`` — value must be in the set
  (disjunction);
* ``AttributeCondition.none_of({a})``   — value must be outside the set
  (negation).

An :class:`ECFD` is then an embedded FD plus a tableau of such
conditions.  Plain CFDs embed into eCFDs via :meth:`ECFD.from_cfd`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ConstraintError
from repro.constraints.cfd import CFD
from repro.constraints.tableau import is_wildcard
from repro.relational.relation import Relation
from repro.relational.types import is_null


@dataclass(frozen=True)
class AttributeCondition:
    """A generalized pattern cell: wildcard, value-set, or negated value-set."""

    values: frozenset[str]
    negated: bool = False
    wildcard: bool = False

    @classmethod
    def any(cls) -> "AttributeCondition":
        """The unnamed variable: every value (including NULL) is allowed."""
        return cls(frozenset(), wildcard=True)

    @classmethod
    def one_of(cls, values: Iterable[Any]) -> "AttributeCondition":
        """Value must be one of *values* (disjunction of constants)."""
        frozen = frozenset(str(v) for v in values)
        if not frozen:
            raise ConstraintError("one_of() requires at least one value")
        return cls(frozen, negated=False)

    @classmethod
    def none_of(cls, values: Iterable[Any]) -> "AttributeCondition":
        """Value must NOT be any of *values* (negation)."""
        frozen = frozenset(str(v) for v in values)
        if not frozen:
            raise ConstraintError("none_of() requires at least one value")
        return cls(frozen, negated=True)

    @classmethod
    def equals(cls, value: Any) -> "AttributeCondition":
        """Value must equal a single constant (plain CFD cell)."""
        return cls.one_of([value])

    def is_wildcard(self) -> bool:
        return self.wildcard

    def accepts(self, value: Any) -> bool:
        """Whether a data value satisfies this condition (NULL only matches ``_``)."""
        if self.wildcard:
            return True
        if is_null(value):
            return False
        inside = str(value) in self.values
        return not inside if self.negated else inside

    def __repr__(self) -> str:
        if self.wildcard:
            return "_"
        rendered = "{" + ", ".join(sorted(self.values)) + "}"
        return f"not {rendered}" if self.negated else rendered


class ECFDPattern:
    """One tableau row of an eCFD: attribute → :class:`AttributeCondition`."""

    __slots__ = ("_cells",)

    def __init__(self, cells: Mapping[str, AttributeCondition]) -> None:
        self._cells = {attribute.lower(): condition for attribute, condition in cells.items()}

    def condition(self, attribute: str) -> AttributeCondition:
        return self._cells.get(attribute.lower(), AttributeCondition.any())

    def attributes(self) -> list[str]:
        return list(self._cells.keys())

    def matches(self, row, attributes: Iterable[str]) -> bool:
        """Whether *row* satisfies every condition on *attributes*."""
        return all(self.condition(a).accepts(row[a]) for a in attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ECFDPattern):
            return NotImplemented
        return self._cells == other._cells

    def __hash__(self) -> int:
        return hash(frozenset(self._cells.items()))

    def __repr__(self) -> str:
        cells = ", ".join(f"{a}∈{c!r}" for a, c in self._cells.items())
        return f"ECFDPattern({cells})"


class ECFD:
    """An extended CFD: embedded FD + tableau of generalized conditions.

    Semantics: for every pattern and every pair of tuples matching the
    LHS conditions and agreeing on the LHS attributes, the tuples must
    agree on the RHS attributes and satisfy the RHS conditions.
    """

    def __init__(self, relation_name: str, lhs: Sequence[str], rhs: Sequence[str],
                 patterns: Sequence[ECFDPattern | Mapping[str, AttributeCondition]] | None = None,
                 name: str | None = None) -> None:
        if not lhs or not rhs:
            raise ConstraintError("an eCFD needs LHS and RHS attributes")
        self.relation_name = relation_name
        self.lhs = tuple(a.lower() for a in lhs)
        self.rhs = tuple(a.lower() for a in rhs)
        self.name = name
        normalized: list[ECFDPattern] = []
        for pattern in (patterns or [ECFDPattern({})]):
            if isinstance(pattern, ECFDPattern):
                normalized.append(pattern)
            else:
                normalized.append(ECFDPattern(pattern))
        self.tableau = tuple(normalized)

    @classmethod
    def from_cfd(cls, cfd: CFD) -> "ECFD":
        """Embed a plain CFD as an eCFD (constants become singleton sets)."""
        patterns = []
        for pattern in cfd.tableau:
            cells: dict[str, AttributeCondition] = {}
            for attribute in cfd.attributes():
                value = pattern.pattern(attribute)
                if is_wildcard(value):
                    cells[attribute] = AttributeCondition.any()
                else:
                    cells[attribute] = AttributeCondition.equals(value)
            patterns.append(ECFDPattern(cells))
        return cls(cfd.relation_name, list(cfd.lhs), list(cfd.rhs), patterns, name=cfd.name)

    def attributes(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(self.lhs + self.rhs))

    def validate_against(self, relation: Relation) -> None:
        for attribute in self.attributes():
            if not relation.schema.has_attribute(attribute):
                raise ConstraintError(
                    f"eCFD {self} uses unknown attribute {attribute!r} of {relation.name!r}")

    # -- semantics ---------------------------------------------------------------

    def violations(self, relation: Relation) -> list[tuple[int, ...]]:
        """Violating tuples: singletons ``(tid,)`` for RHS-condition failures,
        pairs ``(tid1, tid2)`` for agreement failures."""
        self.validate_against(relation)
        found: list[tuple[int, ...]] = []
        seen_pairs: set[tuple[int, int]] = set()
        for pattern in self.tableau:
            groups: dict[tuple, list] = {}
            for row in relation:
                if not pattern.matches(row, self.lhs):
                    continue
                # single-tuple check: RHS conditions that are not wildcards
                rhs_conditions = [a for a in self.rhs if not pattern.condition(a).is_wildcard()]
                if rhs_conditions and not pattern.matches(row, rhs_conditions):
                    found.append((row.tid,))
                groups.setdefault(row.project(list(self.lhs)), []).append(row)
            for rows in groups.values():
                by_rhs: dict[tuple, list[int]] = {}
                for row in rows:
                    by_rhs.setdefault(row.project(list(self.rhs)), []).append(row.tid)
                if len(by_rhs) <= 1:
                    continue
                buckets = list(by_rhs.values())
                for i, bucket in enumerate(buckets):
                    for other in buckets[i + 1:]:
                        for tid_a in bucket:
                            for tid_b in other:
                                pair = (min(tid_a, tid_b), max(tid_a, tid_b))
                                if pair not in seen_pairs:
                                    seen_pairs.add(pair)
                                    found.append(pair)
        return found

    def holds_on(self, relation: Relation) -> bool:
        """Whether *relation* satisfies this eCFD."""
        return not self.violations(relation)

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return (f"{label}{self.relation_name}: [{', '.join(self.lhs)}] -> "
                f"[{', '.join(self.rhs)}] with {len(self.tableau)} extended pattern(s)")
