"""Classical functional dependencies (FDs).

An FD ``R: X → Y`` requires any two tuples of ``R`` agreeing on the
attributes ``X`` to also agree on ``Y``.  FDs are both a baseline for the
conditional formalisms and the target language of the discovery module.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ConstraintError
from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.types import is_null


class FunctionalDependency:
    """``relation: lhs → rhs`` over attribute name lists."""

    def __init__(self, relation_name: str, lhs: Sequence[str], rhs: Sequence[str]) -> None:
        if not relation_name:
            raise ConstraintError("an FD needs a relation name")
        if not lhs:
            raise ConstraintError("an FD needs at least one LHS attribute")
        if not rhs:
            raise ConstraintError("an FD needs at least one RHS attribute")
        self.relation_name = relation_name
        self.lhs = tuple(dict.fromkeys(a.lower() for a in lhs))
        self.rhs = tuple(dict.fromkeys(a.lower() for a in rhs))
        overlap = set(self.lhs) & set(self.rhs)
        if overlap:
            self.rhs = tuple(a for a in self.rhs if a not in overlap)
            if not self.rhs:
                raise ConstraintError("FD right-hand side is contained in its left-hand side")

    # -- structure ----------------------------------------------------------

    def attributes(self) -> tuple[str, ...]:
        """All attributes mentioned by the FD."""
        return tuple(dict.fromkeys(self.lhs + self.rhs))

    def decompose(self) -> list["FunctionalDependency"]:
        """Equivalent FDs with a single RHS attribute each."""
        return [FunctionalDependency(self.relation_name, self.lhs, [a]) for a in self.rhs]

    def validate_against(self, relation: Relation) -> None:
        """Raise :class:`ConstraintError` if an attribute is missing from *relation*."""
        for attribute in self.attributes():
            if not relation.schema.has_attribute(attribute):
                raise ConstraintError(
                    f"FD {self} refers to unknown attribute {attribute!r} of {relation.name!r}"
                )

    # -- semantics ------------------------------------------------------------

    def holds_on(self, relation: Relation, treat_null_as_value: bool = True) -> bool:
        """Whether the FD is satisfied by *relation*.

        With ``treat_null_as_value=False`` tuples containing a NULL in the
        LHS are skipped (they can never witness a violation).
        """
        self.validate_against(relation)
        index = HashIndex(relation, list(self.lhs))
        rhs = list(self.rhs)
        for key, tids in index.groups():
            if not treat_null_as_value and any(is_null(v) for v in key):
                continue
            seen = None
            for tid in tids:
                values = relation.tuple(tid).project(rhs)
                if seen is None:
                    seen = values
                elif values != seen:
                    return False
        return True

    def violating_pairs(self, relation: Relation) -> list[tuple[int, int]]:
        """All (tid, tid) pairs violating the FD (each unordered pair once)."""
        self.validate_against(relation)
        index = HashIndex(relation, list(self.lhs))
        rhs = list(self.rhs)
        pairs: list[tuple[int, int]] = []
        for _, tids in index.groups():
            by_rhs: dict[tuple, list[int]] = {}
            for tid in sorted(tids):
                by_rhs.setdefault(relation.tuple(tid).project(rhs), []).append(tid)
            if len(by_rhs) <= 1:
                continue
            groups = list(by_rhs.values())
            for i, group in enumerate(groups):
                for other in groups[i + 1:]:
                    for tid_a in group:
                        for tid_b in other:
                            pairs.append((min(tid_a, tid_b), max(tid_a, tid_b)))
        return pairs

    # -- dunder ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FunctionalDependency):
            return NotImplemented
        return (self.relation_name.lower(), set(self.lhs), set(self.rhs)) == (
            other.relation_name.lower(), set(other.lhs), set(other.rhs))

    def __hash__(self) -> int:
        return hash((self.relation_name.lower(), frozenset(self.lhs), frozenset(self.rhs)))

    def __repr__(self) -> str:
        return f"{self.relation_name}: [{', '.join(self.lhs)}] -> [{', '.join(self.rhs)}]"


def closure(attributes: Iterable[str], fds: Sequence[FunctionalDependency]) -> set[str]:
    """Attribute closure of *attributes* under classical FDs (Armstrong rules)."""
    result = {a.lower() for a in attributes}
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if set(fd.lhs) <= result and not set(fd.rhs) <= result:
                result |= set(fd.rhs)
                changed = True
    return result


def implies(fds: Sequence[FunctionalDependency], candidate: FunctionalDependency) -> bool:
    """Classical FD implication via attribute closure."""
    relevant = [fd for fd in fds if fd.relation_name.lower() == candidate.relation_name.lower()]
    return set(candidate.rhs) <= closure(candidate.lhs, relevant)


def minimal_cover(fds: Sequence[FunctionalDependency]) -> list[FunctionalDependency]:
    """A minimal cover of *fds*: singleton RHS, no redundant FDs, reduced LHS."""
    singletons: list[FunctionalDependency] = []
    for fd in fds:
        singletons.extend(fd.decompose())

    # remove extraneous LHS attributes
    reduced: list[FunctionalDependency] = []
    for fd in singletons:
        lhs = list(fd.lhs)
        for attribute in list(lhs):
            if len(lhs) == 1:
                break
            trial = [a for a in lhs if a != attribute]
            if implies(singletons, FunctionalDependency(fd.relation_name, trial, fd.rhs)):
                lhs = trial
        reduced.append(FunctionalDependency(fd.relation_name, lhs, fd.rhs))

    # drop redundant FDs
    cover = list(dict.fromkeys(reduced))
    index = 0
    while index < len(cover):
        candidate = cover[index]
        rest = cover[:index] + cover[index + 1:]
        if implies(rest, candidate):
            cover = rest
        else:
            index += 1
    return cover
