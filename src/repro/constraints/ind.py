"""Classical inclusion dependencies (INDs).

An IND ``R1[X] ⊆ R2[Y]`` requires every combination of ``X`` values in
``R1`` to appear as a combination of ``Y`` values in ``R2``.  INDs are the
base formalism that CINDs extend with pattern tableaux.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConstraintError
from repro.relational.database import Database
from repro.relational.types import is_null


class InclusionDependency:
    """``lhs_relation[lhs_attributes] ⊆ rhs_relation[rhs_attributes]``."""

    def __init__(self, lhs_relation: str, lhs_attributes: Sequence[str],
                 rhs_relation: str, rhs_attributes: Sequence[str]) -> None:
        if not lhs_attributes or not rhs_attributes:
            raise ConstraintError("an IND needs attributes on both sides")
        if len(lhs_attributes) != len(rhs_attributes):
            raise ConstraintError("an IND needs the same number of attributes on both sides")
        self.lhs_relation = lhs_relation
        self.rhs_relation = rhs_relation
        self.lhs_attributes = tuple(a.lower() for a in lhs_attributes)
        self.rhs_attributes = tuple(a.lower() for a in rhs_attributes)

    def validate_against(self, database: Database) -> None:
        """Check both relations and all attributes exist in *database*."""
        left = database.relation(self.lhs_relation)
        right = database.relation(self.rhs_relation)
        for attribute in self.lhs_attributes:
            if not left.schema.has_attribute(attribute):
                raise ConstraintError(f"IND {self} uses unknown attribute {attribute!r} "
                                      f"of {self.lhs_relation!r}")
        for attribute in self.rhs_attributes:
            if not right.schema.has_attribute(attribute):
                raise ConstraintError(f"IND {self} uses unknown attribute {attribute!r} "
                                      f"of {self.rhs_relation!r}")

    def holds_on(self, database: Database) -> bool:
        """Whether the IND is satisfied (tuples with NULL key values are skipped)."""
        return not self.violating_tids(database)

    def violating_tids(self, database: Database) -> list[int]:
        """Tuple ids of the LHS relation that have no RHS partner."""
        self.validate_against(database)
        left = database.relation(self.lhs_relation)
        right = database.relation(self.rhs_relation)
        right_keys = set()
        for row in right:
            key = row.project(list(self.rhs_attributes))
            if any(is_null(v) for v in key):
                continue
            right_keys.add(tuple(str(v) for v in key))
        violations = []
        for row in left:
            key = row.project(list(self.lhs_attributes))
            if any(is_null(v) for v in key):
                continue
            if tuple(str(v) for v in key) not in right_keys:
                violations.append(row.tid)
        return violations

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InclusionDependency):
            return NotImplemented
        return (
            self.lhs_relation.lower(), self.lhs_attributes,
            self.rhs_relation.lower(), self.rhs_attributes,
        ) == (
            other.lhs_relation.lower(), other.lhs_attributes,
            other.rhs_relation.lower(), other.rhs_attributes,
        )

    def __hash__(self) -> int:
        return hash((self.lhs_relation.lower(), self.lhs_attributes,
                     self.rhs_relation.lower(), self.rhs_attributes))

    def __repr__(self) -> str:
        return (f"{self.lhs_relation}[{', '.join(self.lhs_attributes)}] ⊆ "
                f"{self.rhs_relation}[{', '.join(self.rhs_attributes)}]")
