"""Textual syntax for constraints, mirroring the notation of the paper.

Examples accepted by the parser::

    # classical FD
    customer: [cc, zip] -> [street]

    # CFDs (constants condition the dependency; bare attributes are wildcards)
    customer([cc='44', zip] -> [street])
    customer([cc='01', ac='908', phn] -> [street, city='mh', zip])

    # CIND (condition after ';' on each side)
    CD(album, price; genre='a-book') SUBSET book(title, price; format='audio')

Constants may be single-quoted or bare (``cc=44``); the explicit wildcard
``_`` is also accepted (``zip=_`` ≡ ``zip``).  ``parse_cfds`` reads a
multi-line text, ignoring blank lines and ``#`` comments.
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import ConstraintParseError
from repro.constraints.cfd import CFD
from repro.constraints.cind import CIND
from repro.constraints.fd import FunctionalDependency
from repro.constraints.tableau import UNDERSCORE, PatternTuple

_FD_RE = re.compile(r"^\s*(?P<relation>[\w.]+)\s*:\s*\[(?P<lhs>[^\]]*)\]\s*->\s*\[(?P<rhs>[^\]]*)\]\s*$")
_CFD_RE = re.compile(r"^\s*(?P<relation>[\w.]+)\s*\(\s*\[(?P<lhs>[^\]]*)\]\s*->\s*\[(?P<rhs>[^\]]*)\]\s*\)\s*$")
_CIND_SPLIT_RE = re.compile(r"\s*(?:⊆|SUBSETOF|SUBSET|<=)\s*", re.IGNORECASE)
_CIND_SIDE_RE = re.compile(r"^\s*(?P<relation>[\w.]+)\s*\(\s*(?P<body>.*)\s*\)\s*$")


def _parse_constant(text: str) -> Any:
    text = text.strip()
    if text == "_" or text == "":
        return UNDERSCORE
    if text.startswith("'") and text.endswith("'") and len(text) >= 2:
        return text[1:-1].replace("''", "'")
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    return text


def _split_items(text: str) -> list[str]:
    """Split on commas that are not inside quotes."""
    items: list[str] = []
    current: list[str] = []
    in_quote: str | None = None
    for char in text:
        if in_quote:
            current.append(char)
            if char == in_quote:
                in_quote = None
            continue
        if char in ("'", '"'):
            in_quote = char
            current.append(char)
            continue
        if char == ",":
            items.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        items.append("".join(current))
    return [item.strip() for item in items if item.strip()]


def _parse_attribute_list(text: str, where: str) -> tuple[list[str], dict[str, Any]]:
    """Parse ``a, b='x', c=_`` into (attribute order, pattern constants)."""
    attributes: list[str] = []
    pattern: dict[str, Any] = {}
    for item in _split_items(text):
        if "=" in item:
            attribute, _, value = item.partition("=")
            attribute = attribute.strip()
            constant = _parse_constant(value)
        else:
            attribute = item.strip()
            constant = UNDERSCORE
        if not re.fullmatch(r"[\w.]+", attribute or ""):
            raise ConstraintParseError(f"bad attribute {item!r} in {where}")
        attributes.append(attribute)
        pattern[attribute] = constant
    if not attributes:
        raise ConstraintParseError(f"empty attribute list in {where}")
    return attributes, pattern


def parse_fd(text: str) -> FunctionalDependency:
    """Parse a classical FD of the form ``relation: [a, b] -> [c]``."""
    match = _FD_RE.match(text)
    if not match:
        raise ConstraintParseError(f"cannot parse FD: {text!r}")
    lhs, _ = _parse_attribute_list(match.group("lhs"), text)
    rhs, _ = _parse_attribute_list(match.group("rhs"), text)
    return FunctionalDependency(match.group("relation"), lhs, rhs)


def parse_cfd(text: str, name: str | None = None) -> CFD:
    """Parse a CFD of the form ``relation([x1='c', x2] -> [y1, y2='c'])``."""
    match = _CFD_RE.match(text)
    if not match:
        # allow the FD syntax as a CFD with the all-wildcard pattern
        fd_match = _FD_RE.match(text)
        if fd_match:
            return CFD.from_fd(parse_fd(text), name=name)
        raise ConstraintParseError(f"cannot parse CFD: {text!r}")
    lhs, lhs_pattern = _parse_attribute_list(match.group("lhs"), text)
    rhs, rhs_pattern = _parse_attribute_list(match.group("rhs"), text)
    pattern = dict(lhs_pattern)
    pattern.update(rhs_pattern)
    return CFD(match.group("relation"), lhs, rhs, [PatternTuple(pattern)], name=name)


def parse_cfds(text: str) -> list[CFD]:
    """Parse a multi-line block of CFDs (blank lines and ``#`` comments ignored)."""
    cfds: list[CFD] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            cfds.append(parse_cfd(line))
        except ConstraintParseError as exc:
            raise ConstraintParseError(f"line {line_number}: {exc}") from exc
    return cfds


def parse_cind(text: str, name: str | None = None) -> CIND:
    """Parse a CIND like ``CD(album, price; genre='a-book') SUBSET book(title, price; format='audio')``."""
    sides = _CIND_SPLIT_RE.split(text)
    if len(sides) != 2:
        raise ConstraintParseError(f"cannot parse CIND (missing SUBSET/⊆): {text!r}")
    lhs_relation, lhs_attrs, lhs_pattern = _parse_cind_side(sides[0], text)
    rhs_relation, rhs_attrs, rhs_pattern = _parse_cind_side(sides[1], text)
    return CIND(lhs_relation, lhs_attrs, rhs_relation, rhs_attrs,
                lhs_pattern=lhs_pattern, rhs_pattern=rhs_pattern, name=name)


def _parse_cind_side(text: str, original: str) -> tuple[str, list[str], dict[str, Any]]:
    match = _CIND_SIDE_RE.match(text)
    if not match:
        raise ConstraintParseError(f"cannot parse CIND side {text!r} in {original!r}")
    body = match.group("body")
    if ";" in body:
        correspondence_text, _, condition_text = body.partition(";")
    else:
        correspondence_text, condition_text = body, ""
    attributes, _ = _parse_attribute_list(correspondence_text, original)
    pattern: dict[str, Any] = {}
    if condition_text.strip():
        _, pattern = _parse_attribute_list(condition_text, original)
        pattern = {a: v for a, v in pattern.items() if v is not UNDERSCORE}
    return match.group("relation"), attributes, pattern
