"""Static analyses of CFDs: satisfiability, implication, minimal cover.

Fan et al. (TODS) show that, unlike classical FDs, a set of CFDs may be
*inconsistent* — no non-empty instance can satisfy it — and that
satisfiability / implication analysis is intractable in general (finite
attribute domains).  Under the infinite-domain assumption used throughout
this library (string attributes drawn from an unbounded domain) the
following practical algorithms apply:

* **Satisfiability** (:func:`is_satisfiable`) — a CFD set is satisfiable
  iff some *single tuple* satisfies it (CFD violations survive in
  supersets, so any tuple of a satisfying instance is itself a witness).
  The witness is found by backtracking over, per attribute, the constants
  mentioned by the CFDs plus one fresh value.

* **Implication** (:func:`implies`) — a chase over a two-tuple tableau:
  the tuples are made to agree on the candidate's LHS (respecting its
  pattern), all CFDs are applied to a fixpoint (equating right-hand
  values / forcing constants), and the candidate holds iff the chase
  forces its RHS.

* **Minimal cover** (:func:`minimal_cover`) — normalize to single-RHS,
  single-pattern CFDs and drop the ones implied by the rest.
"""

from __future__ import annotations

import itertools
from typing import Any, Sequence

from repro.errors import ConstraintError
from repro.constraints.cfd import CFD
from repro.constraints.tableau import PatternTuple, UNDERSCORE, is_wildcard

_FRESH_PREFIX = "⟨fresh⟩"  # value guaranteed not to clash with real constants


# ---------------------------------------------------------------------------
# satisfiability
# ---------------------------------------------------------------------------

def is_satisfiable(cfds: Sequence[CFD]) -> bool:
    """Whether some non-empty instance satisfies all *cfds*.

    All CFDs must be over the same relation; an empty set is trivially
    satisfiable.
    """
    return find_witness_tuple(cfds) is not None or not cfds


def find_witness_tuple(cfds: Sequence[CFD]) -> dict[str, Any] | None:
    """A single tuple (attribute → value) satisfying all *cfds*, or ``None``.

    The search assigns each attribute either one of the constants the CFDs
    mention on it or a fresh value, and backtracks on the normalized
    (single-RHS, single-pattern) CFDs whose RHS is a constant.
    """
    if not cfds:
        return None
    relations = {cfd.relation_name.lower() for cfd in cfds}
    if len(relations) > 1:
        raise ConstraintError(
            f"satisfiability analysis expects CFDs over one relation, got {sorted(relations)}")

    normalized = [n for cfd in cfds for n in cfd.normalize()]
    attributes: list[str] = []
    for cfd in normalized:
        for attribute in cfd.attributes():
            if attribute not in attributes:
                attributes.append(attribute)

    candidates: dict[str, list[Any]] = {}
    for attribute in attributes:
        constants: list[Any] = []
        for cfd in normalized:
            for pattern in cfd.tableau:
                value = pattern.pattern(attribute)
                if not is_wildcard(value) and value not in constants:
                    constants.append(value)
        candidates[attribute] = constants + [f"{_FRESH_PREFIX}{attribute}"]

    assignment: dict[str, Any] = {}

    def consistent_so_far() -> bool:
        for cfd in normalized:
            pattern = cfd.tableau[0]
            rhs_attribute = cfd.rhs[0]
            if rhs_attribute not in assignment:
                continue
            if any(a not in assignment for a in cfd.lhs):
                continue
            lhs_matches = all(
                is_wildcard(pattern.pattern(a)) or str(assignment[a]) == str(pattern.pattern(a))
                for a in cfd.lhs
            )
            if not lhs_matches:
                continue
            rhs_pattern = pattern.pattern(rhs_attribute)
            if is_wildcard(rhs_pattern):
                continue
            if str(assignment[rhs_attribute]) != str(rhs_pattern):
                return False
        return True

    def backtrack(index: int) -> bool:
        if index == len(attributes):
            return True
        attribute = attributes[index]
        for value in candidates[attribute]:
            assignment[attribute] = value
            if consistent_so_far() and backtrack(index + 1):
                return True
            del assignment[attribute]
        return False

    if backtrack(0):
        return dict(assignment)
    return None


# ---------------------------------------------------------------------------
# implication (chase over a two-tuple tableau)
# ---------------------------------------------------------------------------

class _ChaseState:
    """Two symbolic tuples over the relation's attributes, with union-find cells."""

    def __init__(self, attributes: Sequence[str]) -> None:
        self.attributes = list(attributes)
        # each cell holds either ("const", value) or ("var", unique_id)
        self._counter = itertools.count()
        self.cells: dict[tuple[int, str], Any] = {}
        for row in (0, 1):
            for attribute in attributes:
                self.cells[(row, attribute)] = ("var", next(self._counter))
        self.contradiction = False

    def set_equal_across(self, attribute: str) -> None:
        """Force t0[attribute] = t1[attribute] by sharing one symbolic value."""
        self._merge((0, attribute), (1, attribute))

    def set_constant(self, row: int, attribute: str, value: Any) -> None:
        cell = self.cells[(row, attribute)]
        if cell[0] == "const":
            if str(cell[1]) != str(value):
                self.contradiction = True
            return
        # replace every occurrence of this variable by the constant
        target = cell
        for key, current in self.cells.items():
            if current == target:
                self.cells[key] = ("const", value)

    def _merge(self, left_key: tuple[int, str], right_key: tuple[int, str]) -> None:
        left, right = self.cells[left_key], self.cells[right_key]
        if left == right:
            return
        if left[0] == "const" and right[0] == "const":
            if str(left[1]) != str(right[1]):
                self.contradiction = True
            return
        if left[0] == "const":
            self.set_constant(right_key[0], right_key[1], left[1])
            return
        if right[0] == "const":
            self.set_constant(left_key[0], left_key[1], right[1])
            return
        # both variables: rename right's variable to left's
        target = right
        for key, current in self.cells.items():
            if current == target:
                self.cells[key] = left

    def value(self, row: int, attribute: str) -> Any:
        return self.cells[(row, attribute)]

    def equal_across(self, attribute: str) -> bool:
        return self.cells[(0, attribute)] == self.cells[(1, attribute)]

    def matches_pattern(self, row: int, attribute: str, pattern_value: Any) -> bool:
        if is_wildcard(pattern_value):
            return True
        cell = self.cells[(row, attribute)]
        return cell[0] == "const" and str(cell[1]) == str(pattern_value)

    def could_match(self, row: int, attribute: str, pattern_value: Any) -> bool:
        """Whether the cell is compatible with the pattern (vars can become anything)."""
        if is_wildcard(pattern_value):
            return True
        cell = self.cells[(row, attribute)]
        if cell[0] == "var":
            return False  # the chase only fires on established facts
        return str(cell[1]) == str(pattern_value)


def implies(cfds: Sequence[CFD], candidate: CFD) -> bool:
    """Whether *cfds* imply *candidate* (chase-based test, infinite domains)."""
    relation = candidate.relation_name.lower()
    relevant = [cfd for cfd in cfds if cfd.relation_name.lower() == relation]
    normalized = [n for cfd in relevant for n in cfd.normalize()]

    for target in candidate.normalize():
        if not _implies_single(normalized, target):
            return False
    return True


def _implies_single(normalized: Sequence[CFD], candidate: CFD) -> bool:
    pattern = candidate.tableau[0]
    rhs_attribute = candidate.rhs[0]

    attributes: list[str] = list(candidate.attributes())
    for cfd in normalized:
        for attribute in cfd.attributes():
            if attribute not in attributes:
                attributes.append(attribute)

    state = _ChaseState(attributes)
    # premise: the two tuples agree on the candidate's LHS and match its pattern
    for attribute in candidate.lhs:
        state.set_equal_across(attribute)
        value = pattern.pattern(attribute)
        if not is_wildcard(value):
            state.set_constant(0, attribute, value)
            state.set_constant(1, attribute, value)

    _chase(state, normalized)

    if state.contradiction:
        # the premise cannot be realized, so the implication holds vacuously
        return True

    rhs_pattern = pattern.pattern(rhs_attribute)
    if not state.equal_across(rhs_attribute):
        return False
    if is_wildcard(rhs_pattern):
        return True
    return state.matches_pattern(0, rhs_attribute, rhs_pattern)


def _chase(state: _ChaseState, normalized: Sequence[CFD]) -> None:
    changed = True
    iterations = 0
    limit = 20 * (len(normalized) + 1) * (len(state.attributes) + 1)
    while changed and not state.contradiction and iterations < limit:
        changed = False
        iterations += 1
        for cfd in normalized:
            pattern = cfd.tableau[0]
            rhs_attribute = cfd.rhs[0]
            rhs_pattern = pattern.pattern(rhs_attribute)

            # single-tuple rule: a tuple matching the LHS pattern must carry
            # the RHS constant (when the RHS pattern is a constant).
            if not is_wildcard(rhs_pattern):
                for row in (0, 1):
                    if all(state.could_match(row, a, pattern.pattern(a)) or
                           is_wildcard(pattern.pattern(a)) for a in cfd.lhs) and \
                            all(state.matches_pattern(row, a, pattern.pattern(a))
                                for a in cfd.lhs):
                        before = state.value(row, rhs_attribute)
                        state.set_constant(row, rhs_attribute, rhs_pattern)
                        if state.value(row, rhs_attribute) != before:
                            changed = True

            # pair rule: if the tuples agree on the LHS and match its pattern,
            # they must agree on the RHS (and carry its constant, if any).
            agree = all(state.equal_across(a) for a in cfd.lhs)
            match = all(
                is_wildcard(pattern.pattern(a)) or state.matches_pattern(0, a, pattern.pattern(a))
                for a in cfd.lhs
            )
            if agree and match:
                if not state.equal_across(rhs_attribute):
                    state.set_equal_across(rhs_attribute)
                    changed = True
                if not is_wildcard(rhs_pattern):
                    before = (state.value(0, rhs_attribute), state.value(1, rhs_attribute))
                    state.set_constant(0, rhs_attribute, rhs_pattern)
                    state.set_constant(1, rhs_attribute, rhs_pattern)
                    if (state.value(0, rhs_attribute), state.value(1, rhs_attribute)) != before:
                        changed = True
            if state.contradiction:
                return


# ---------------------------------------------------------------------------
# minimal cover
# ---------------------------------------------------------------------------

def minimal_cover(cfds: Sequence[CFD]) -> list[CFD]:
    """A non-redundant set of normalized CFDs equivalent to *cfds*.

    CFDs are first normalized (single RHS attribute, single pattern), then
    duplicates and CFDs implied by the remaining ones are dropped.
    """
    normalized: list[CFD] = []
    for cfd in cfds:
        for part in cfd.normalize():
            if part not in normalized:
                normalized.append(part)

    index = 0
    while index < len(normalized):
        candidate = normalized[index]
        rest = normalized[:index] + normalized[index + 1:]
        if rest and implies(rest, candidate):
            normalized = rest
        else:
            index += 1
    return normalized


def pairwise_conflicts(cfds: Sequence[CFD]) -> list[tuple[CFD, CFD]]:
    """Pairs of constant CFDs that can never be satisfied together.

    Two normalized CFDs conflict when their LHS patterns are compatible
    (a tuple could match both) but they force different constants on the
    same RHS attribute.  This is the common source of inconsistent CFD
    sets in practice and is reported by Semandaq before repairing.
    """
    normalized = [n for cfd in cfds for n in cfd.normalize()]
    conflicts: list[tuple[CFD, CFD]] = []
    for i, first in enumerate(normalized):
        for second in normalized[i + 1:]:
            if first.relation_name.lower() != second.relation_name.lower():
                continue
            if first.rhs != second.rhs:
                continue
            pattern_a, pattern_b = first.tableau[0], second.tableau[0]
            rhs = first.rhs[0]
            value_a, value_b = pattern_a.pattern(rhs), pattern_b.pattern(rhs)
            if is_wildcard(value_a) or is_wildcard(value_b):
                continue
            if str(value_a) == str(value_b):
                continue
            shared = set(first.lhs) & set(second.lhs)
            compatible = pattern_a.is_compatible_with(pattern_b, shared)
            constant_on_shared_a = all(pattern_a.is_constant_on(a) for a in first.lhs)
            constant_on_shared_b = all(pattern_b.is_constant_on(a) for a in second.lhs)
            if compatible and constant_on_shared_a and constant_on_shared_b \
                    and set(first.lhs) == set(second.lhs):
                conflicts.append((first, second))
    return conflicts
