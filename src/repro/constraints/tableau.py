"""Pattern tableaux: the conditional part of CFDs and CINDs.

A pattern tuple assigns to each attribute either a **constant** (the
attribute must carry exactly that value) or the **unnamed variable** ``_``
(any value is allowed).  The match operator ``≍`` of Fan et al. is
implemented by :meth:`PatternTuple.matches`: a data tuple matches a
pattern tuple when it agrees with every constant in it.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import ConstraintError
from repro.relational.types import constants_equal as _constants_equal
from repro.relational.types import is_null


class _Wildcard:
    """Singleton marker for the unnamed variable ``_`` in pattern tuples."""

    _instance: "_Wildcard | None" = None

    def __new__(cls) -> "_Wildcard":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "_"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Wildcard)

    def __hash__(self) -> int:
        return hash("__repro_wildcard__")


UNDERSCORE = _Wildcard()
"""The unnamed variable ``_`` used in pattern tuples."""

Pattern = Any
"""A pattern value: either a constant or :data:`UNDERSCORE`."""


def is_wildcard(pattern: Pattern) -> bool:
    """Whether *pattern* is the unnamed variable ``_``."""
    return isinstance(pattern, _Wildcard) or pattern == "_"


def normalize_pattern(pattern: Pattern) -> Pattern:
    """Map the string ``"_"`` (and None) to the wildcard marker; keep constants."""
    if pattern is None or is_wildcard(pattern):
        return UNDERSCORE
    return pattern


class PatternTuple:
    """One row of a pattern tableau: attribute → constant or ``_``.

    Attribute lookups are case-insensitive.  Attributes not mentioned are
    treated as wildcards.
    """

    __slots__ = ("_cells",)

    def __init__(self, cells: Mapping[str, Pattern]) -> None:
        normalized: dict[str, Pattern] = {}
        for attribute, pattern in cells.items():
            if not attribute:
                raise ConstraintError("pattern tuples cannot have empty attribute names")
            normalized[attribute.lower()] = normalize_pattern(pattern)
        self._cells = normalized

    # -- accessors ---------------------------------------------------------

    def attributes(self) -> list[str]:
        """Attributes explicitly mentioned by this pattern tuple."""
        return list(self._cells.keys())

    def pattern(self, attribute: str) -> Pattern:
        """Pattern for *attribute*; unmentioned attributes are wildcards."""
        return self._cells.get(attribute.lower(), UNDERSCORE)

    def __getitem__(self, attribute: str) -> Pattern:
        return self.pattern(attribute)

    def is_constant_on(self, attribute: str) -> bool:
        """Whether this pattern pins *attribute* to a constant."""
        return not is_wildcard(self.pattern(attribute))

    def constant(self, attribute: str) -> Any:
        """The constant this pattern pins *attribute* to (raises if wildcard)."""
        pattern = self.pattern(attribute)
        if is_wildcard(pattern):
            raise ConstraintError(f"pattern has no constant on attribute {attribute!r}")
        return pattern

    def constants(self) -> dict[str, Any]:
        """All ``attribute → constant`` bindings of this pattern."""
        return {a: p for a, p in self._cells.items() if not is_wildcard(p)}

    def wildcard_attributes(self) -> list[str]:
        """Mentioned attributes carrying the unnamed variable."""
        return [a for a, p in self._cells.items() if is_wildcard(p)]

    # -- semantics -----------------------------------------------------------

    def matches(self, row, attributes: Iterable[str] | None = None) -> bool:
        """The ``≍`` operator: does data tuple *row* match this pattern?

        Only the attributes in *attributes* (default: all mentioned
        attributes) are checked.  A NULL never matches a constant.
        """
        names = list(attributes) if attributes is not None else self.attributes()
        for attribute in names:
            pattern = self.pattern(attribute)
            if is_wildcard(pattern):
                continue
            value = row[attribute]
            if is_null(value) or not _constants_equal(value, pattern):
                return False
        return True

    def matches_values(self, values: Mapping[str, Any]) -> bool:
        """Like :meth:`matches` but for a plain ``{attribute: value}`` mapping."""
        for attribute, pattern in self._cells.items():
            if is_wildcard(pattern):
                continue
            if attribute not in {k.lower() for k in values}:
                return False
            value = _lookup_ci(values, attribute)
            if is_null(value) or not _constants_equal(value, pattern):
                return False
        return True

    def is_compatible_with(self, other: "PatternTuple", attributes: Iterable[str]) -> bool:
        """Whether the two patterns can be matched by a common tuple on *attributes*."""
        for attribute in attributes:
            mine, theirs = self.pattern(attribute), other.pattern(attribute)
            if is_wildcard(mine) or is_wildcard(theirs):
                continue
            if not _constants_equal(mine, theirs):
                return False
        return True

    def more_general_than(self, other: "PatternTuple", attributes: Iterable[str]) -> bool:
        """Whether this pattern subsumes *other* on *attributes* (``_`` ⪰ constant)."""
        for attribute in attributes:
            mine, theirs = self.pattern(attribute), other.pattern(attribute)
            if is_wildcard(mine):
                continue
            if is_wildcard(theirs) or not _constants_equal(mine, theirs):
                return False
        return True

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternTuple):
            return NotImplemented
        return self._cells == other._cells

    def __hash__(self) -> int:
        return hash(frozenset(self._cells.items()))

    def __iter__(self) -> Iterator[tuple[str, Pattern]]:
        return iter(self._cells.items())

    def __repr__(self) -> str:
        cells = ", ".join(
            f"{attribute}={'_' if is_wildcard(pattern) else pattern!r}"
            for attribute, pattern in self._cells.items()
        )
        return f"PatternTuple({cells})"


constants_equal = _constants_equal
"""Public alias: the ``≍`` equality used between data values and constants.

The implementation lives in :mod:`repro.relational.types` (it is a
value-level primitive shared with the dictionary-code predicate
compilers); this module keeps the historical import path.
"""


def _lookup_ci(values: Mapping[str, Any], attribute: str) -> Any:
    for key, value in values.items():
        if key.lower() == attribute:
            return value
    return None
