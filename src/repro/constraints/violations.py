"""Violation data model shared by detection, repair and Semandaq.

A violation identifies the tuples (and the pattern) witnessing that a
constraint does not hold:

* :class:`CFDViolation` — either a single tuple violating a constant
  pattern, or a pair of tuples violating a variable pattern;
* :class:`CINDViolation` — an LHS tuple with no matching RHS tuple.

A :class:`ViolationReport` aggregates violations, exposes per-constraint
counts, the set of dirty tuples and the set of dirty *cells* (the inputs
the repair algorithm works on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.constraints.cfd import CFD
from repro.constraints.cind import CIND
from repro.constraints.tableau import PatternTuple


@dataclass(frozen=True)
class CFDViolation:
    """A witnessed CFD violation.

    ``tids`` has one element for single-tuple (constant-pattern) violations.
    For variable-pattern violations it holds the tuples of one violating
    group — all the tuples that agree on the LHS (and match the pattern)
    but do not agree on the RHS; the smallest such group is a pair.
    """

    cfd: CFD
    pattern: PatternTuple
    tids: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "tids", tuple(sorted(self.tids)))

    @property
    def is_single_tuple(self) -> bool:
        return len(self.tids) == 1

    @property
    def is_pair(self) -> bool:
        """Whether this is a multi-tuple (group) violation."""
        return len(self.tids) >= 2

    @property
    def group_size(self) -> int:
        """Number of tuples in the violating group."""
        return len(self.tids)

    def cells(self) -> list[tuple[int, str]]:
        """The (tid, attribute) cells implicated by this violation.

        For a single-tuple violation only the RHS cells of that tuple are
        implicated; for a pair violation the LHS and RHS cells of both
        tuples are (any of them could be the wrong one).
        """
        attributes: Iterable[str]
        if self.is_single_tuple:
            attributes = self.cfd.rhs
        else:
            attributes = self.cfd.attributes()
        return [(tid, attribute) for tid in self.tids for attribute in attributes]

    def __repr__(self) -> str:
        kind = "single" if self.is_single_tuple else "pair"
        return f"CFDViolation({kind}, tids={self.tids}, cfd={self.cfd.relation_name}:{self.cfd.lhs}->{self.cfd.rhs})"


@dataclass(frozen=True)
class CINDViolation:
    """An LHS tuple matching a CIND's condition with no RHS partner."""

    cind: CIND
    tid: int

    def cells(self) -> list[tuple[int, str]]:
        """The implicated cells: the correspondence attributes of the LHS tuple."""
        return [(self.tid, attribute) for attribute in self.cind.lhs_attributes]

    def __repr__(self) -> str:
        return f"CINDViolation(tid={self.tid}, cind={self.cind.lhs_relation}⊆{self.cind.rhs_relation})"


Violation = CFDViolation | CINDViolation


@dataclass
class ViolationReport:
    """Aggregated violations of one detection run."""

    relation_name: str
    violations: list[Violation] = field(default_factory=list)
    tuples_checked: int = 0

    # -- building ----------------------------------------------------------

    def add(self, violation: Violation) -> None:
        self.violations.append(violation)

    def extend(self, violations: Iterable[Violation]) -> None:
        self.violations.extend(violations)

    def merge(self, other: "ViolationReport") -> "ViolationReport":
        """A new report containing the violations of both reports."""
        merged = ViolationReport(self.relation_name,
                                 list(self.violations) + list(other.violations),
                                 max(self.tuples_checked, other.tuples_checked))
        return merged

    # -- queries ------------------------------------------------------------

    def is_clean(self) -> bool:
        """Whether no violation was found."""
        return not self.violations

    def __len__(self) -> int:
        return len(self.violations)

    def __iter__(self) -> Iterator[Violation]:
        return iter(self.violations)

    def single_tuple_violations(self) -> list[CFDViolation]:
        return [v for v in self.violations
                if isinstance(v, CFDViolation) and v.is_single_tuple]

    def pair_violations(self) -> list[CFDViolation]:
        return [v for v in self.violations if isinstance(v, CFDViolation) and v.is_pair]

    def cind_violations(self) -> list[CINDViolation]:
        return [v for v in self.violations if isinstance(v, CINDViolation)]

    def violating_tids(self) -> set[int]:
        """All tuple ids implicated in at least one violation."""
        tids: set[int] = set()
        for violation in self.violations:
            if isinstance(violation, CFDViolation):
                tids.update(violation.tids)
            else:
                tids.add(violation.tid)
        return tids

    def dirty_cells(self) -> set[tuple[int, str]]:
        """All (tid, attribute) cells implicated in at least one violation."""
        cells: set[tuple[int, str]] = set()
        for violation in self.violations:
            cells.update(violation.cells())
        return cells

    def count_by_constraint(self) -> dict[str, int]:
        """Number of violations per constraint (keyed by its repr)."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            key = repr(violation.cfd if isinstance(violation, CFDViolation) else violation.cind)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def summary(self) -> str:
        """A short human-readable summary (used by Semandaq reports)."""
        singles = len(self.single_tuple_violations())
        pairs = len(self.pair_violations())
        cinds = len(self.cind_violations())
        return (
            f"relation {self.relation_name!r}: {len(self.violations)} violations "
            f"({singles} single-tuple, {pairs} pair, {cinds} inclusion) over "
            f"{len(self.violating_tids())} tuples; {self.tuples_checked} tuples checked"
        )
