"""High-level facade of the library.

``repro.core`` exposes the handful of calls a downstream user needs for
the common workflows of the paper, without having to know the package
layout:

* :func:`detect_violations` — CFD/CIND violation detection;
* :func:`repair` — minimal-cost repairing;
* :func:`discover_cfds` — profiling: CFD discovery from data;
* :func:`match_records` — object identification with derived RCKs;
* :class:`CleaningPipeline` — detect → repair → evaluate in one object.
"""

from repro.core.pipeline import (
    CleaningPipeline,
    PipelineResult,
    detect_violations,
    discover_cfds,
    match_records,
    repair,
)

__all__ = [
    "CleaningPipeline",
    "PipelineResult",
    "detect_violations",
    "repair",
    "discover_cfds",
    "match_records",
]
