"""The high-level cleaning API.

These functions wrap the detection, repair, discovery and matching
packages with sensible defaults; each accepts the underlying objects for
full control.  :class:`CleaningPipeline` strings detection and repair
together and, when ground truth is available, evaluates the repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.constraints.cfd import CFD
from repro.constraints.cind import CIND
from repro.constraints.parse import parse_cfd
from repro.constraints.violations import ViolationReport
from repro.detection.batch import BatchCFDDetector
from repro.detection.cind_detect import CINDDetector
from repro.discovery.cfd_discovery import CFDDiscovery
from repro.errors import ReproError
from repro.matching.derivation import derive_rcks
from repro.matching.evaluation import MatchQuality, evaluate_matching
from repro.matching.matcher import MatchDecision, RecordMatcher
from repro.matching.rck import RelativeCandidateKey
from repro.matching.rules import MatchingRule
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.repair.batch_repair import BatchRepair, Repair
from repro.repair.cost import CostModel
from repro.repair.quality import RepairQuality, evaluate_repair


def _as_cfds(cfds: Sequence[CFD | str]) -> list[CFD]:
    return [parse_cfd(cfd) if isinstance(cfd, str) else cfd for cfd in cfds]


def detect_violations(data: Relation | Database,
                      cfds: Sequence[CFD | str] = (),
                      cinds: Sequence[CIND] = ()) -> ViolationReport:
    """Detect CFD and/or CIND violations on a relation or database."""
    if not cfds and not cinds:
        raise ReproError("detect_violations needs at least one constraint")
    reports: list[ViolationReport] = []
    if cfds:
        parsed = _as_cfds(cfds)
        if isinstance(data, Database):
            names = {cfd.relation_name.lower() for cfd in parsed}
            for name in names:
                relevant = [c for c in parsed if c.relation_name.lower() == name]
                reports.append(BatchCFDDetector(data.relation(name), relevant).detect())
        else:
            reports.append(BatchCFDDetector(data, parsed).detect())
    if cinds:
        if not isinstance(data, Database):
            raise ReproError("CIND detection needs a Database (two relations)")
        reports.append(CINDDetector(data, list(cinds)).detect())
    merged = reports[0]
    for report in reports[1:]:
        merged = merged.merge(report)
    return merged


def repair(relation: Relation, cfds: Sequence[CFD | str],
           cost_model: CostModel | None = None, **kwargs) -> Repair:
    """Compute a minimal-cost repair of *relation* under *cfds*."""
    return BatchRepair(relation, _as_cfds(cfds), cost_model=cost_model, **kwargs).repair()


def discover_cfds(relation: Relation, min_support: int = 3,
                  max_lhs_size: int = 2, constant_only: bool = False,
                  use_columns: bool = True, engine: str | None = None,
                  workers: int | None = None) -> list[CFD]:
    """Discover CFDs from (reasonably clean) data.

    ``engine=``/``workers=`` route partition computation through the
    chunked execution engine (:mod:`repro.engine`); the output is
    identical, only execution changes.
    """
    discovery = CFDDiscovery(relation, min_support=min_support, max_lhs_size=max_lhs_size,
                             use_columns=use_columns, engine=engine, workers=workers)
    return discovery.discover_constant_cfds() if constant_only else discovery.discover()


def match_records(left: Relation, right: Relation,
                  rules: Sequence[MatchingRule] | None = None,
                  rcks: Sequence[RelativeCandidateKey] | None = None,
                  target: Sequence[str] | None = None,
                  blocking: tuple[str, str] | None = None) -> list[MatchDecision]:
    """Match records of two relations using RCKs (derived from *rules* if needed)."""
    if rcks is None:
        if rules is None or target is None:
            raise ReproError("match_records needs either rcks, or rules plus a target list")
        rcks = derive_rcks(rules, target)
    return RecordMatcher(left, right, list(rcks), blocking=blocking).match()


@dataclass
class PipelineResult:
    """Everything a cleaning run produced."""

    report: ViolationReport
    repair: Repair
    quality: RepairQuality | None = None

    def summary(self) -> str:
        parts = [self.report.summary(), self.repair.summary()]
        if self.quality is not None:
            parts.append(repr(self.quality))
        return "\n".join(parts)


class CleaningPipeline:
    """Detect violations, repair them, and (optionally) evaluate the repair."""

    def __init__(self, cfds: Sequence[CFD | str],
                 cost_model: CostModel | None = None) -> None:
        self._cfds = _as_cfds(cfds)
        if not self._cfds:
            raise ReproError("a CleaningPipeline needs at least one CFD")
        self._cost_model = cost_model

    @property
    def cfds(self) -> list[CFD]:
        return list(self._cfds)

    def run(self, dirty: Relation, clean: Relation | None = None) -> PipelineResult:
        """Detect and repair *dirty*; evaluate against *clean* when provided."""
        report = BatchCFDDetector(dirty, self._cfds).detect()
        result = BatchRepair(dirty, self._cfds, cost_model=self._cost_model).repair()
        quality = None
        if clean is not None:
            quality = evaluate_repair(clean, dirty, result.relation)
        return PipelineResult(report=report, repair=result, quality=quality)
