"""Consistent query answering (CQA).

Rather than editing the data, CQA answers queries against *every* possible
repair of an inconsistent database and returns the answers common to all
of them — the *certain answers* (Arenas, Bertossi & Chomicki, reference
[1] of the tutorial).  The package supports selection–projection queries
over a single relation whose inconsistencies are key (FD) violations:

* :mod:`repro.cqa.repairs` enumerates the subset repairs (one tuple kept
  per conflicting key group) — exact but exponential, used on small data
  and as the oracle in tests;
* :mod:`repro.cqa.rewriting` computes the same certain answers without
  enumerating repairs, by requiring every tuple of a key group to agree on
  the projected attributes and satisfy the selection;
* :class:`repro.cqa.answer.CQAEngine` ties the two together and also
  returns *possible* answers (true in at least one repair).
"""

from repro.cqa.repairs import enumerate_key_repairs, key_conflict_groups
from repro.cqa.rewriting import certain_answers_rewriting
from repro.cqa.answer import CQAEngine, SelectionQuery

__all__ = [
    "CQAEngine",
    "SelectionQuery",
    "enumerate_key_repairs",
    "key_conflict_groups",
    "certain_answers_rewriting",
]
