"""The CQA engine: naive, certain (enumeration) and certain (rewriting) answers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.cqa.repairs import enumerate_key_repairs
from repro.cqa.rewriting import certain_answers_rewriting
from repro.errors import CQAError
from repro.relational.relation import Relation, Tuple
from repro.relational.types import is_null


@dataclass(frozen=True)
class SelectionQuery:
    """A selection–projection query ``π_project(σ_predicate(R))``.

    ``predicate`` maps a tuple to a bool; ``equalities`` is an optional
    declarative form (attribute → required value) used when no callable is
    given (and kept for introspection / pretty-printing).
    """

    project: tuple[str, ...]
    equalities: dict[str, Any] = field(default_factory=dict)
    predicate: Callable[[Tuple], bool] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "project", tuple(a.lower() for a in self.project))
        object.__setattr__(self, "equalities",
                           {a.lower(): v for a, v in self.equalities.items()})
        if not self.project:
            raise CQAError("a selection query must project at least one attribute")

    def matches(self, row: Tuple) -> bool:
        """Whether *row* satisfies the selection."""
        if self.predicate is not None:
            return bool(self.predicate(row))
        for attribute, value in self.equalities.items():
            current = row[attribute]
            if is_null(current) or str(current) != str(value):
                return False
        return True

    def answer_on(self, relation: Relation) -> set[tuple[Any, ...]]:
        """The (set-semantics) answer of the query on one relation."""
        return {row.project(list(self.project)) for row in relation if self.matches(row)}

    def __repr__(self) -> str:
        condition = " AND ".join(f"{a}={v!r}" for a, v in self.equalities.items()) or "true"
        return f"SELECT {', '.join(self.project)} WHERE {condition}"


class CQAEngine:
    """Answers selection–projection queries on a relation with key violations."""

    def __init__(self, relation: Relation, key: Sequence[str]) -> None:
        self._relation = relation
        self._key = [relation.schema.canonical_name(a) for a in key]

    # -- answer notions -------------------------------------------------------------

    def naive_answers(self, query: SelectionQuery) -> set[tuple[Any, ...]]:
        """Answers on the inconsistent relation as-is (what SQL would return)."""
        return query.answer_on(self._relation)

    def certain_answers(self, query: SelectionQuery,
                        max_repairs: int = 10000) -> set[tuple[Any, ...]]:
        """Answers true in every repair, by explicit repair enumeration."""
        answers: set[tuple[Any, ...]] | None = None
        for repair in enumerate_key_repairs(self._relation, self._key, max_repairs=max_repairs):
            current = query.answer_on(repair)
            answers = current if answers is None else (answers & current)
            if not answers:
                return set()
        return answers if answers is not None else set()

    def certain_answers_rewritten(self, query: SelectionQuery) -> set[tuple[Any, ...]]:
        """Answers true in every repair, without enumerating repairs."""
        return certain_answers_rewriting(self._relation, self._key, query)

    def possible_answers(self, query: SelectionQuery,
                         max_repairs: int = 10000) -> set[tuple[Any, ...]]:
        """Answers true in at least one repair."""
        answers: set[tuple[Any, ...]] = set()
        for repair in enumerate_key_repairs(self._relation, self._key, max_repairs=max_repairs):
            answers |= query.answer_on(repair)
        return answers
