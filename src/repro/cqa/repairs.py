"""Subset repairs of a relation under a key (FD) constraint.

For a key constraint ``X → R`` (the tuple's ``X`` values determine the
whole tuple), tuples sharing an ``X`` value but differing elsewhere are in
conflict; a *subset repair* keeps exactly one tuple of every conflicting
group (and all non-conflicting tuples).  The number of repairs is the
product of the group sizes, so enumeration is only feasible on small
conflict sets — the rewriting module avoids it; this module provides the
exact semantics and the test oracle.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

from repro.errors import CQAError
from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.types import is_null


def key_conflict_groups(relation: Relation, key: Sequence[str]) -> list[list[int]]:
    """Groups of tuple ids sharing the key but not identical on all attributes."""
    index = HashIndex(relation, list(key))
    groups: list[list[int]] = []
    for group_key, tids in index.groups():
        if len(tids) < 2 or any(is_null(v) for v in group_key):
            continue
        distinct_rows = {relation.tuple(tid).values for tid in tids}
        if len(distinct_rows) > 1:
            groups.append(sorted(tids))
    return groups


def count_key_repairs(relation: Relation, key: Sequence[str]) -> int:
    """Number of subset repairs (product of conflicting group sizes)."""
    count = 1
    for group in key_conflict_groups(relation, key):
        count *= len(group)
    return count


def enumerate_key_repairs(relation: Relation, key: Sequence[str],
                          max_repairs: int = 10000) -> Iterator[Relation]:
    """Yield every subset repair of *relation* under the key constraint.

    Raises :class:`~repro.errors.CQAError` when the number of repairs
    exceeds *max_repairs* (use the rewriting instead).
    """
    conflict_groups = key_conflict_groups(relation, key)
    total = 1
    for group in conflict_groups:
        total *= len(group)
    if total > max_repairs:
        raise CQAError(
            f"{total} repairs exceed the enumeration limit of {max_repairs}; "
            "use certain_answers_rewriting instead")

    conflicting_tids = {tid for group in conflict_groups for tid in group}
    base_tids = [tid for tid in relation.tids() if tid not in conflicting_tids]

    if not conflict_groups:
        yield relation.copy()
        return

    for chosen in itertools.product(*conflict_groups):
        repair = Relation(relation.schema)
        kept = set(base_tids) | set(chosen)
        for tid in relation.tids():
            if tid in kept:
                repair.insert(list(relation.tuple(tid).values))
        yield repair
