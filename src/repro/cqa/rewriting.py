"""Certain answers by query rewriting (no repair enumeration).

For a selection–projection query over one relation whose only
inconsistencies are violations of a key ``X → R``, a projected value
vector is a *certain* answer iff it is produced by a key group in **every
choice** of representative tuple — i.e. iff every tuple of the group
satisfies the selection and projects to that same vector.  Tuples that are
not involved in any conflict behave as singleton groups.  This mirrors the
first-order rewritings of the CQA literature (quantifier-free selections
under primary-key constraints) and runs in one pass over the relation
after grouping, instead of enumerating exponentially many repairs.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.types import is_null


def certain_answers_rewriting(relation: Relation, key: Sequence[str],
                              query) -> set[tuple[Any, ...]]:
    """Certain answers of *query* under the key constraint, via rewriting.

    *query* is a :class:`repro.cqa.answer.SelectionQuery` (imported lazily
    to avoid a circular import).
    """
    index = HashIndex(relation, list(key))
    answers: set[tuple[Any, ...]] = set()
    project = list(query.project)

    for group_key, tids in index.groups():
        rows = [relation.tuple(tid) for tid in sorted(tids)]
        if any(is_null(v) for v in group_key):
            # tuples with NULL keys are never in conflict with each other:
            # treat each one as its own group
            for row in rows:
                if query.matches(row):
                    answers.add(row.project(project))
            continue
        distinct_rows = {row.values for row in rows}
        if len(distinct_rows) == 1:
            # no conflict in this group
            if query.matches(rows[0]):
                answers.add(rows[0].project(project))
            continue
        # conflicting group: every representative choice must produce the
        # same projected answer and satisfy the selection
        if not all(query.matches(row) for row in rows):
            continue
        projections = {row.project(project) for row in rows}
        if len(projections) == 1:
            answers.add(next(iter(projections)))
    return answers
