"""Synthetic workload generators.

The evaluations of the surveyed papers use real customer / sales data that
is not publicly available; their experimental protocol, however, is fully
synthetic-friendly: start from a *clean* instance consistent with a set of
constraints, inject noise at a controlled rate, and measure detection /
repair / matching on the dirtied copy.  This package reproduces that
protocol:

* :mod:`repro.datagen.customer` — the ``customer(cc, ac, phn, name, street,
  city, zip)`` relation of the CFD papers, plus its canonical CFDs;
* :mod:`repro.datagen.orders`  — the ``book`` / ``CD`` order relations of
  the CIND examples, plus their canonical CINDs;
* :mod:`repro.datagen.cards`   — the ``card`` / ``billing`` pair of the
  record-matching section, with ground-truth match pairs;
* :mod:`repro.datagen.noise`   — controlled error injection with ground
  truth for precision/recall evaluation.

All generators are deterministic given a seed.
"""

from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import NoiseInjection, inject_noise
from repro.datagen.orders import OrdersGenerator
from repro.datagen.cards import CardBillingGenerator

__all__ = [
    "CustomerGenerator",
    "OrdersGenerator",
    "CardBillingGenerator",
    "NoiseInjection",
    "inject_noise",
]
