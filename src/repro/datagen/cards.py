"""Synthetic card / billing data with ground-truth matches.

Section 4 of the tutorial uses two sources — ``card(c#, ssn, fn, ln, addr,
phn, email, type)`` and ``billing(c#, fn, ln, addr, phn, email, item,
price)`` — and asks whether a billing record refers to the same card
holder.  The generator creates a population of card holders, emits one
card tuple per holder and one or more billing tuples per holder, then
*dirties* a controllable fraction of the billing attributes (abbreviated
addresses, typos in names, missing emails) so that exact key equality
fails while the derived RCKs still find the match.  The true
(card_tid, billing_tid) pairs are returned as ground truth.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import NULL, AttributeType

CARD_SCHEMA = RelationSchema("card", [
    Attribute("cno", AttributeType.STRING),
    Attribute("ssn", AttributeType.STRING),
    Attribute("fn", AttributeType.STRING),
    Attribute("ln", AttributeType.STRING),
    Attribute("addr", AttributeType.STRING),
    Attribute("phn", AttributeType.STRING),
    Attribute("email", AttributeType.STRING),
    Attribute("type", AttributeType.STRING),
])

BILLING_SCHEMA = RelationSchema("billing", [
    Attribute("cno", AttributeType.STRING),
    Attribute("fn", AttributeType.STRING),
    Attribute("ln", AttributeType.STRING),
    Attribute("addr", AttributeType.STRING),
    Attribute("phn", AttributeType.STRING),
    Attribute("email", AttributeType.STRING),
    Attribute("item", AttributeType.STRING),
    Attribute("price", AttributeType.STRING),
])

_FIRST_NAMES = ["michael", "richard", "joseph", "maria", "anna", "robert", "susan",
                "thomas", "jane", "liang", "pedro", "fatima"]
_LAST_NAMES = ["smith", "brady", "luth", "doe", "jones", "brown", "davis", "clark",
               "lewis", "walker", "nguyen", "garcia"]
_STREETS = ["mountain avenue", "main street", "mayfield road", "oak lane", "church road",
            "park avenue", "station road", "mill lane", "north street", "bridge road"]
_ITEMS = ["phone", "laptop", "book", "ticket", "groceries", "fuel", "subscription"]

_ABBREVIATIONS = {"avenue": "ave", "street": "st", "road": "rd", "lane": "ln"}
_NICKNAMES = {"michael": "mike", "richard": "rick", "joseph": "joe", "robert": "bob",
              "susan": "sue", "thomas": "tom", "maria": "mary"}


@dataclass
class CardBillingWorkload:
    """The generated database plus ground truth."""

    database: Database
    true_matches: set[tuple[int, int]] = field(default_factory=set)

    @property
    def card(self) -> Relation:
        return self.database.relation("card")

    @property
    def billing(self) -> Relation:
        return self.database.relation("billing")


class CardBillingGenerator:
    """Generates matched card/billing pairs with controllable dirtiness."""

    def __init__(self, seed: int = 31) -> None:
        self._random = random.Random(seed)

    def generate(self, holders: int, billings_per_holder: int = 1,
                 dirty_rate: float = 0.3) -> CardBillingWorkload:
        """Generate *holders* card holders and their billing records.

        ``dirty_rate`` is the probability that a billing record is
        perturbed (abbreviated address, nickname, typo in the last name,
        or a missing email), which is what defeats naive exact matching.
        """
        database = Database("fraud")
        card = Relation(CARD_SCHEMA)
        billing = Relation(BILLING_SCHEMA)
        true_matches: set[tuple[int, int]] = set()

        for index in range(holders):
            first = self._random.choice(_FIRST_NAMES)
            last = self._random.choice(_LAST_NAMES)
            address = f"{self._random.randrange(1, 200)} {self._random.choice(_STREETS)}"
            phone = f"908555{1000 + index}"
            email = f"{first}.{last}.{index}@example.com"
            card_tid = card.insert_dict({
                "cno": f"C{100000 + index}",
                "ssn": f"{300000000 + index}",
                "fn": first, "ln": last, "addr": address, "phn": phone,
                "email": email, "type": self._random.choice(["visa", "master"]),
            })
            for _ in range(billings_per_holder):
                values = {
                    "cno": f"C{100000 + index}",
                    "fn": first, "ln": last, "addr": address, "phn": phone,
                    "email": email,
                    "item": self._random.choice(_ITEMS),
                    "price": str(self._random.randrange(5, 900)),
                }
                if self._random.random() < dirty_rate:
                    values = self._dirty(values)
                billing_tid = billing.insert_dict(values)
                true_matches.add((card_tid, billing_tid))

        database.add(card)
        database.add(billing)
        return CardBillingWorkload(database=database, true_matches=true_matches)

    # -- dirtying -------------------------------------------------------------------

    def _dirty(self, values: dict) -> dict:
        perturbed = dict(values)
        choice = self._random.random()
        if choice < 0.35:
            # abbreviate the address ("mountain avenue" -> "mountain ave")
            address = perturbed["addr"]
            for long_form, short_form in _ABBREVIATIONS.items():
                address = address.replace(long_form, short_form)
            perturbed["addr"] = address
        elif choice < 0.6:
            # use a nickname for the first name
            perturbed["fn"] = _NICKNAMES.get(perturbed["fn"], perturbed["fn"][:3])
        elif choice < 0.8:
            # typo in the last name
            last = perturbed["ln"]
            position = self._random.randrange(len(last))
            perturbed["ln"] = last[:position] + "x" + last[position + 1:]
        else:
            # missing email
            perturbed["email"] = NULL
        return perturbed

    @staticmethod
    def target_attributes() -> list[str]:
        """The Y-list both relations share (what a match must agree on)."""
        return ["fn", "ln", "addr", "phn", "email"]
