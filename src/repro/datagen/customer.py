"""Synthetic customer data, matching the running example of the CFD papers.

The generator builds a *world*: a set of UK and US locations, each with a
fixed (zip, street, city, area-code) combination, consistent with the
canonical CFD set below.  Tuples are drawn by picking a location and a
fresh phone number, so the clean relation satisfies every canonical CFD by
construction; noise is added separately by :mod:`repro.datagen.noise`.

Canonical CFDs (also returned by :meth:`CustomerGenerator.canonical_cfds`):

* ``customer([cc='44', zip] -> [street])`` — in the UK, zip determines street;
* ``customer([cc='44', zip] -> [city])``
* ``customer([cc='01', zip] -> [street])``
* ``customer([cc='01', ac] -> [city])`` — in the US, area code determines city;
* ``customer([cc='01', ac='908'] -> [city='mh'])`` — the constant pattern of
  the tutorial's second example.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.constraints.cfd import CFD
from repro.constraints.parse import parse_cfd
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType

CUSTOMER_SCHEMA = RelationSchema("customer", [
    Attribute("cc", AttributeType.STRING),
    Attribute("ac", AttributeType.STRING),
    Attribute("phn", AttributeType.STRING),
    Attribute("name", AttributeType.STRING),
    Attribute("street", AttributeType.STRING),
    Attribute("city", AttributeType.STRING),
    Attribute("zip", AttributeType.STRING),
])

_UK_CITIES = ["edi", "ldn", "gla", "abd", "dun"]
_US_CITIES = ["mh", "nyc", "chi", "sfo", "bos"]
_STREET_WORDS = ["main", "high", "mayfield", "crichton", "mountain", "oak", "elm",
                 "church", "mill", "park", "station", "bridge", "north", "south"]
_FIRST_NAMES = ["mike", "rick", "joe", "mary", "anna", "bob", "sue", "tom", "jane", "li"]
_LAST_NAMES = ["smith", "brady", "luth", "doe", "jones", "brown", "davis", "clark",
               "lewis", "walker"]


@dataclass(frozen=True)
class _Location:
    """One consistent (cc, ac, city, zip, street) combination of the world."""

    cc: str
    ac: str
    city: str
    zip: str
    street: str


class CustomerGenerator:
    """Generates clean customer relations of a requested size."""

    def __init__(self, seed: int = 7, locations: int = 60) -> None:
        self._random = random.Random(seed)
        self._locations = self._build_world(max(locations, 4))

    # -- world construction --------------------------------------------------

    def _build_world(self, count: int) -> list[_Location]:
        locations: list[_Location] = []
        # the tutorial's US example: area code 908 is Murray Hill ('mh')
        locations.append(_Location("01", "908", "mh", "07974",
                                   "mountain ave"))
        locations.append(_Location("44", "131", "edi", "EH8 9AB", "mayfield road"))
        while len(locations) < count:
            index = len(locations)
            if index % 2 == 0:
                city = _US_CITIES[index % len(_US_CITIES)]
                ac = str(200 + index)
                zip_code = f"{10000 + index * 7}"
                cc = "01"
            else:
                city = _UK_CITIES[index % len(_UK_CITIES)]
                ac = str(100 + index)
                zip_code = f"EH{index} {index % 9}XY"
                cc = "44"
            street = (f"{self._random.choice(_STREET_WORDS)} "
                      f"{self._random.choice(['st', 'ave', 'road', 'lane'])} {index}")
            locations.append(_Location(cc, ac, city, zip_code, street))
        return locations

    # -- generation --------------------------------------------------------------

    def generate(self, tuple_count: int, name: str = "customer") -> Relation:
        """A clean customer relation with *tuple_count* tuples."""
        relation = Relation(CUSTOMER_SCHEMA.renamed_relation(name))
        for index in range(tuple_count):
            location = self._random.choice(self._locations)
            person = (f"{self._random.choice(_FIRST_NAMES)} "
                      f"{self._random.choice(_LAST_NAMES)}")
            phone = f"{5550000 + index}"
            relation.insert_dict({
                "cc": location.cc,
                "ac": location.ac,
                "phn": phone,
                "name": person,
                "street": location.street,
                "city": location.city,
                "zip": location.zip,
            })
        return relation

    # -- constraints ------------------------------------------------------------------

    @staticmethod
    def canonical_cfds() -> list[CFD]:
        """The CFD set the clean data satisfies by construction."""
        return [
            parse_cfd("customer([cc='44', zip] -> [street])", name="uk_zip_street"),
            parse_cfd("customer([cc='44', zip] -> [city])", name="uk_zip_city"),
            parse_cfd("customer([cc='01', zip] -> [street])", name="us_zip_street"),
            parse_cfd("customer([cc='01', ac] -> [city])", name="us_ac_city"),
            parse_cfd("customer([cc='01', ac='908'] -> [city='mh'])", name="us_908_mh"),
        ]

    @staticmethod
    def extended_cfds(extra_patterns: int, seed: int = 11) -> list[CFD]:
        """A larger CFD set: the embedded FD ``(cc, zip) → street`` with many
        constant zip patterns — the workload of the tableau-size experiment E2."""
        generator = CustomerGenerator(seed=seed)
        cfds = []
        for index, location in enumerate(generator._locations[:extra_patterns]):
            cfds.append(CFD.single(
                "customer", ["cc", "zip"], ["street"],
                {"cc": location.cc, "zip": location.zip},
                name=f"zip_pattern_{index}"))
        return cfds

    def locations(self) -> list[_Location]:
        """The world's locations (used by tests and the noise injector)."""
        return list(self._locations)
