"""Controlled noise injection with ground truth.

The experimental protocol of the repair papers: given a clean relation,
dirty a fraction ``rate`` of the cells of selected attributes and remember
exactly which cells were touched (the ground truth for precision/recall).
Three kinds of errors are supported:

* ``"domain"`` — replace the value by a *different* value drawn from the
  same attribute's active domain (the hardest errors: they look plausible);
* ``"typo"``   — perturb characters of the value (easier to spot);
* ``"null"``   — blank the value out.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ReproError
from repro.relational.relation import Relation
from repro.relational.types import NULL, is_null


@dataclass(frozen=True)
class InjectedError:
    """One cell whose value was corrupted."""

    tid: int
    attribute: str
    clean_value: Any
    dirty_value: Any


@dataclass
class NoiseInjection:
    """The outcome of one noise-injection run."""

    clean: Relation
    dirty: Relation
    errors: list[InjectedError] = field(default_factory=list)

    @property
    def error_cells(self) -> set[tuple[int, str]]:
        return {(error.tid, error.attribute) for error in self.errors}

    @property
    def rate(self) -> float:
        """Achieved error rate (errors / dirtied-attribute cells)."""
        total = len(self.dirty) * len(self.dirty.schema)
        return len(self.errors) / total if total else 0.0


def inject_noise(clean: Relation, rate: float,
                 attributes: Sequence[str] | None = None,
                 kind: str = "domain", seed: int = 13) -> NoiseInjection:
    """Return a dirtied copy of *clean* with ``rate`` of the cells corrupted.

    *attributes* restricts which columns may be dirtied (default: all);
    *rate* is interpreted per cell of those columns.  The clean relation
    is never modified; tuple ids are preserved so results can be compared
    cell by cell.
    """
    if not 0.0 <= rate <= 1.0:
        raise ReproError(f"noise rate must be in [0, 1], got {rate}")
    if kind not in ("domain", "typo", "null"):
        raise ReproError(f"unknown noise kind {kind!r}")
    rng = random.Random(seed)
    target_attributes = [clean.schema.canonical_name(a)
                         for a in (attributes or clean.schema.attribute_names)]

    dirty = clean.copy()
    domains = {attribute: sorted(clean.active_domain(attribute), key=str)
               for attribute in target_attributes}

    cells = [(tid, attribute) for tid in clean.tids() for attribute in target_attributes]
    rng.shuffle(cells)
    to_corrupt = cells[: int(round(rate * len(cells)))]

    errors: list[InjectedError] = []
    for tid, attribute in to_corrupt:
        clean_value = clean.value(tid, attribute)
        dirty_value = _corrupt(clean_value, domains[attribute], kind, rng)
        if _same(clean_value, dirty_value):
            continue
        dirty.update(tid, attribute, dirty_value)
        errors.append(InjectedError(tid, attribute.lower(), clean_value, dirty_value))
    return NoiseInjection(clean=clean, dirty=dirty, errors=errors)


def _same(left: Any, right: Any) -> bool:
    if is_null(left) and is_null(right):
        return True
    if is_null(left) or is_null(right):
        return False
    return str(left) == str(right)


def _corrupt(value: Any, domain: list[Any], kind: str, rng: random.Random) -> Any:
    if kind == "null":
        return NULL
    if kind == "domain":
        alternatives = [v for v in domain if not _same(v, value)]
        if alternatives:
            return rng.choice(alternatives)
        kind = "typo"  # degenerate domain: fall back to a typo
    return _typo(str(value) if not is_null(value) else "x", rng)


def _typo(text: str, rng: random.Random) -> str:
    """Perturb one character (substitution, deletion, duplication or append)."""
    letters = string.ascii_lowercase + string.digits
    if not text:
        return rng.choice(letters)
    position = rng.randrange(len(text))
    operation = rng.choice(("substitute", "delete", "duplicate", "append"))
    if operation == "substitute":
        replacement = rng.choice([c for c in letters if c != text[position]])
        return text[:position] + replacement + text[position + 1:]
    if operation == "delete" and len(text) > 1:
        return text[:position] + text[position + 1:]
    if operation == "duplicate":
        return text[:position + 1] + text[position] + text[position + 1:]
    return text + rng.choice(letters)
