"""Synthetic book / CD order data for the CIND experiments.

The tutorial's CIND example relates CD orders to book orders: every CD
whose genre is ``a-book`` (an audio book) must have a matching ``book``
tuple with the same title and price and format ``audio``.  The generator
builds a catalog of titles, emits a ``book`` relation covering the audio
books, and a ``cd`` relation referencing them; a ``violation_rate``
fraction of the audio-book CDs is left *without* a proper book partner so
that detection workloads of a known size can be produced.
"""

from __future__ import annotations

import random

from repro.constraints.cind import CIND
from repro.constraints.parse import parse_cind
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType

CD_SCHEMA = RelationSchema("cd", [
    Attribute("album", AttributeType.STRING),
    Attribute("price", AttributeType.STRING),
    Attribute("genre", AttributeType.STRING),
])

BOOK_SCHEMA = RelationSchema("book", [
    Attribute("title", AttributeType.STRING),
    Attribute("price", AttributeType.STRING),
    Attribute("format", AttributeType.STRING),
])

_GENRES = ["rock", "jazz", "classical", "pop", "folk"]
_WORDS = ["winter", "river", "shadow", "light", "garden", "stone", "echo", "silver",
          "journey", "harbor", "meadow", "ember", "willow", "summit", "quiet"]


class OrdersGenerator:
    """Generates (cd, book) databases with a controllable CIND violation rate."""

    def __init__(self, seed: int = 23, catalog_size: int = 200) -> None:
        self._random = random.Random(seed)
        self._catalog = [
            f"{self._random.choice(_WORDS)} {self._random.choice(_WORDS)} {index}"
            for index in range(catalog_size)
        ]

    def generate(self, cd_count: int, violation_rate: float = 0.05,
                 audio_fraction: float = 0.4) -> tuple[Database, int]:
        """Build a database with *cd_count* CD tuples.

        Returns ``(database, expected_violations)`` where the second
        component is the number of audio-book CDs intentionally left
        without a matching book tuple.
        """
        database = Database("orders")
        books = Relation(BOOK_SCHEMA)
        cds = Relation(CD_SCHEMA)

        expected_violations = 0
        covered_titles: set[str] = set()
        for index in range(cd_count):
            # titles are made unique per CD so the expected violation count is exact
            title = f"{self._random.choice(self._catalog)} #{index}"
            price = str(self._random.randrange(5, 40))
            is_audio_book = self._random.random() < audio_fraction
            if not is_audio_book:
                cds.insert_dict({"album": title, "price": price,
                                 "genre": self._random.choice(_GENRES)})
                continue
            cds.insert_dict({"album": title, "price": price, "genre": "a-book"})
            violate = self._random.random() < violation_rate
            if violate:
                expected_violations += 1
                # either omit the book entirely or give it the wrong format
                if self._random.random() < 0.5 and title not in covered_titles:
                    books.insert_dict({"title": title, "price": price, "format": "hardcover"})
                continue
            books.insert_dict({"title": title, "price": price, "format": "audio"})
            covered_titles.add(title)

        # add unrelated print books as background noise
        for index in range(cd_count // 4):
            books.insert_dict({
                "title": self._random.choice(self._catalog),
                "price": str(self._random.randrange(5, 40)),
                "format": self._random.choice(["paperback", "hardcover"]),
            })

        database.add(cds)
        database.add(books)
        return database, expected_violations

    @staticmethod
    def canonical_cind() -> CIND:
        """The tutorial's CIND over the generated schema."""
        return parse_cind(
            "cd(album, price; genre='a-book') SUBSET book(title, price; format='audio')",
            name="audio_books")
