"""Violation detection for CFDs and CINDs.

Two detection paths are provided for CFDs, mirroring the evaluation of
Fan et al.:

* a **direct** index-based detector (:class:`~repro.detection.cfd_detect.CFDDetector`),
  which groups tuples on the embedded FD's LHS and checks each pattern;
* a **SQL-based** detector (:class:`~repro.detection.cfd_detect.SQLCFDDetector`),
  which generates the pair of detection queries of the paper (one for
  single-tuple violations, one for group violations) and runs them on the
  library's SQL engine.

Additionally:

* :mod:`repro.detection.batch` detects many CFDs sharing an embedded FD in
  one pass over a merged tableau;
* :mod:`repro.detection.incremental` maintains violations under tuple
  insertions and deletions without re-scanning the whole relation;
* :mod:`repro.detection.cind_detect` detects CIND violations across two
  relations.

The columnar detectors accept ``engine=``/``workers=`` knobs that route
execution through the chunked engine (:mod:`repro.engine`): balanced
column-partition chunks, per-chunk workers, and group merging at chunk
boundaries — with reports byte-identical to the sequential path.
"""

from repro.detection.cfd_detect import CFDDetector, SQLCFDDetector, detect_cfd_violations
from repro.detection.cind_detect import CINDDetector, detect_cind_violations
from repro.detection.batch import BatchCFDDetector
from repro.detection.incremental import IncrementalCFDDetector

__all__ = [
    "CFDDetector",
    "SQLCFDDetector",
    "BatchCFDDetector",
    "IncrementalCFDDetector",
    "CINDDetector",
    "detect_cfd_violations",
    "detect_cind_violations",
]
