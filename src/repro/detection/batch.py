"""Merged-tableau (batch) detection of many CFDs.

When several CFDs share the same embedded FD ``X → Y`` (differing only in
their pattern tuples), Fan et al. detect them together: the pattern
tableaux are merged and the relation is grouped on ``X`` **once**, instead
of once per CFD.  The per-group work then checks every pattern against the
group.  :class:`BatchCFDDetector` implements this on the columnar
substrate (grouping by integer code tuples, patterns compiled to code
tests; ``use_columns=False`` restores the row-at-a-time variant); the
naive alternative (one full detection pass per CFD) is available via
:meth:`BatchCFDDetector.detect_naive` so that benchmarks can compare the
two (experiment E3).  ``engine=``/``workers=`` run the columnar batch
pass on the chunked execution engine (:mod:`repro.engine`) with
byte-identical reports.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Sequence

from repro.constraints.cfd import CFD, group_by_embedded_fd, merge_cfds
from repro.constraints.tableau import PatternTuple
from repro.constraints.violations import CFDViolation, ViolationReport
from repro.detection.cfd_detect import CFDDetector
from repro.detection.columnar import NULL_CODE, compile_tableau
from repro.engine.detect import ChunkedCFDEngine
from repro.engine.executor import resolve_pool
from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.types import is_null


class BatchCFDDetector:
    """Detects a set of CFDs by merging tableaux per embedded FD."""

    def __init__(self, relation: Relation, cfds: Sequence[CFD],
                 use_columns: bool = True,
                 engine: str | None = None, workers: int | None = None,
                 task_timeout: float | None = None,
                 task_retries: int | None = None) -> None:
        for cfd in cfds:
            cfd.validate_against(relation)
        self._relation = relation
        self._cfds = list(cfds)
        self._merged = merge_cfds(cfds)
        self._use_columns = use_columns
        self._engine_name = engine
        self._workers = workers
        self._pool = (resolve_pool(engine, workers, task_timeout=task_timeout,
                                   task_retries=task_retries)
                      if use_columns else None)
        self._chunked: "ChunkedCFDEngine | None" = None

    @property
    def merged_cfds(self) -> list[CFD]:
        """The CFDs after merging tableaux (one per embedded FD)."""
        return list(self._merged)

    # -- batch path ---------------------------------------------------------------

    def detect(self) -> ViolationReport:
        """One grouping pass per embedded FD, all patterns checked per group."""
        report = ViolationReport(self._relation.name, tuples_checked=len(self._relation))
        if self._pool is not None:
            if self._chunked is None:
                items = [(merged, compile_tableau(merged, self._relation))
                         for merged in self._merged]
                self._chunked = ChunkedCFDEngine(self._relation, items, self._pool,
                                                 kind="batch")
            for violations in self._chunked.detect():
                report.extend(violations)
            return report
        for merged in self._merged:
            report.extend(self._detect_merged(merged) if self._use_columns
                          else self._detect_merged_rows(merged))
        return report

    def _detect_merged(self, cfd: CFD) -> list[CFDViolation]:
        """Columnar batch detection of one merged CFD."""
        violations: list[CFDViolation] = []
        compiled = compile_tableau(cfd, self._relation)

        # single-tuple violations: check every tuple against every pattern
        # with RHS constants, in one scan over the code arrays.
        constant_patterns = [cp for cp in compiled if cp.rhs_tests]
        if constant_patterns:
            for tid in self._relation.tids():
                for cp in constant_patterns:
                    if cp.lhs_matches(tid) and not cp.rhs_constants_match(tid):
                        violations.append(CFDViolation(cfd, cp.pattern, (tid,)))

        # group violations: one pass over the code-keyed buckets.
        variable_patterns = [cp for cp in compiled if cp.variable_rhs]
        if variable_patterns:
            index = HashIndex(self._relation, list(cfd.lhs))
            for key, tids in index.bucket_items():
                if len(tids) < 2 or NULL_CODE in key:
                    continue
                ordered = sorted(tids)
                for cp in variable_patterns:
                    matching = cp.group_matching(ordered)
                    if matching is not None and cp.rhs_disagrees(matching):
                        violations.append(CFDViolation(cfd, cp.pattern, tuple(matching)))
        return violations

    def _detect_merged_rows(self, cfd: CFD) -> list[CFDViolation]:
        """Row-at-a-time batch detection (the pre-columnar baseline)."""
        violations: list[CFDViolation] = []

        constant_patterns = [
            pattern for pattern in cfd.tableau
            if any(pattern.is_constant_on(a) for a in cfd.rhs)
        ]
        if constant_patterns:
            for row in self._relation:
                for pattern in constant_patterns:
                    if not pattern.matches(row, cfd.lhs):
                        continue
                    constant_rhs = [a for a in cfd.rhs if pattern.is_constant_on(a)]
                    if not pattern.matches(row, constant_rhs):
                        violations.append(CFDViolation(cfd, pattern, (row.tid,)))

        variable_patterns = [
            pattern for pattern in cfd.tableau
            if any(not pattern.is_constant_on(a) for a in cfd.rhs)
        ]
        if variable_patterns:
            index = HashIndex(self._relation, list(cfd.lhs), use_columns=False)
            for key, tids in index.bucket_items():
                if len(tids) < 2 or any(is_null(v) for v in key):
                    continue
                rows = [self._relation.tuple(tid) for tid in sorted(tids)]
                for pattern in variable_patterns:
                    variable_rhs = [a for a in cfd.rhs if not pattern.is_constant_on(a)]
                    matching = [row for row in rows if pattern.matches(row, cfd.lhs)]
                    if len(matching) < 2:
                        continue
                    by_rhs: dict[tuple[Any, ...], list[int]] = defaultdict(list)
                    for row in matching:
                        by_rhs[row.project(variable_rhs)].append(row.tid)
                    if len(by_rhs) > 1:
                        violations.append(
                            CFDViolation(cfd, pattern, tuple(sorted(r.tid for r in matching))))
        return violations

    # -- naive path -----------------------------------------------------------------

    def detect_naive(self) -> ViolationReport:
        """One full detection pass per original CFD (the baseline E3 compares against)."""
        report = ViolationReport(self._relation.name, tuples_checked=len(self._relation))
        for cfd in self._cfds:
            report.extend(CFDDetector(self._relation, [cfd],
                                      use_columns=self._use_columns,
                                      engine=self._engine_name,
                                      workers=self._workers).detect_one(cfd))
        return report

    # -- comparison helper -------------------------------------------------------------

    def violating_tids_agree(self) -> bool:
        """Whether the batch and naive paths implicate the same tuples (sanity check)."""
        return self.detect().violating_tids() == self.detect_naive().violating_tids()
