"""CFD violation detection.

Given a relation ``R`` and a CFD ``φ = (X → Y, Tp)``, two kinds of
violations exist:

* **single-tuple** violations: a tuple matches a pattern's constants on
  ``X`` but not on ``Y`` (only possible when the pattern has constants on
  the RHS);
* **group** violations: a set of tuples match a pattern on ``X``, agree on
  ``X`` but do not all agree on ``Y``.

:class:`CFDDetector` finds both by hashing tuples on ``X``.  By default it
runs *columnar*: patterns are compiled to code-level tests against the
relation's dictionary-encoded column store
(:mod:`repro.detection.columnar`) and grouping happens over integer code
tuples — the hot path never materialises a :class:`Tuple`.
``use_columns=False`` selects the original row-at-a-time implementation,
which produces identical reports (the parity tests assert this) and serves
as the benchmark baseline.

The columnar path can additionally run on the chunked execution engine
(:mod:`repro.engine`): ``engine="serial"`` splits the scan into chunks
with boundary merging, ``engine="parallel"`` fans the chunks out to a
process pool (``workers=`` sets the size).  Reports stay byte-identical
to the sequential columnar path; ``REPRO_ENGINE`` supplies a
process-wide default so whole test runs can be forced through the engine.

:class:`SQLCFDDetector` instead *generates SQL* — the approach of Fan et
al.'s Semandaq system — and executes it on the library's SQL engine.  All
paths return the same :class:`~repro.constraints.violations.ViolationReport`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Sequence

from repro import obs
from repro.constraints.cfd import CFD
from repro.constraints.tableau import PatternTuple, is_wildcard
from repro.constraints.violations import CFDViolation, ViolationReport
from repro.detection.columnar import NULL_CODE, CompiledPattern, compile_tableau
from repro.engine.detect import ChunkedCFDEngine
from repro.engine.executor import resolve_pool
from repro.relational.database import Database
from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.sql.engine import SQLEngine
from repro.relational.types import is_null


class CFDDetector:
    """Direct (index-based) CFD violation detection on one relation."""

    def __init__(self, relation: Relation, cfds: Sequence[CFD],
                 enumerate_pairs: bool = False, use_columns: bool = True,
                 engine: str | None = None, workers: int | None = None,
                 task_timeout: float | None = None,
                 task_retries: int | None = None) -> None:
        for cfd in cfds:
            cfd.validate_against(relation)
        self._relation = relation
        self._cfds = list(cfds)
        self._enumerate_pairs = enumerate_pairs
        self._use_columns = use_columns
        self._indexes: dict[tuple[str, ...], HashIndex] = {}
        # the chunked engine only exists for the columnar representation
        self._pool = (resolve_pool(engine, workers, task_timeout=task_timeout,
                                   task_retries=task_retries)
                      if use_columns else None)
        self._chunked: "ChunkedCFDEngine | None" = None

    # -- public ----------------------------------------------------------------

    def detect(self) -> ViolationReport:
        """Detect all violations of all configured CFDs."""
        with obs.span("detect.cfd", relation=self._relation.name):
            report = ViolationReport(self._relation.name,
                                     tuples_checked=len(self._relation))
            if self._pool is not None:
                for violations in self._engine().detect():
                    report.extend(violations)
            else:
                for cfd in self._cfds:
                    report.extend(self.detect_one(cfd))
            if obs.enabled:
                obs.inc("detect.cfd.violations", len(report.violations))
            return report

    def detect_one(self, cfd: CFD) -> list[CFDViolation]:
        """Violations of a single CFD."""
        if self._pool is not None:
            for position, registered in enumerate(self._cfds):
                if registered is cfd or registered == cfd:
                    return self._engine().detect([position])[0]
            ephemeral = ChunkedCFDEngine(
                self._relation, [(cfd, compile_tableau(cfd, self._relation))],
                self._pool, kind="cfd", enumerate_pairs=self._enumerate_pairs)
            return ephemeral.detect()[0]
        violations: list[CFDViolation] = []
        if self._use_columns:
            for compiled in compile_tableau(cfd, self._relation):
                violations.extend(self._single_tuple_violations_columnar(cfd, compiled))
                violations.extend(self._group_violations_columnar(cfd, compiled))
        else:
            for pattern in cfd.tableau:
                violations.extend(self._single_tuple_violations(cfd, pattern))
                violations.extend(self._group_violations(cfd, pattern))
        return violations

    def _engine(self) -> "ChunkedCFDEngine":
        if self._chunked is None:
            items = [(cfd, compile_tableau(cfd, self._relation)) for cfd in self._cfds]
            self._chunked = ChunkedCFDEngine(self._relation, items, self._pool,
                                             kind="cfd",
                                             enumerate_pairs=self._enumerate_pairs)
        return self._chunked

    # -- columnar path ------------------------------------------------------------

    def _single_tuple_violations_columnar(self, cfd: CFD,
                                          compiled: CompiledPattern) -> list[CFDViolation]:
        if not compiled.rhs_tests:
            return []
        pattern = compiled.pattern
        violations = []
        for tid in self._relation.tids():
            if compiled.lhs_matches(tid) and not compiled.rhs_constants_match(tid):
                violations.append(CFDViolation(cfd, pattern, (tid,)))
        return violations

    def _group_violations_columnar(self, cfd: CFD,
                                   compiled: CompiledPattern) -> list[CFDViolation]:
        if not compiled.variable_rhs:
            return []
        index = self._index_for(cfd.lhs)
        violations: list[CFDViolation] = []
        for key, tids in index.bucket_items():
            if len(tids) < 2 or NULL_CODE in key:
                continue
            matching = compiled.group_matching(tids)
            if matching is None:
                continue
            by_rhs: dict[Any, list[int]] = defaultdict(list)
            for tid in matching:
                by_rhs[compiled.rhs_key(tid)].append(tid)
            if len(by_rhs) <= 1:
                continue
            if self._enumerate_pairs:
                buckets = list(by_rhs.values())
                for i, bucket in enumerate(buckets):
                    for other in buckets[i + 1:]:
                        for tid_a in bucket:
                            for tid_b in other:
                                violations.append(
                                    CFDViolation(cfd, compiled.pattern, (tid_a, tid_b)))
            else:
                violations.append(
                    CFDViolation(cfd, compiled.pattern, tuple(sorted(matching))))
        return violations

    # -- row path: single-tuple violations ------------------------------------------

    def _single_tuple_violations(self, cfd: CFD, pattern: PatternTuple) -> list[CFDViolation]:
        constant_rhs = [a for a in cfd.rhs if pattern.is_constant_on(a)]
        if not constant_rhs:
            return []
        violations = []
        for row in self._relation:
            if not pattern.matches(row, cfd.lhs):
                continue
            if not pattern.matches(row, constant_rhs):
                violations.append(CFDViolation(cfd, pattern, (row.tid,)))
        return violations

    # -- row path: group violations --------------------------------------------------

    def _group_violations(self, cfd: CFD, pattern: PatternTuple) -> list[CFDViolation]:
        variable_rhs = [a for a in cfd.rhs if not pattern.is_constant_on(a)]
        if not variable_rhs:
            return []
        index = self._index_for(cfd.lhs)
        violations: list[CFDViolation] = []
        for key, tids in index.bucket_items():
            if len(tids) < 2:
                continue
            if any(is_null(value) for value in key):
                continue
            matching = [tid for tid in tids
                        if pattern.matches(self._relation.tuple(tid), cfd.lhs)]
            if len(matching) < 2:
                continue
            by_rhs: dict[tuple[Any, ...], list[int]] = defaultdict(list)
            for tid in matching:
                by_rhs[self._relation.tuple(tid).project(variable_rhs)].append(tid)
            if len(by_rhs) <= 1:
                continue
            if self._enumerate_pairs:
                buckets = list(by_rhs.values())
                for i, bucket in enumerate(buckets):
                    for other in buckets[i + 1:]:
                        for tid_a in bucket:
                            for tid_b in other:
                                violations.append(CFDViolation(cfd, pattern, (tid_a, tid_b)))
            else:
                violations.append(CFDViolation(cfd, pattern, tuple(sorted(matching))))
        return violations

    def _index_for(self, attributes: tuple[str, ...]) -> HashIndex:
        if attributes not in self._indexes or self._indexes[attributes].is_stale():
            self._indexes[attributes] = HashIndex(self._relation, list(attributes),
                                                  use_columns=self._use_columns)
        elif obs.enabled:
            obs.inc("cache.index.reuse")
        return self._indexes[attributes]


def detect_cfd_violations(relation: Relation, cfds: Sequence[CFD],
                          enumerate_pairs: bool = False,
                          use_columns: bool = True,
                          engine: str | None = None,
                          workers: int | None = None) -> ViolationReport:
    """Convenience wrapper around :class:`CFDDetector`."""
    return CFDDetector(relation, cfds, enumerate_pairs=enumerate_pairs,
                       use_columns=use_columns, engine=engine,
                       workers=workers).detect()


class SQLCFDDetector:
    """SQL-generation based CFD detection (the Semandaq approach).

    For every CFD and pattern two queries are generated:

    * ``Q_single`` selects the tuples matching the pattern's LHS constants
      whose RHS disagrees with the pattern's RHS constants;
    * ``Q_group`` groups the tuples matching the LHS constants by the LHS
      attributes and keeps groups with more than one distinct RHS value.

    The queries are executed on :class:`~repro.relational.sql.engine.SQLEngine`;
    the group query's keys are mapped back to tuple ids with a hash index
    so the report matches the direct detector's exactly.
    """

    def __init__(self, database: Database, cfds: Sequence[CFD]) -> None:
        self._database = database
        self._engine = SQLEngine(database)
        self._cfds = list(cfds)

    # -- SQL generation -----------------------------------------------------------

    @staticmethod
    def _quote(value: Any) -> str:
        return "'" + str(value).replace("'", "''") + "'"

    def single_tuple_sql(self, cfd: CFD, pattern: PatternTuple) -> str | None:
        """The single-tuple violation query, or ``None`` when not applicable."""
        constant_rhs = [a for a in cfd.rhs if pattern.is_constant_on(a)]
        if not constant_rhs:
            return None
        conditions = [
            f"t.{attribute} = {self._quote(pattern.constant(attribute))}"
            for attribute in cfd.lhs if pattern.is_constant_on(attribute)
        ]
        rhs_disagrees = [
            f"(t.{attribute} <> {self._quote(pattern.constant(attribute))}"
            f" OR t.{attribute} IS NULL)"
            for attribute in constant_rhs
        ]
        where = " AND ".join(conditions + ["(" + " OR ".join(rhs_disagrees) + ")"]) \
            if conditions else "(" + " OR ".join(rhs_disagrees) + ")"
        return f"SELECT t.* FROM {cfd.relation_name} t WHERE {where}"

    def group_sql(self, cfd: CFD, pattern: PatternTuple) -> str | None:
        """The group (pair) violation query, or ``None`` when not applicable."""
        variable_rhs = [a for a in cfd.rhs if not pattern.is_constant_on(a)]
        if not variable_rhs:
            return None
        conditions = [
            f"t.{attribute} = {self._quote(pattern.constant(attribute))}"
            for attribute in cfd.lhs if pattern.is_constant_on(attribute)
        ]
        null_guards = [f"t.{attribute} IS NOT NULL" for attribute in cfd.lhs]
        where = " AND ".join(conditions + null_guards)
        group_cols = ", ".join(f"t.{attribute}" for attribute in cfd.lhs)
        select_cols = ", ".join(f"t.{a} AS {a}" for a in cfd.lhs)
        having = " OR ".join(
            f"COUNT(DISTINCT t.{attribute}) > 1" for attribute in variable_rhs
        )
        where_clause = f" WHERE {where}" if where else ""
        return (f"SELECT {select_cols}, COUNT(*) AS cnt FROM {cfd.relation_name} t"
                f"{where_clause} GROUP BY {group_cols} HAVING {having}")

    def generated_queries(self) -> list[str]:
        """All generated SQL texts (useful for inspection and tests)."""
        queries = []
        for cfd in self._cfds:
            for pattern in cfd.tableau:
                for sql in (self.single_tuple_sql(cfd, pattern), self.group_sql(cfd, pattern)):
                    if sql is not None:
                        queries.append(sql)
        return queries

    # -- execution -------------------------------------------------------------------

    def detect(self) -> ViolationReport:
        """Run the generated queries and assemble a violation report."""
        relation_names = {cfd.relation_name for cfd in self._cfds}
        report_name = next(iter(relation_names)) if len(relation_names) == 1 else "multiple"
        total = sum(len(self._database.relation(name)) for name in relation_names)
        report = ViolationReport(report_name, tuples_checked=total)

        for cfd in self._cfds:
            relation = self._database.relation(cfd.relation_name)
            index = HashIndex(relation, list(cfd.lhs))
            for pattern in cfd.tableau:
                single_sql = self.single_tuple_sql(cfd, pattern)
                if single_sql is not None:
                    result = self._engine.query(single_sql)
                    matched = self._match_back_single(relation, cfd, pattern, result)
                    report.extend(matched)
                group_sql = self.group_sql(cfd, pattern)
                if group_sql is not None:
                    result = self._engine.query(group_sql)
                    report.extend(self._match_back_groups(relation, index, cfd, pattern, result))
        if obs.enabled:
            obs.inc("detect.cfd.violations", len(report.violations))
        return report

    def _match_back_single(self, relation: Relation, cfd: CFD, pattern: PatternTuple,
                           result: Relation) -> list[CFDViolation]:
        """Map single-tuple query rows back to tuple ids by value equality."""
        violations = []
        wanted = {tuple(row.values) for row in result}
        if not wanted:
            return violations
        for row in relation:
            if tuple(row.values) in wanted and pattern.matches(row, cfd.lhs) \
                    and not pattern.matches(row, [a for a in cfd.rhs if pattern.is_constant_on(a)]):
                violations.append(CFDViolation(cfd, pattern, (row.tid,)))
        return violations

    def _match_back_groups(self, relation: Relation, index: HashIndex, cfd: CFD,
                           pattern: PatternTuple, result: Relation) -> list[CFDViolation]:
        variable_rhs = [a for a in cfd.rhs if not pattern.is_constant_on(a)]
        violations = []
        for row in result:
            key = tuple(row[a] for a in cfd.lhs)
            tids = sorted(index.lookup(key))
            matching = [tid for tid in tids
                        if pattern.matches(relation.tuple(tid), cfd.lhs)]
            if len(matching) < 2:
                continue
            distinct_rhs = {relation.tuple(tid).project(variable_rhs) for tid in matching}
            if len(distinct_rhs) > 1:
                violations.append(CFDViolation(cfd, pattern, tuple(matching)))
        return violations
