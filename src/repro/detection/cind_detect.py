"""CIND violation detection across two relations.

A CIND ``(R1[X; Xp] ⊆ R2[Y; Yp])`` is violated by an ``R1`` tuple that
matches the condition pattern ``Xp`` but has no ``R2`` partner that agrees
on the correspondence attributes *and* carries the consequence pattern
``Yp``.  Detection is a hash anti-join: index the qualifying ``R2`` tuples
on ``Y`` once, then scan the qualifying ``R1`` tuples.

The default implementation is columnar: pattern constants are pre-encoded
to dictionary-code sets on each side, the scans read integer code arrays,
and the cross-relation correspondence keys are *bridged codes* — string-mode
:class:`~repro.relational.columns.DictionaryBridge` translations map both
sides into one canonical code space, so the anti-join compares small
integer tuples and never materialises a string per tuple.
``use_columns=False`` restores the row-at-a-time scan; both produce
identical reports.  ``engine=``/``workers=`` route the columnar anti-join
through the chunked execution engine (:mod:`repro.engine`): both sides
are scanned chunk-by-chunk (optionally in a process pool) and the
qualifying RHS keys are merged before the anti-join — still the same
report, byte for byte.

For reference (and for the SQL-generation tests) the detector can also
emit the SQL the Semandaq system would issue; since the library's SQL
dialect has no ``NOT EXISTS``, that text is produced for documentation and
the execution path always uses the anti-join.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro import obs
from repro.constraints.cind import CIND
from repro.constraints.tableau import PatternTuple
from repro.constraints.violations import CINDViolation, ViolationReport
from repro.detection.columnar import NULL_CODE, constant_code_set
from repro.engine.detect import ChunkedCINDEngine
from repro.engine.executor import resolve_pool
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.types import is_null


class CINDDetector:
    """Detects violations of a set of CINDs on a database."""

    def __init__(self, database: Database, cinds: Sequence[CIND],
                 use_columns: bool = True,
                 engine: str | None = None, workers: int | None = None,
                 task_timeout: float | None = None,
                 task_retries: int | None = None) -> None:
        for cind in cinds:
            cind.validate_against(database)
        self._database = database
        self._cinds = list(cinds)
        self._use_columns = use_columns
        # the chunked engine only exists for the columnar representation
        self._pool = (resolve_pool(engine, workers, task_timeout=task_timeout,
                                   task_retries=task_retries)
                      if use_columns else None)
        self._chunked: "ChunkedCINDEngine | None" = None

    def detect(self) -> ViolationReport:
        """Detect all violations of all configured CINDs."""
        with obs.span("detect.cind"):
            names = {cind.lhs_relation for cind in self._cinds}
            report_name = next(iter(names)) if len(names) == 1 else "multiple"
            total = sum(len(self._database.relation(name)) for name in names)
            report = ViolationReport(report_name, tuples_checked=total)
            if self._pool is not None:
                for violations in self._engine().detect():
                    report.extend(violations)
            else:
                for cind in self._cinds:
                    report.extend(self.detect_one(cind))
            if obs.enabled:
                obs.inc("detect.cind.violations", len(report.violations))
            return report

    def detect_one(self, cind: CIND) -> list[CINDViolation]:
        """Violations of a single CIND."""
        if self._pool is not None:
            for position, registered in enumerate(self._cinds):
                if registered is cind or registered == cind:
                    return self._engine().detect([position])[0]
            return ChunkedCINDEngine(self._database, [cind], self._pool).detect()[0]
        left = self._database.relation(cind.lhs_relation)
        right = self._database.relation(cind.rhs_relation)
        if self._use_columns:
            return self._detect_one_columnar(cind, left, right)
        return self._detect_one_rows(cind, left, right)

    def _engine(self) -> "ChunkedCINDEngine":
        if self._chunked is None:
            self._chunked = ChunkedCINDEngine(self._database, self._cinds, self._pool)
        return self._chunked

    @staticmethod
    def _compile_pattern(relation: Relation,
                         pattern: PatternTuple) -> list[tuple[list[int], set[int]]]:
        """Code-level tests for a pattern's constants against one relation."""
        store = relation.columns
        tests = []
        for attribute, constant in pattern.constants().items():
            column = store.column(attribute)
            tests.append((column.codes, constant_code_set(column, constant)))
        return tests

    def _detect_one_columnar(self, cind: CIND, left: Relation,
                             right: Relation) -> list[CINDViolation]:
        """Bridged-code anti-join: no string tuple is ever materialised.

        CIND correspondence compares keys by string equality — an
        equivalence relation per attribute — so comparisons run entirely
        on *canonical* codes: each RHS code maps through a string-mode
        self-bridge to the first RHS code sharing its string, and each
        LHS code maps through a string-mode cross-bridge to that same
        canonical RHS code (or :data:`~repro.relational.columns.NO_PARTNER`
        when the RHS dictionary lacks the string — which already proves
        the violation).  An LHS key matches some RHS key iff the
        canonical code tuples are equal, so the code-level anti-join is
        exact.
        """
        rhs_tests = self._compile_pattern(right, cind.rhs_pattern)
        rhs_columns = [right.columns.column(a) for a in cind.rhs_attributes]
        rhs_arrays = [column.codes for column in rhs_columns]
        rhs_canons = [column.bridge_to(column, mode="string").translation
                      for column in rhs_columns]

        right_keys: set[tuple[int, ...]] = set()
        for tid in right.tids():
            if any(codes[tid] not in allowed for codes, allowed in rhs_tests):
                continue
            key_codes = [codes[tid] for codes in rhs_arrays]
            if NULL_CODE in key_codes:
                continue
            right_keys.add(tuple(canon[code]
                                 for canon, code in zip(rhs_canons, key_codes)))

        lhs_tests = self._compile_pattern(left, cind.lhs_pattern)
        lhs_columns = [left.columns.column(a) for a in cind.lhs_attributes]
        lhs_arrays = [column.codes for column in lhs_columns]
        bridges = [lhs_column.bridge_to(rhs_column, mode="string").translation
                   for lhs_column, rhs_column in zip(lhs_columns, rhs_columns)]

        violations: list[CINDViolation] = []
        for tid in left.tids():
            if any(codes[tid] not in allowed for codes, allowed in lhs_tests):
                continue
            key_codes = [codes[tid] for codes in lhs_arrays]
            if NULL_CODE in key_codes:
                violations.append(CINDViolation(cind, tid))
                continue
            key = tuple(bridge[code] for bridge, code in zip(bridges, key_codes))
            if key not in right_keys:  # NO_PARTNER components always miss
                violations.append(CINDViolation(cind, tid))
        return violations

    def _detect_one_rows(self, cind: CIND, left: Relation,
                         right: Relation) -> list[CINDViolation]:
        """Row-at-a-time anti-join (the pre-columnar baseline)."""
        right_keys: set[tuple[str, ...]] = set()
        for row in right:
            if not cind.rhs_satisfied_by(row):
                continue
            key = row.project(list(cind.rhs_attributes))
            if any(is_null(v) for v in key):
                continue
            right_keys.add(tuple(str(v) for v in key))

        violations: list[CINDViolation] = []
        for row in left:
            if not cind.applies_to(row):
                continue
            key = row.project(list(cind.lhs_attributes))
            if any(is_null(v) for v in key):
                violations.append(CINDViolation(cind, row.tid))
                continue
            if tuple(str(v) for v in key) not in right_keys:
                violations.append(CINDViolation(cind, row.tid))
        return violations

    # -- SQL text (reference output, matching the Semandaq demo) --------------------

    @staticmethod
    def _quote(value: Any) -> str:
        return "'" + str(value).replace("'", "''") + "'"

    def reference_sql(self, cind: CIND) -> str:
        """The NOT EXISTS query Semandaq would issue for *cind* (reference only)."""
        lhs_conditions = [
            f"l.{attribute} = {self._quote(value)}"
            for attribute, value in cind.lhs_pattern.constants().items()
        ]
        rhs_conditions = [
            f"r.{attribute} = {self._quote(value)}"
            for attribute, value in cind.rhs_pattern.constants().items()
        ]
        correspondence = [
            f"r.{right} = l.{left}"
            for left, right in zip(cind.lhs_attributes, cind.rhs_attributes)
        ]
        where = " AND ".join(lhs_conditions) if lhs_conditions else "1 = 1"
        inner = " AND ".join(correspondence + rhs_conditions)
        return (f"SELECT l.* FROM {cind.lhs_relation} l WHERE {where} "
                f"AND NOT EXISTS (SELECT 1 FROM {cind.rhs_relation} r WHERE {inner})")


def detect_cind_violations(database: Database, cinds: Sequence[CIND]) -> ViolationReport:
    """Convenience wrapper around :class:`CINDDetector`."""
    return CINDDetector(database, cinds).detect()
