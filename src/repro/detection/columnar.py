"""Code-level (columnar) compilation of CFD/CIND patterns.

Pattern matching is the inner loop of detection.  Instead of comparing raw
values tuple-by-tuple (``pattern.matches(row, ...)``), a pattern is
*compiled once* against a relation's column store: every constant in the
pattern is pre-encoded into the set of dictionary codes it matches (via
:meth:`~repro.relational.columns.Column.matcher`, honouring the same
int/str-tolerant equality as the row path), and every wildcard RHS
attribute is bound to its code array.  Per-tuple tests then reduce to
integer array reads and small-set membership:

* ``t ≍ tp`` on the LHS  →  ``codes[tid] in allowed`` per constant;
* ``t[Y] = t'[Y]``       →  equality of code tuples.

Code tuples agree with value tuples under Python equality (the dictionary
maps ``==``-equal values to one code and NULL to code 0), so a compiled
plan reports exactly the violations of the row-at-a-time path — verified
by the columnar parity tests.

Compiled plans are cheap to build (matcher sets are cached per column and
constant) and stay valid as the relation evolves: code arrays and matcher
sets are maintained in place by the column store, which is what lets
:class:`~repro.detection.incremental.IncrementalCFDDetector` keep plans
for its whole lifetime.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.constraints.cfd import CFD
from repro.constraints.tableau import PatternTuple
from repro.relational.columns import NULL_CODE
from repro.relational.predicates import constant_code_set
from repro.relational.relation import Relation

__all__ = ["NULL_CODE", "CompiledPattern", "compile_tableau", "constant_code_set"]
# constant_code_set moved to repro.relational.predicates (shared with the
# SQL push-down); re-exported here for the detection-side importers.


class CompiledPattern:
    """One pattern tuple of a CFD, compiled against a relation's columns."""

    __slots__ = ("pattern", "lhs_tests", "rhs_tests", "variable_rhs", "variable_arrays")

    def __init__(self, cfd: CFD, pattern: PatternTuple, relation: Relation) -> None:
        store = relation.columns
        self.pattern = pattern
        self.lhs_tests: list[tuple[list[int], set[int]]] = []
        for attribute in cfd.lhs:
            if pattern.is_constant_on(attribute):
                column = store.column(attribute)
                self.lhs_tests.append(
                    (column.codes, constant_code_set(column, pattern.constant(attribute))))
        self.rhs_tests: list[tuple[list[int], set[int]]] = []
        self.variable_rhs: list[str] = []
        for attribute in cfd.rhs:
            if pattern.is_constant_on(attribute):
                column = store.column(attribute)
                self.rhs_tests.append(
                    (column.codes, constant_code_set(column, pattern.constant(attribute))))
            else:
                self.variable_rhs.append(attribute)
        self.variable_arrays = [store.column(a).codes for a in self.variable_rhs]

    # -- per-tuple tests ---------------------------------------------------

    def lhs_matches(self, tid: int) -> bool:
        """``t ≍ tp`` on the LHS attributes (wildcards always match)."""
        for codes, allowed in self.lhs_tests:
            if codes[tid] not in allowed:
                return False
        return True

    def rhs_constants_match(self, tid: int) -> bool:
        """``t ≍ tp`` on the constant RHS attributes."""
        for codes, allowed in self.rhs_tests:
            if codes[tid] not in allowed:
                return False
        return True

    def rhs_key(self, tid: int) -> Any:
        """Hashable encoding of the wildcard-RHS values of one tuple."""
        arrays = self.variable_arrays
        if len(arrays) == 1:
            return arrays[0][tid]
        return tuple(codes[tid] for codes in arrays)

    # -- per-group tests ---------------------------------------------------
    #
    # Shared by all three detectors (full, batch, incremental) so the group
    # semantics cannot drift between them; input order is preserved so each
    # caller controls the order violations are reported in.

    def group_matching(self, tids: "Sequence[int] | set[int] | frozenset[int]") -> list[int] | None:
        """The tids of one LHS group matching this pattern, in input order.

        Returns ``None`` when fewer than two tuples match (no group
        violation possible).
        """
        if self.lhs_tests:
            matching = [tid for tid in tids if self.lhs_matches(tid)]
            if len(matching) < 2:
                return None
            return matching
        return list(tids)

    def rhs_disagrees(self, matching: Sequence[int]) -> bool:
        """Whether the matching tuples carry more than one wildcard-RHS value."""
        rhs_key = self.rhs_key
        first = rhs_key(matching[0])
        return any(rhs_key(tid) != first for tid in matching[1:])


def compile_tableau(cfd: CFD, relation: Relation) -> list[CompiledPattern]:
    """Compile every pattern of *cfd*'s tableau against *relation*."""
    return [CompiledPattern(cfd, pattern, relation) for pattern in cfd.tableau]
