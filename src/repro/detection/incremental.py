"""Incremental CFD violation detection.

Re-running full detection after every change is wasteful when updates are
small — one of the open problems the tutorial lists (§6(d)) and evaluated
by the incremental-detection experiments of Fan et al.  The idea: a CFD
violation can only appear or disappear inside the *group* of tuples that
agree on the embedded FD's LHS with an inserted or deleted tuple, so only
those groups need re-checking.

:class:`IncrementalCFDDetector` keeps, per embedded FD, a columnar hash
index on the LHS and a map ``group key → violations`` where the key is the
index's *encoded* (dictionary-code) key; pattern tableaux are compiled to
code-level tests once at construction and stay valid as the column store
grows.  :meth:`insert_tuple` and :meth:`delete_tuple` update only the
affected group and return the violation delta.  The global report is
always available via :meth:`current_report` and is kept equal to what full
re-detection would produce (verified by tests and by experiment E4).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.constraints.cfd import CFD, merge_cfds
from repro.constraints.violations import CFDViolation, ViolationReport
from repro.detection.columnar import NULL_CODE, CompiledPattern, compile_tableau
from repro.relational.index import HashIndex
from repro.relational.relation import Relation


class IncrementalCFDDetector:
    """Maintains CFD violations of a relation under inserts and deletes."""

    def __init__(self, relation: Relation, cfds: Sequence[CFD]) -> None:
        for cfd in cfds:
            cfd.validate_against(relation)
        self._relation = relation
        self._merged = merge_cfds(cfds)
        self._indexes: dict[int, HashIndex] = {}
        self._compiled: dict[int, list[CompiledPattern]] = {}
        # per merged CFD: encoded group key -> list of violations in that group
        self._group_violations: dict[int, dict[tuple[Any, ...], list[CFDViolation]]] = {}
        # single-tuple violations per merged CFD, keyed by tid
        self._single_violations: dict[int, dict[int, list[CFDViolation]]] = {}
        self._build()

    # -- initial build -----------------------------------------------------------

    def _build(self) -> None:
        for position, cfd in enumerate(self._merged):
            index = HashIndex(self._relation, list(cfd.lhs))
            self._indexes[position] = index
            self._compiled[position] = compile_tableau(cfd, self._relation)
            group_map: dict[tuple[Any, ...], list[CFDViolation]] = {}
            for key, tids in index.bucket_items():
                found = self._check_group(position, cfd, key, tids)
                if found:
                    group_map[key] = found
            self._group_violations[position] = group_map
            singles: dict[int, list[CFDViolation]] = {}
            for tid in self._relation.tids():
                found_singles = self._check_single(position, cfd, tid)
                if found_singles:
                    singles[tid] = found_singles
            self._single_violations[position] = singles

    # -- checking helpers -----------------------------------------------------------

    def _check_single(self, position: int, cfd: CFD, tid: int) -> list[CFDViolation]:
        violations = []
        for compiled in self._compiled[position]:
            if not compiled.rhs_tests:
                continue
            if compiled.lhs_matches(tid) and not compiled.rhs_constants_match(tid):
                violations.append(CFDViolation(cfd, compiled.pattern, (tid,)))
        return violations

    def _check_group(self, position: int, cfd: CFD, key: tuple[Any, ...],
                     tids: set[int] | frozenset[int]) -> list[CFDViolation]:
        if len(tids) < 2 or NULL_CODE in key:
            return []
        ordered = sorted(tids)
        violations = []
        for compiled in self._compiled[position]:
            if not compiled.variable_rhs:
                continue
            matching = compiled.group_matching(ordered)
            if matching is not None and compiled.rhs_disagrees(matching):
                violations.append(CFDViolation(cfd, compiled.pattern, tuple(matching)))
        return violations

    # -- updates ------------------------------------------------------------------------

    def insert_tuple(self, values: Mapping[str, Any]) -> list[CFDViolation]:
        """Insert a new tuple into the relation and return the *new* violations."""
        tid = self._relation.insert_dict(values)
        return self._after_insert(tid)

    def notify_inserted(self, tid: int) -> list[CFDViolation]:
        """Register an externally inserted tuple (already in the relation)."""
        return self._after_insert(tid)

    def _after_insert(self, tid: int) -> list[CFDViolation]:
        row = self._relation.tuple(tid)
        new_violations: list[CFDViolation] = []
        for position, cfd in enumerate(self._merged):
            index = self._indexes[position]
            key = index.add_tuple(row)
            singles = self._check_single(position, cfd, tid)
            if singles:
                self._single_violations[position][tid] = singles
                new_violations.extend(singles)
            previous = self._group_violations[position].get(key, [])
            current = self._check_group(position, cfd, key, index.bucket_view(key))
            if current:
                self._group_violations[position][key] = current
            else:
                self._group_violations[position].pop(key, None)
            new_violations.extend(v for v in current if v not in previous)
        return new_violations

    def delete_tuple(self, tid: int) -> list[CFDViolation]:
        """Delete a tuple and return the violations that *disappeared*."""
        row = self._relation.tuple(tid)
        removed: list[CFDViolation] = []
        for position, cfd in enumerate(self._merged):
            index = self._indexes[position]
            key = index.remove_tuple(row)
            gone_singles = self._single_violations[position].pop(tid, [])
            removed.extend(gone_singles)
            previous = self._group_violations[position].get(key, [])
            remaining_tids = index.bucket_view(key)
            current = self._check_group(position, cfd, key, remaining_tids) \
                if remaining_tids else []
            if current:
                self._group_violations[position][key] = current
            else:
                self._group_violations[position].pop(key, None)
            removed.extend(v for v in previous if v not in current)
        self._relation.delete(tid)
        return removed

    def update_cell(self, tid: int, attribute: str, value: Any) -> list[CFDViolation]:
        """Update one cell; re-checks the tuple's old and new groups."""
        row = self._relation.tuple(tid)
        old_keys: dict[int, tuple[Any, ...]] = {}
        for position in range(len(self._merged)):
            old_keys[position] = self._indexes[position].remove_tuple(row)
        self._relation.update(tid, attribute, value)
        refreshed = self._relation.tuple(tid)
        changed: list[CFDViolation] = []
        for position, cfd in enumerate(self._merged):
            index = self._indexes[position]
            new_key = index.add_tuple(refreshed)
            # re-check the old and new groups plus the tuple's single violations
            self._single_violations[position].pop(tid, None)
            singles = self._check_single(position, cfd, tid)
            if singles:
                self._single_violations[position][tid] = singles
                changed.extend(singles)
            for key in {old_keys[position], new_key}:
                tids = index.bucket_view(key)
                current = self._check_group(position, cfd, key, tids) if tids else []
                if current:
                    self._group_violations[position][key] = current
                    changed.extend(current)
                else:
                    self._group_violations[position].pop(key, None)
        return changed

    # -- reporting ------------------------------------------------------------------------

    def current_report(self) -> ViolationReport:
        """The full violation report reflecting all updates so far."""
        report = ViolationReport(self._relation.name, tuples_checked=len(self._relation))
        for position in range(len(self._merged)):
            for violations in self._single_violations[position].values():
                report.extend(violations)
            for violations in self._group_violations[position].values():
                report.extend(violations)
        return report

    def recompute_full(self) -> ViolationReport:
        """Full re-detection from scratch (the baseline incremental detection beats)."""
        from repro.detection.batch import BatchCFDDetector

        return BatchCFDDetector(self._relation, list(self._merged)).detect()
