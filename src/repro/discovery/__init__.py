"""Constraint discovery (profiling).

The tutorial lists *profiling* — discovering meta-data, in particular
dependencies, from sample data — among the core data-quality activities.
This package discovers constraints from (reasonably clean) data:

* :mod:`repro.discovery.partitions` — stripped partitions, the data
  structure behind TANE-style discovery;
* :mod:`repro.discovery.fd_discovery` — levelwise discovery of minimal
  functional dependencies;
* :mod:`repro.discovery.itemsets` — frequent / closed / free itemset
  mining over ``attribute = value`` items;
* :mod:`repro.discovery.cfd_discovery` — CFDMiner-style discovery of
  constant CFDs plus conditional refinement of FDs that do not hold
  globally into variable CFDs with constant conditioning patterns.
"""

from repro.discovery.partitions import (
    Partition,
    PartitionCache,
    PartitionProvider,
    partition_cache,
    partition_of,
)
from repro.discovery.fd_discovery import FDDiscovery, discover_fds
from repro.discovery.itemsets import ItemsetMiner, Itemset
from repro.discovery.cfd_discovery import CFDDiscovery, discover_constant_cfds, discover_cfds

__all__ = [
    "Partition",
    "PartitionCache",
    "PartitionProvider",
    "partition_cache",
    "partition_of",
    "FDDiscovery",
    "discover_fds",
    "ItemsetMiner",
    "Itemset",
    "CFDDiscovery",
    "discover_constant_cfds",
    "discover_cfds",
]
