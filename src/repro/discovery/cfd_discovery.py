"""CFD discovery: constant CFDs via CFDMiner and variable CFDs via conditional refinement.

Two discovery procedures are provided, mirroring the profiling activities
the tutorial mentions (§2):

* **Constant CFDs** (:func:`discover_constant_cfds`, the CFDMiner idea):
  for every *free* frequent itemset ``X`` and every item ``(A, a)`` in the
  closure of ``X`` but not in ``X`` (with ``A`` not among ``X``'s
  attributes), the constant CFD ``(attrs(X) → A, (values(X) ‖ a))`` holds
  with support ``supp(X)``.

* **Variable CFDs by conditional refinement**
  (:meth:`CFDDiscovery.discover_variable_cfds`): for every candidate FD
  ``X → A`` that does *not* hold globally, try conditioning on a constant
  pattern for one attribute ``B ∈ X``; if the FD holds on the subset
  matching ``B = b`` with enough support, the CFD
  ``(X → A, (B=b, _ ... ‖ _))`` is emitted.  This is a pragmatic subset of
  full CTANE (which explores arbitrary pattern tableaux); DESIGN.md calls
  out the simplification.

Both procedures run on the columnar substrate by default: candidate FDs
are validated on cached stripped partitions
(:class:`~repro.discovery.partitions.PartitionProvider`, optionally
chunk-parallel via ``engine=``/``workers=``), and itemset mining reads
dictionary code arrays.  ``use_columns=False`` keeps the value-level
reference path; the discovered CFD lists are identical either way.
"""

from __future__ import annotations

import itertools
from typing import Any, Sequence

from repro import obs
from repro.constraints.cfd import CFD
from repro.constraints.tableau import PatternTuple
from repro.discovery.itemsets import ItemsetMiner
from repro.discovery.partitions import PartitionProvider
from repro.errors import DiscoveryError
from repro.relational.columns import NULL_CODE
from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.types import is_null


class CFDDiscovery:
    """Discovers constant and variable CFDs from a relation."""

    def __init__(self, relation: Relation, min_support: int = 3,
                 max_lhs_size: int = 2, use_columns: bool = True,
                 engine: str | None = None, workers: int | None = None,
                 task_timeout: float | None = None,
                 task_retries: int | None = None) -> None:
        if min_support < 1:
            raise DiscoveryError("min_support must be at least 1")
        if max_lhs_size < 1:
            raise DiscoveryError("max_lhs_size must be at least 1")
        self._relation = relation
        self._min_support = min_support
        self._max_lhs_size = max_lhs_size
        self._attributes = [a.lower() for a in relation.schema.attribute_names]
        self._use_columns = use_columns
        self._provider = PartitionProvider(relation, use_columns=use_columns,
                                           engine=engine, workers=workers,
                                           task_timeout=task_timeout,
                                           task_retries=task_retries)
        # columnar path: conditioning groups per attribute, computed once
        # per relation version (refinement retries every failed FD whose
        # LHS contains the attribute against the same groups)
        self._groups_version = -1
        self._groups_by_attribute: dict[str, list[tuple[Any, set[int]]]] = {}

    # -- constant CFDs (CFDMiner) --------------------------------------------------

    def discover_constant_cfds(self) -> list[CFD]:
        """Constant CFDs with support at least ``min_support``."""
        with obs.span("discovery.constant_cfds", relation=self._relation.name):
            return self._discover_constant_cfds()

    def _discover_constant_cfds(self) -> list[CFD]:
        miner = ItemsetMiner(self._relation, min_support=self._min_support,
                             max_size=self._max_lhs_size,
                             use_columns=self._use_columns)
        discovered: list[CFD] = []
        seen: set[tuple] = set()
        for itemset in miner.free_itemsets():
            closure = miner.closure_of(itemset.items)
            lhs_attributes = sorted(itemset.attributes())
            lhs_constants = {attribute: value for attribute, value in itemset.items}
            for attribute, value in sorted(closure - itemset.items):
                if attribute in lhs_attributes:
                    continue
                key = (tuple(lhs_attributes), tuple(sorted(lhs_constants.items())),
                       attribute, value)
                if key in seen:
                    continue
                seen.add(key)
                pattern = dict(lhs_constants)
                pattern[attribute] = value
                discovered.append(CFD(self._relation.name, lhs_attributes, [attribute],
                                      [PatternTuple(pattern)],
                                      name=f"const_{len(discovered)}"))
        return discovered

    # -- variable CFDs by conditional refinement -------------------------------------

    def discover_variable_cfds(self) -> list[CFD]:
        """Variable CFDs: FDs that fail globally but hold on a conditioned subset."""
        with obs.span("discovery.variable_cfds", relation=self._relation.name):
            discovered: list[CFD] = []
            candidates = self._candidate_fds()
            if obs.enabled:
                obs.gauge("discovery.candidate_fds", len(candidates))
            for lhs, rhs in candidates:
                if self._fd_holds(lhs, rhs):
                    # a plain FD: emit it as an all-wildcard CFD
                    discovered.append(CFD(self._relation.name, sorted(lhs), [rhs],
                                          name=f"fd_{len(discovered)}"))
                    continue
                discovered.extend(self._refine(lhs, rhs, len(discovered)))
            return discovered

    def discover(self) -> list[CFD]:
        """Constant plus variable CFDs."""
        return self.discover_constant_cfds() + self.discover_variable_cfds()

    # -- helpers --------------------------------------------------------------------

    def _candidate_fds(self) -> list[tuple[frozenset[str], str]]:
        candidates = []
        for size in range(1, self._max_lhs_size + 1):
            for lhs in itertools.combinations(self._attributes, size):
                for rhs in self._attributes:
                    if rhs not in lhs:
                        candidates.append((frozenset(lhs), rhs))
        return candidates

    def _fd_holds(self, lhs: frozenset[str], rhs: str) -> bool:
        coarse = self._provider.partition(lhs)
        fine = self._provider.partition(lhs | {rhs})
        return coarse.refines_without_splitting(fine)

    def _conditioning_groups(self, attribute: str) -> list[tuple[Any, list[int] | set[int]]]:
        """Non-NULL ``(value, tids)`` groups of one attribute, scan order.

        The columnar path reads a freshly built code-keyed
        :class:`HashIndex`, decodes each group's representative value
        once, and memoizes the groups per relation version (every failed
        FD whose LHS contains the attribute conditions on the same
        groups); the value path groups raw cell values row by row.  Both
        yield the same groups in the same first-occurrence order.
        """
        if self._use_columns:
            if self._groups_version != self._relation.version:
                self._groups_by_attribute.clear()
                self._groups_version = self._relation.version
            groups = self._groups_by_attribute.get(attribute)
            if groups is None:
                index = HashIndex(self._relation, [attribute])
                column = self._relation.columns.column(attribute)
                groups = [(column.values[key[0]], tids)
                          for key, tids in index.bucket_items()
                          if key[0] != NULL_CODE]
                self._groups_by_attribute[attribute] = groups
            return groups
        position = self._relation.schema.position(attribute)
        buckets: dict[Any, list[int]] = {}
        for tid, values in self._relation.rows_items():
            value = values[position]
            if is_null(value):
                continue
            buckets.setdefault(value, []).append(tid)
        return list(buckets.items())

    def _refine(self, lhs: frozenset[str], rhs: str, offset: int) -> list[CFD]:
        """Condition the failed FD on constants of one LHS attribute.

        On the columnar path with an engine requested, the per-group
        subset checks fan out across the worker pool
        (:meth:`~repro.engine.discover.ChunkedPartitionEngine.refine_subsets`)
        — one batch of conditioning groups per worker, verdicts stitched
        back in input order, so the emitted CFD list (names included) is
        identical to the sequential walk.  Wide relations generate one
        candidate FD per attribute pair and retry each failure against
        every conditioning group, which is exactly the workload the
        fan-out amortises.
        """
        lhs_list = sorted(lhs)
        candidates: list[tuple[str, Any, Any]] = []
        for conditioning in lhs_list:
            for value, tids in self._conditioning_groups(conditioning):
                if len(tids) >= self._min_support:
                    candidates.append((conditioning, value, tids))
        chunked = self._provider.chunked
        if chunked is not None:
            verdicts = chunked.refine_subsets(
                lhs_list, rhs, [list(tids) for _, _, tids in candidates])
        else:
            verdicts = [self._holds_on_subset(lhs_list, rhs, tids)
                        for _, _, tids in candidates]
        refined: list[CFD] = []
        for (conditioning, value, _), holds in zip(candidates, verdicts):
            if holds:
                refined.append(CFD(
                    self._relation.name, lhs_list, [rhs],
                    [PatternTuple({conditioning: value})],
                    name=f"cond_{offset + len(refined)}"))
        return refined

    def _holds_on_subset(self, lhs: Sequence[str], rhs: str,
                         tids: set[int] | frozenset[int] | list[int]) -> bool:
        positions = self._relation.schema.positions(lhs)
        rhs_position = self._relation.schema.position(rhs)
        if self._use_columns:
            store = self._relation.columns
            arrays = store.code_arrays(positions)
            rhs_codes = store.column_at(rhs_position).codes
            seen: dict[Any, int] = {}
            if len(arrays) == 1:
                codes = arrays[0]
                for tid in tids:
                    rhs_code = rhs_codes[tid]
                    previous = seen.setdefault(codes[tid], rhs_code)
                    if previous != rhs_code:
                        return False
                return True
            for tid in tids:
                key = tuple(codes[tid] for codes in arrays)
                rhs_code = rhs_codes[tid]
                previous = seen.setdefault(key, rhs_code)
                if previous != rhs_code:
                    return False
            return True
        rows = self._relation
        seen_values: dict[tuple[Any, ...], Any] = {}
        for tid in tids:
            row = rows.tuple(tid)
            key = tuple(row.at(p) for p in positions)
            rhs_value = row.at(rhs_position)
            previous = seen_values.setdefault(key, rhs_value)
            if previous != rhs_value:
                return False
        return True


def discover_constant_cfds(relation: Relation, min_support: int = 3,
                           max_lhs_size: int = 2, use_columns: bool = True,
                           engine: str | None = None,
                           workers: int | None = None) -> list[CFD]:
    """Convenience wrapper: constant CFDs only."""
    return CFDDiscovery(relation, min_support, max_lhs_size,
                        use_columns=use_columns, engine=engine,
                        workers=workers).discover_constant_cfds()


def discover_cfds(relation: Relation, min_support: int = 3,
                  max_lhs_size: int = 2, use_columns: bool = True,
                  engine: str | None = None,
                  workers: int | None = None) -> list[CFD]:
    """Convenience wrapper: constant plus variable CFDs."""
    return CFDDiscovery(relation, min_support, max_lhs_size,
                        use_columns=use_columns, engine=engine,
                        workers=workers).discover()
