"""Levelwise (TANE-style) discovery of minimal functional dependencies.

The search walks the lattice of attribute sets level by level.  At level
``k`` every candidate set ``X`` of size ``k`` is tested: for each ``A ∈ X``
the FD ``X \\ {A} → A`` holds iff the stripped partition of ``X \\ {A}``
maps into the partition of ``X`` without splitting a group.  Minimality
pruning: once ``Y → A`` is emitted, no superset of ``Y`` is reported for
the same RHS.

Partitions come from a :class:`~repro.discovery.partitions.PartitionProvider`:
base partitions are computed from dictionary code arrays (or raw rows
under ``use_columns=False``), higher lattice levels are composed from
cached lower ones via partition products, and ``engine=``/``workers=``
route the base scans through the chunked execution engine
(:mod:`repro.engine`) — the discovered FDs and keys are identical either
way.

An optional ``max_lhs_size`` bounds the level (the experiments only need
small left-hand sides), and ``approximate_error`` allows *approximate* FDs
— dependencies violated by at most a fraction of tuples — which is what
discovery on dirty data requires.
"""

from __future__ import annotations

import itertools
import math

from repro import obs
from repro.constraints.fd import FunctionalDependency
from repro.discovery.partitions import Partition, PartitionProvider
from repro.errors import DiscoveryError
from repro.relational.relation import Relation


class FDDiscovery:
    """Discovers minimal FDs of a relation."""

    def __init__(self, relation: Relation, max_lhs_size: int = 3,
                 approximate_error: float = 0.0, use_columns: bool = True,
                 engine: str | None = None, workers: int | None = None,
                 task_timeout: float | None = None,
                 task_retries: int | None = None) -> None:
        if max_lhs_size < 1:
            raise DiscoveryError("max_lhs_size must be at least 1")
        if not 0.0 <= approximate_error < 1.0:
            raise DiscoveryError("approximate_error must be in [0, 1)")
        self._relation = relation
        self._attributes = [a.lower() for a in relation.schema.attribute_names]
        self._max_lhs_size = min(max_lhs_size, len(self._attributes) - 1)
        self._approximate_error = approximate_error
        self._provider = PartitionProvider(relation, use_columns=use_columns,
                                           engine=engine, workers=workers,
                                           task_timeout=task_timeout,
                                           task_retries=task_retries)

    # -- partitions --------------------------------------------------------------

    def _partition(self, attributes: frozenset[str]) -> Partition:
        return self._provider.partition(attributes)

    def _holds(self, lhs: frozenset[str], rhs: str) -> bool:
        coarse = self._partition(lhs)
        fine = self._partition(lhs | {rhs})
        if self._approximate_error == 0.0:
            return coarse.refines_without_splitting(fine)
        total = max(len(self._relation), 1)
        return (coarse.error - fine.error) / total <= self._approximate_error

    # -- discovery -----------------------------------------------------------------

    def discover(self) -> list[FunctionalDependency]:
        """All minimal FDs with LHS size up to ``max_lhs_size``."""
        if len(self._relation) == 0:
            return []
        with obs.span("discovery.fds", relation=self._relation.name):
            return self._discover_levelwise()

    def _discover_levelwise(self) -> list[FunctionalDependency]:
        found: list[FunctionalDependency] = []
        # found_lhs[rhs] = list of minimal LHS sets already emitted for rhs
        found_lhs: dict[str, list[frozenset[str]]] = {a: [] for a in self._attributes}

        for size in range(1, self._max_lhs_size + 1):
            if obs.enabled:
                obs.gauge(f"discovery.lattice.level{size}.size",
                          math.comb(len(self._attributes), size))
            for lhs_tuple in itertools.combinations(self._attributes, size):
                lhs = frozenset(lhs_tuple)
                for rhs in self._attributes:
                    if rhs in lhs:
                        continue
                    if any(existing <= lhs for existing in found_lhs[rhs]):
                        continue  # a smaller LHS already determines rhs
                    if self._holds(lhs, rhs):
                        found_lhs[rhs].append(lhs)
                        found.append(FunctionalDependency(
                            self._relation.name, sorted(lhs), [rhs]))
        return found

    def keys(self) -> list[tuple[str, ...]]:
        """Minimal candidate keys with up to ``max_lhs_size`` attributes."""
        result: list[tuple[str, ...]] = []
        for size in range(1, self._max_lhs_size + 1):
            for combination in itertools.combinations(self._attributes, size):
                candidate = frozenset(combination)
                if any(set(existing) <= candidate for existing in result):
                    continue
                if self._partition(candidate).error == 0:
                    result.append(tuple(sorted(candidate)))
        return result


def discover_fds(relation: Relation, max_lhs_size: int = 3,
                 approximate_error: float = 0.0, use_columns: bool = True,
                 engine: str | None = None,
                 workers: int | None = None) -> list[FunctionalDependency]:
    """Convenience wrapper around :class:`FDDiscovery`."""
    return FDDiscovery(relation, max_lhs_size=max_lhs_size,
                       approximate_error=approximate_error,
                       use_columns=use_columns, engine=engine,
                       workers=workers).discover()
