"""Frequent, closed and free itemset mining over ``attribute = value`` items.

CFDMiner reduces constant-CFD discovery to the relationship between *free*
(generator) itemsets and their *closures*: an item in the closure of a
free itemset but not in the itemset itself is determined by it.  The miner
here is a straightforward Apriori-style levelwise search — adequate for
the relation sizes of the experiments — with helpers for closures and
freeness.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import DiscoveryError
from repro.relational.relation import Relation
from repro.relational.types import is_null

Item = tuple[str, str]
"""An item is an (attribute, value) pair (values compared as strings)."""


@dataclass(frozen=True)
class Itemset:
    """A set of items together with its support (number of matching tuples)."""

    items: frozenset[Item]
    support: int

    def attributes(self) -> set[str]:
        return {attribute for attribute, _ in self.items}

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        rendered = ", ".join(f"{a}={v}" for a, v in sorted(self.items))
        return f"Itemset({{{rendered}}}, support={self.support})"


class ItemsetMiner:
    """Apriori-style miner over one relation."""

    def __init__(self, relation: Relation, min_support: int = 2, max_size: int = 3) -> None:
        if min_support < 1:
            raise DiscoveryError("min_support must be at least 1")
        if max_size < 1:
            raise DiscoveryError("max_size must be at least 1")
        self._relation = relation
        self._min_support = min_support
        self._max_size = max_size
        self._attributes = [a.lower() for a in relation.schema.attribute_names]
        # transaction representation: tid -> {attribute: value}
        self._transactions: dict[int, dict[str, str]] = {
            row.tid: {a: str(row[a]) for a in self._attributes if not is_null(row[a])}
            for row in relation
        }

    # -- support ----------------------------------------------------------------

    def support_of(self, items: Iterable[Item]) -> int:
        """Number of tuples containing every item."""
        items = list(items)
        count = 0
        for transaction in self._transactions.values():
            if all(transaction.get(attribute) == value for attribute, value in items):
                count += 1
        return count

    def closure_of(self, items: Iterable[Item]) -> frozenset[Item]:
        """All items present in *every* tuple containing *items*."""
        items = list(items)
        matching = [t for t in self._transactions.values()
                    if all(t.get(a) == v for a, v in items)]
        if not matching:
            return frozenset(items)
        closed: set[Item] = set()
        first = matching[0]
        for attribute, value in first.items():
            if all(t.get(attribute) == value for t in matching):
                closed.add((attribute, value))
        return frozenset(closed | set(items))

    def is_free(self, items: Iterable[Item]) -> bool:
        """Whether no proper subset has the same support (generator itemset)."""
        items = list(items)
        support = self.support_of(items)
        for index in range(len(items)):
            subset = items[:index] + items[index + 1:]
            if self.support_of(subset) == support:
                return False
        return True

    # -- mining ------------------------------------------------------------------

    def frequent_itemsets(self) -> list[Itemset]:
        """All frequent itemsets up to ``max_size`` (levelwise Apriori)."""
        # level 1
        singleton_counts: dict[Item, int] = {}
        for transaction in self._transactions.values():
            for item in transaction.items():
                singleton_counts[item] = singleton_counts.get(item, 0) + 1
        current = {
            frozenset([item]): count
            for item, count in singleton_counts.items() if count >= self._min_support
        }
        result = [Itemset(items, support) for items, support in current.items()]

        for _ in range(2, self._max_size + 1):
            candidates: set[frozenset[Item]] = set()
            frequent_keys = list(current.keys())
            for i, left in enumerate(frequent_keys):
                for right in frequent_keys[i + 1:]:
                    union = left | right
                    if len(union) != len(left) + 1:
                        continue
                    attributes = [a for a, _ in union]
                    if len(set(attributes)) != len(attributes):
                        continue  # two values for the same attribute never co-occur
                    candidates.add(union)
            next_level: dict[frozenset[Item], int] = {}
            for candidate in candidates:
                support = self.support_of(candidate)
                if support >= self._min_support:
                    next_level[candidate] = support
            result.extend(Itemset(items, support) for items, support in next_level.items())
            if not next_level:
                break
            current = next_level
        return result

    def free_itemsets(self) -> list[Itemset]:
        """The frequent itemsets that are free (generators)."""
        return [itemset for itemset in self.frequent_itemsets()
                if self.is_free(itemset.items)]
