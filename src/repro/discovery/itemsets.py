"""Frequent, closed and free itemset mining over ``attribute = value`` items.

CFDMiner reduces constant-CFD discovery to the relationship between *free*
(generator) itemsets and their *closures*: an item in the closure of a
free itemset but not in the itemset itself is determined by it.  The miner
here is a straightforward Apriori-style levelwise search — adequate for
the relation sizes of the experiments — with helpers for closures and
freeness.

On the columnar path (the default) support is served from **memoized
per-item tid sets** built in one pass over the dictionary code arrays
(one ``str`` per distinct value via the per-code string cache):
``support_of`` intersects tid sets (smallest first) instead of rescanning
rows, and ``closure_of`` checks value agreement over the matching tids
only.  ``use_columns=False`` keeps the historical transaction
representation — every support call rescans the stringified rows — as
the reference twin the parity tests and benchmark E9 compare against.
Either way the miner is a snapshot of the relation at construction time:
mine with a fresh miner after mutating the relation (the columnar path
enforces this with a version check where it reads the live code arrays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import DiscoveryError
from repro.relational.columns import NULL_CODE
from repro.relational.relation import Relation
from repro.relational.types import is_null

Item = tuple[str, str]
"""An item is an (attribute, value) pair (values compared as strings)."""


@dataclass(frozen=True)
class Itemset:
    """A set of items together with its support (number of matching tuples)."""

    items: frozenset[Item]
    support: int

    def attributes(self) -> set[str]:
        return {attribute for attribute, _ in self.items}

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        rendered = ", ".join(f"{a}={v}" for a, v in sorted(self.items))
        return f"Itemset({{{rendered}}}, support={self.support})"


class ItemsetMiner:
    """Apriori-style miner over one relation."""

    def __init__(self, relation: Relation, min_support: int = 2, max_size: int = 3,
                 use_columns: bool = True) -> None:
        if min_support < 1:
            raise DiscoveryError("min_support must be at least 1")
        if max_size < 1:
            raise DiscoveryError("max_size must be at least 1")
        self._relation = relation
        self._min_support = min_support
        self._max_size = max_size
        self._attributes = [a.lower() for a in relation.schema.attribute_names]
        self._use_columns = use_columns
        self._version = relation.version
        if use_columns:
            self._tids = relation.tids()
            store = relation.columns
            self._columns = [store.column_at(p) for p in range(relation.schema.arity)]
            # item -> the set of tids carrying it, keys in first-occurrence
            # (tid-major, then schema attribute) order — the order level-1
            # mining, and therefore the whole result list, follows.
            self._item_tids: dict[Item, set[int]] = {}
            per_attribute = [(attribute, column.codes, column.strings)
                             for attribute, column in zip(self._attributes, self._columns)]
            for tid in self._tids:
                for attribute, codes, strings in per_attribute:
                    code = codes[tid]
                    if code == NULL_CODE:
                        continue
                    tids = self._item_tids.get((attribute, strings[code]))
                    if tids is None:
                        self._item_tids[(attribute, strings[code])] = {tid}
                    else:
                        tids.add(tid)
        else:
            # historical transaction representation: tid -> {attribute: value}
            self._transactions: dict[int, dict[str, str]] = {
                row.tid: {a: str(row[a]) for a in self._attributes if not is_null(row[a])}
                for row in relation
            }

    # -- support ----------------------------------------------------------------

    def _matching_tids(self, items: Iterable[Item]) -> set[int] | None:
        """The tids carrying every item, or ``None`` for "all tuples" (no items)."""
        tid_sets = []
        for item in items:
            tids = self._item_tids.get(item)
            if not tids:
                return set()
            tid_sets.append(tids)
        if not tid_sets:
            return None
        tid_sets.sort(key=len)
        matching = tid_sets[0]
        for tids in tid_sets[1:]:
            matching = matching & tids
            if not matching:
                break
        return set(matching) if matching is tid_sets[0] else matching

    def support_of(self, items: Iterable[Item]) -> int:
        """Number of tuples containing every item."""
        if self._use_columns:
            items = list(items)
            if len(items) == 1:  # the is_free hot loop: no set copy, just a length
                tids = self._item_tids.get(items[0])
                return len(tids) if tids else 0
            matching = self._matching_tids(items)
            return len(self._tids) if matching is None else len(matching)
        items = list(items)
        count = 0
        for transaction in self._transactions.values():
            if all(transaction.get(attribute) == value for attribute, value in items):
                count += 1
        return count

    def closure_of(self, items: Iterable[Item]) -> frozenset[Item]:
        """All items present in *every* tuple containing *items*."""
        items = list(items)
        if self._use_columns:
            if self._relation.version != self._version:
                # the tid sets are a snapshot but the code arrays are live:
                # after a mutation the two disagree (deleted tids read the
                # tombstone), so fail loudly instead of agreeing on garbage
                raise DiscoveryError(
                    "the relation changed since this ItemsetMiner was built; "
                    "mine with a fresh miner")
            matching = self._matching_tids(items)
            if matching is None:
                matching = set(self._tids)
            if not matching:
                return frozenset(items)
            closed: set[Item] = set()
            for position, attribute in enumerate(self._attributes):
                value = self._agreed_value(position, matching)
                if value is not None:
                    closed.add((attribute, value))
            return frozenset(closed | set(items))
        matching_rows = [t for t in self._transactions.values()
                         if all(t.get(a) == v for a, v in items)]
        if not matching_rows:
            return frozenset(items)
        closed = set()
        first = matching_rows[0]
        for attribute, value in first.items():
            if all(t.get(attribute) == value for t in matching_rows):
                closed.add((attribute, value))
        return frozenset(closed | set(items))

    def _agreed_value(self, position: int, matching: set[int]) -> str | None:
        """The one (non-NULL) string the attribute carries on every matching tid."""
        column = self._columns[position]
        codes, strings = column.codes, column.strings
        iterator = iter(matching)
        first = codes[next(iterator)]
        if first == NULL_CODE:
            return None
        target = strings[first]
        for tid in iterator:
            code = codes[tid]
            if code != first and (code == NULL_CODE or strings[code] != target):
                return None
        return target

    def is_free(self, items: Iterable[Item]) -> bool:
        """Whether no proper subset has the same support (generator itemset)."""
        items = list(items)
        support = self.support_of(items)
        for index in range(len(items)):
            subset = items[:index] + items[index + 1:]
            if self.support_of(subset) == support:
                return False
        return True

    # -- mining ------------------------------------------------------------------

    def _singleton_supports(self) -> dict[Item, int]:
        """Level-1 supports, items in first-occurrence (tid-major) order."""
        if self._use_columns:
            return {item: len(tids) for item, tids in self._item_tids.items()}
        singleton_counts: dict[Item, int] = {}
        for transaction in self._transactions.values():
            for item in transaction.items():
                singleton_counts[item] = singleton_counts.get(item, 0) + 1
        return singleton_counts

    def frequent_itemsets(self) -> list[Itemset]:
        """All frequent itemsets up to ``max_size`` (levelwise Apriori)."""
        current = {
            frozenset([item]): count
            for item, count in self._singleton_supports().items()
            if count >= self._min_support
        }
        result = [Itemset(items, support) for items, support in current.items()]

        for _ in range(2, self._max_size + 1):
            candidates: set[frozenset[Item]] = set()
            frequent_keys = list(current.keys())
            for i, left in enumerate(frequent_keys):
                for right in frequent_keys[i + 1:]:
                    union = left | right
                    if len(union) != len(left) + 1:
                        continue
                    attributes = [a for a, _ in union]
                    if len(set(attributes)) != len(attributes):
                        continue  # two values for the same attribute never co-occur
                    candidates.add(union)
            next_level: dict[frozenset[Item], int] = {}
            for candidate in candidates:
                support = self.support_of(candidate)
                if support >= self._min_support:
                    next_level[candidate] = support
            result.extend(Itemset(items, support) for items, support in next_level.items())
            if not next_level:
                break
            current = next_level
        return result

    def free_itemsets(self) -> list[Itemset]:
        """The frequent itemsets that are free (generators)."""
        return [itemset for itemset in self.frequent_itemsets()
                if self.is_free(itemset.items)]
