"""Stripped partitions — the core data structure of TANE-style FD discovery.

The *partition* of a relation by an attribute set ``X`` groups tuple ids
by their ``X`` values; the *stripped* partition drops singleton groups
(they can never witness an FD violation).  Two facts drive discovery:

* the FD ``X → A`` holds iff the partition by ``X`` refines the partition
  by ``X ∪ {A}`` without splitting any group;
* the partition of ``X ∪ Y`` is the product of the partitions of ``X`` and
  ``Y``, so partitions for larger attribute sets are computed
  incrementally level by level.

The representation is array-backed: a partition is a list of tid lists
(singletons already stripped) plus a lazily built tid → group-id map.
Products compose the group-id map of one operand with the group arrays of
the other; refinement checks walk the group-id map linearly.  No
frozensets are built anywhere on the hot path.

:func:`partition_of` computes the base partitions.  On the columnar path
(the default) it reads dictionary code arrays straight off the relation's
column store — a single tombstone-aware pass of integer reads, with no
value hashing or stringification.  ``use_columns=False`` selects the
value-level twin (grouping raw projected rows), kept as the reference
the parity tests compare against.

:class:`PartitionProvider` is what the discovery algorithms use: it
caches partitions per relation *version* (one shared
:class:`PartitionCache` per relation, so FD and CFD discovery over the
same data reuse each other's work), composes higher lattice levels from
cached lower ones via :meth:`Partition.product`, and — when an
``engine=`` is requested — computes base partitions chunk-parallel on
:class:`~repro.engine.discover.ChunkedPartitionEngine`.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro import obs
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.discover import ChunkedPartitionEngine


class Partition:
    """A stripped partition: array-backed groups of tuple ids (singletons dropped)."""

    __slots__ = ("groups", "total_tuples", "_group_ids")

    def __init__(self, groups: Iterable[Sequence[int]], total_tuples: int) -> None:
        self.groups: list[list[int]] = [list(g) for g in groups if len(g) > 1]
        self.total_tuples = total_tuples
        self._group_ids: dict[int, int] | None = None

    @property
    def group_count(self) -> int:
        """Number of (non-singleton) groups."""
        return len(self.groups)

    @property
    def error(self) -> int:
        """``|stripped tuples| - |groups|``: 0 means X is a key (every group singleton)."""
        return sum(len(g) for g in self.groups) - len(self.groups)

    def group_ids(self) -> dict[int, int]:
        """The tid → group-index map over the stripped tuples (built once, cached).

        Tids in singleton groups are absent — that is what makes the
        refinement check and the product linear in the *stripped* sizes.
        """
        ids = self._group_ids
        if ids is None:
            ids = {}
            for index, group in enumerate(self.groups):
                for tid in group:
                    ids[tid] = index
            self._group_ids = ids
        return ids

    def refines_without_splitting(self, finer: "Partition") -> bool:
        """Whether adding the extra attribute did not split any group.

        ``self`` is the partition by ``X``; *finer* the partition by
        ``X ∪ {A}``.  The FD ``X → A`` holds iff every group of ``self``
        maps into a single group of *finer* — checked linearly against
        the finer group-id map (a tid missing from the map is a finer
        singleton, i.e. a split).
        """
        finer_ids = finer.group_ids()
        for group in self.groups:
            target = finer_ids.get(group[0])
            if target is None:
                return False
            for tid in group:
                if finer_ids.get(tid) != target:
                    return False
        return True

    def product(self, other: "Partition") -> "Partition":
        """The partition of the union of the two attribute sets.

        Composes ``self``'s group-id map with ``other``'s group arrays:
        each product group is the set of tids sharing both group ids.
        Tids stripped from either operand are singletons in the product
        and never materialise.
        """
        membership = self.group_ids()
        buckets: dict[tuple[int, int], list[int]] = {}
        for index, group in enumerate(other.groups):
            for tid in group:
                own = membership.get(tid)
                if own is None:
                    continue
                key = (own, index)
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [tid]
                else:
                    bucket.append(tid)
        return Partition(
            (b for b in buckets.values() if len(b) > 1), self.total_tuples)

    def __repr__(self) -> str:
        return f"Partition({self.group_count} groups, error={self.error})"


def partition_of(relation: Relation, attributes: Sequence[str],
                 use_columns: bool = True) -> Partition:
    """The stripped partition of *relation* by *attributes*.

    The columnar default groups tids by dictionary codes in one
    tombstone-aware pass over the code arrays
    (:meth:`~repro.relational.columns.ColumnStore.partition_groups`);
    ``use_columns=False`` groups raw projected values row by row.  Both
    produce identical group structure (codes are assigned by value
    equality), in identical first-occurrence order.
    """
    positions = relation.schema.positions(attributes)
    if use_columns:
        buckets = relation.columns.partition_groups(positions)
    else:
        buckets = {}
        if len(positions) == 1:
            position = positions[0]
            for tid, values in relation.rows_items():
                buckets.setdefault(values[position], []).append(tid)
        else:
            for tid, values in relation.rows_items():
                key = tuple(values[p] for p in positions)
                buckets.setdefault(key, []).append(tid)
    return Partition(buckets.values(), len(relation))


class PartitionCache:
    """A version-checked memo of stripped partitions keyed by attribute set.

    Entries are valid for exactly one relation *version*: callers pass the
    current version on every access and any mismatch clears the memo
    wholesale, so partitions never outlive a mutation.  The cache holds no
    relation reference — the registry below keys caches weakly by
    relation, and discovery over the same (unchanged) relation reuses
    partitions across :class:`PartitionProvider` instances.
    """

    __slots__ = ("_version", "_entries")

    def __init__(self) -> None:
        self._version = -1
        self._entries: dict[frozenset[str], Partition] = {}

    def _current(self, version: int) -> dict[frozenset[str], Partition]:
        if version != self._version:
            if obs.enabled and self._entries:
                obs.inc("cache.partition.invalidate")
            self._entries.clear()
            self._version = version
        return self._entries

    def lookup(self, attributes: frozenset[str], version: int) -> Partition | None:
        """The cached partition for *attributes* at *version*, if any."""
        partition = self._current(version).get(attributes)
        if obs.enabled:
            obs.inc("cache.partition.hit" if partition is not None
                    else "cache.partition.miss")
        return partition

    def store(self, attributes: frozenset[str], version: int,
              partition: Partition) -> None:
        """Memoize *partition* for *attributes* at *version*."""
        self._current(version)[attributes] = partition

    def __len__(self) -> int:
        return len(self._entries)


#: one shared cache per relation; weak keys, and caches hold no relation
#: reference, so a dropped relation releases its partitions with it.
_CACHES: "weakref.WeakKeyDictionary[Relation, PartitionCache]" = \
    weakref.WeakKeyDictionary()


def partition_cache(relation: Relation) -> PartitionCache:
    """The shared per-relation partition cache (created on first use)."""
    cache = _CACHES.get(relation)
    if cache is None:
        cache = PartitionCache()
        _CACHES[relation] = cache
    return cache


class PartitionProvider:
    """Caching, optionally chunk-parallel source of stripped partitions.

    The discovery algorithms request partitions by attribute *set*; the
    provider serves them from the shared per-relation cache, composes a
    multi-attribute partition from a cached subset pair via
    :meth:`Partition.product` when the lattice walk already produced one
    (levelwise search always has, beyond level 1), and otherwise scans —
    sequentially, or chunk-parallel on :mod:`repro.engine` when
    ``engine=``/``workers=`` (or the ``REPRO_*`` environment defaults)
    ask for it.

    The value-level path (``use_columns=False``) is the historical
    reference: direct row-grouping scans with a private per-provider memo
    (the memo the old ``FDDiscovery`` kept), no product composition, and
    the engine knobs ignored — the chunked workers exchange code arrays,
    which is exactly what that path exists to avoid.
    """

    def __init__(self, relation: Relation, use_columns: bool = True,
                 engine: str | None = None, workers: int | None = None,
                 task_timeout: float | None = None,
                 task_retries: int | None = None) -> None:
        self._relation = relation
        self._use_columns = use_columns
        self._chunked: "ChunkedPartitionEngine | None" = None
        if use_columns:
            self._cache = partition_cache(relation)
            from repro.engine.executor import resolve_pool

            pool = resolve_pool(engine, workers, task_timeout=task_timeout,
                                task_retries=task_retries)
            if pool is not None:
                from repro.engine.discover import ChunkedPartitionEngine

                self._chunked = ChunkedPartitionEngine(relation, pool)
        else:
            self._cache = PartitionCache()

    @property
    def relation(self) -> Relation:
        return self._relation

    @property
    def chunked(self) -> "ChunkedPartitionEngine | None":
        """The chunked engine serving this provider's scans, if any.

        Discovery also rides it for the conditioning-subset checks of
        variable-CFD refinement (same broadcast state as the partition
        scans).
        """
        return self._chunked

    def partition(self, attributes: frozenset[str] | Iterable[str]) -> Partition:
        """The stripped partition by *attributes* (cached per relation version)."""
        attributes = frozenset(attributes)
        version = self._relation.version
        cached = self._cache.lookup(attributes, version)
        if cached is not None:
            if obs.enabled:
                obs.inc("discovery.partition.cache_hit")
            return cached
        partition = self._compose(attributes, version) if self._use_columns else None
        if partition is None:
            partition = self._scan(attributes)
            if obs.enabled:
                obs.inc("discovery.partition.scan")
        elif obs.enabled:
            obs.inc("discovery.partition.product")
        self._cache.store(attributes, version, partition)
        return partition

    def _compose(self, attributes: frozenset[str], version: int) -> Partition | None:
        """Product of a cached one-smaller subset and a cached singleton."""
        if len(attributes) < 2:
            return None
        for attribute in sorted(attributes):
            rest = self._cache.lookup(attributes - {attribute}, version)
            if rest is None:
                continue
            single = self._cache.lookup(frozenset((attribute,)), version)
            if single is not None:
                return rest.product(single)
        return None

    def _scan(self, attributes: frozenset[str]) -> Partition:
        ordered = sorted(attributes)
        if self._chunked is not None:
            groups = self._chunked.groups_of(ordered)
            return Partition(groups, len(self._relation))
        return partition_of(self._relation, ordered, use_columns=self._use_columns)

    def __repr__(self) -> str:
        mode = "columns" if self._use_columns else "rows"
        engine = "chunked" if self._chunked is not None else "sequential"
        return (f"PartitionProvider({self._relation.name}, {mode}, {engine}, "
                f"{len(self._cache)} cached)")
