"""Stripped partitions — the core data structure of TANE-style FD discovery.

The *partition* of a relation by an attribute set ``X`` groups tuple ids
by their ``X`` values; the *stripped* partition drops singleton groups
(they can never witness an FD violation).  Two facts drive discovery:

* the FD ``X → A`` holds iff the partition by ``X`` refines the partition
  by ``X ∪ {A}`` without splitting any group — equivalently, iff the two
  partitions have the same *error* (number of tuples minus number of
  groups);
* the partition of ``X ∪ Y`` is the product of the partitions of ``X`` and
  ``Y``, so partitions for larger attribute sets are computed
  incrementally level by level.

:func:`partition_of` groups tuple ids by dictionary codes from the
relation's column store — a single pass of integer array reads, with no
value hashing or stringification.  Single-attribute partitions (the base
of every levelwise search) group by one bare integer.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.relational.relation import Relation


class Partition:
    """A stripped partition: groups of tuple ids (singletons removed)."""

    __slots__ = ("groups", "total_tuples")

    def __init__(self, groups: Iterable[frozenset[int]], total_tuples: int) -> None:
        self.groups = [frozenset(g) for g in groups if len(g) > 1]
        self.total_tuples = total_tuples

    @property
    def group_count(self) -> int:
        """Number of (non-singleton) groups."""
        return len(self.groups)

    @property
    def error(self) -> int:
        """``|stripped tuples| - |groups|``: 0 means X is a key (every group singleton)."""
        return sum(len(g) for g in self.groups) - len(self.groups)

    def refines_without_splitting(self, finer: "Partition") -> bool:
        """Whether adding the extra attribute did not split any group.

        ``self`` is the partition by ``X``; *finer* the partition by
        ``X ∪ {A}``.  The FD ``X → A`` holds iff the errors coincide.
        """
        return self.error == finer.error

    def product(self, other: "Partition") -> "Partition":
        """The partition of the union of the two attribute sets."""
        membership: dict[int, int] = {}
        for index, group in enumerate(self.groups):
            for tid in group:
                membership[tid] = index
        buckets: dict[tuple[int, int], set[int]] = defaultdict(set)
        for index, group in enumerate(other.groups):
            for tid in group:
                if tid in membership:
                    buckets[(membership[tid], index)].add(tid)
        return Partition(
            (frozenset(b) for b in buckets.values() if len(b) > 1), self.total_tuples)

    def __repr__(self) -> str:
        return f"Partition({self.group_count} groups, error={self.error})"


def partition_of(relation: Relation, attributes: Sequence[str]) -> Partition:
    """The stripped partition of *relation* by *attributes* (code-level grouping)."""
    positions = relation.schema.positions(attributes)
    arrays = relation.columns.code_arrays(positions)
    buckets: dict[int | tuple[int, ...], list[int]] = defaultdict(list)
    if len(arrays) == 1:
        codes = arrays[0]
        for tid in relation.tids():
            buckets[codes[tid]].append(tid)
    else:
        for tid in relation.tids():
            buckets[tuple(codes[tid] for codes in arrays)].append(tid)
    return Partition((frozenset(b) for b in buckets.values()), len(relation))
