"""Chunked (optionally parallel) execution engine for detection.

The engine restructures detection around the columnar substrate: the live
tid range of a relation is sliced into balanced :class:`Chunk`\\ s, every
chunk is scanned independently (single-tuple violations and *partial
groups* keyed by LHS code tuples), and a :class:`GroupMerger` stitches
groups spanning chunk boundaries before per-group pattern checks run.
Workers exchange plain code-level data only, so the same plan executes
unchanged on the in-process :class:`SerialPool` or on the
:class:`MultiprocessingPool`, whose worker processes receive the code
arrays and dictionaries once per broadcast generation.

Violation reports are **byte-identical** to the sequential columnar
detectors for every chunk size and worker count — chunking is an
execution detail, never an observable one.

Detectors accept ``engine=`` (``"sequential"``, ``"serial"``,
``"parallel"``) and ``workers=`` knobs; the ``REPRO_ENGINE``,
``REPRO_WORKERS`` and ``REPRO_PARALLEL_THRESHOLD`` environment variables
supply process-wide defaults (that is how CI forces the whole tier-1
suite through the chunked path).

The parallel backend is **supervised**: every task runs inside a
worker-side envelope that returns success or a picklable failure, a
per-task timeout (``REPRO_TASK_TIMEOUT``) bounds hung workers, failed
tasks are retried up to ``REPRO_TASK_RETRIES`` times (crashes and
timeouts rebuild the pool, re-broadcasting state), and tasks failing
every retry degrade to in-process execution — so worker death, hangs and
transient in-worker exceptions slow a run down but never change its
results or leak a raw ``multiprocessing`` exception.  ``REPRO_FAULTS``
injects seeded raise/crash/hang faults into the dispatch path for chaos
testing (see :mod:`repro.engine.worker`).
"""

from repro.engine.chunker import Chunk, Chunker
from repro.engine.detect import ChunkedCFDEngine, ChunkedCINDEngine
from repro.engine.discover import ChunkedPartitionEngine
from repro.engine.join import ChunkedJoinEngine
from repro.engine.executor import (
    ENGINES,
    ExecutorPool,
    MultiprocessingPool,
    SerialPool,
    StateHandle,
    resolve_pool,
    shutdown_pools,
)
from repro.engine.merge import GroupMerger
from repro.engine.worker import (
    FaultInjector,
    ScriptedFaults,
    TaskFailure,
    clear_faults,
    install_faults,
)

__all__ = [
    "Chunk",
    "Chunker",
    "ChunkedCFDEngine",
    "ChunkedCINDEngine",
    "ChunkedJoinEngine",
    "ChunkedPartitionEngine",
    "ENGINES",
    "ExecutorPool",
    "FaultInjector",
    "GroupMerger",
    "MultiprocessingPool",
    "ScriptedFaults",
    "SerialPool",
    "StateHandle",
    "TaskFailure",
    "clear_faults",
    "install_faults",
    "resolve_pool",
    "shutdown_pools",
]
