"""Shared broadcast-handle lifecycle for single-relation chunked engines.

Every chunked engine over one relation follows the same protocol: build a
broadcastable state once (dictionaries referencing the column store's
*live* arrays, so contents are always current), and re-tokenise the
handle whenever the relation version changes — a fresh token is what
tells the multiprocessing backend that worker-side snapshots are stale
and the state must ship again, and *supersedes* lets it retire the
now-stale OS pool instead of waiting for LRU eviction.  The protocol
leans on :meth:`~repro.relational.columns.ColumnStore.rebuild` mutating
code arrays in place (array identities survive), which is why the state
dict never needs rebuilding here.

:class:`RelationBroadcastEngine` is that protocol, factored out of the
CFD, partition and SQL engines; subclasses supply :meth:`_build_state`.
(:class:`~repro.engine.detect.ChunkedCINDEngine` spans *two* relations
per constraint and keeps its own multi-version variant.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro import obs
from repro.engine.executor import ExecutorPool, StateHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.relation import Relation


class RelationBroadcastEngine:
    """Base of chunked engines broadcasting one relation's code-level state."""

    def __init__(self, relation: "Relation", pool: ExecutorPool) -> None:
        self._relation = relation
        self._pool = pool
        self._handle: StateHandle | None = None
        self._version = -1

    @property
    def relation(self) -> "Relation":
        return self._relation

    def _build_state(self) -> dict[str, Any]:
        """The broadcastable state (built once; contents stay live)."""
        raise NotImplementedError

    def _ensure_handle(self) -> StateHandle:
        """The broadcast handle, re-tokenised when the relation changed."""
        if self._handle is None:
            if obs.enabled:
                obs.inc("engine.broadcast.build")
            self._handle = StateHandle(self._build_state())
        elif self._version != self._relation.version:
            if obs.enabled:
                obs.inc("engine.broadcast.retokenize")
            self._relation.columns  # rebuild the store in place if it went stale
            self._handle = StateHandle(self._handle.state,
                                       supersedes=self._handle.token)
        elif obs.enabled:
            obs.inc("engine.broadcast.reuse")
        self._version = self._relation.version
        return self._handle

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self._relation.name}, "
                f"pool={self._pool.name})")
