"""Slicing the live tid range of a relation into balanced chunks.

A :class:`Chunk` is a contiguous slice of a relation's *live* tuple ids in
ascending order.  Because tids are assigned monotonically and never
reused, ``Relation.tids()`` is always ascending, so concatenating chunks
in index order replays exactly the scan order of the sequential detection
paths — the property the merge step relies on to keep violation reports
byte-identical.

The :class:`Chunker` balances either by an explicit ``chunk_size`` (the
last chunk may be short) or by a target ``num_chunks`` (chunk lengths
differ by at most one tuple).  Empty chunks are never produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.engine.merge import split_batches

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.relation import Relation


@dataclass(frozen=True)
class Chunk:
    """One contiguous slice of a relation's live tuple ids."""

    index: int
    tids: list[int] = field(repr=False)

    def __len__(self) -> int:
        return len(self.tids)

    def __repr__(self) -> str:
        lo = self.tids[0] if self.tids else None
        hi = self.tids[-1] if self.tids else None
        return f"Chunk({self.index}, {len(self.tids)} tids, [{lo}..{hi}])"


class Chunker:
    """Splits the live tids of a relation into balanced contiguous chunks."""

    def __init__(self, relation: "Relation", chunk_size: int | None = None,
                 num_chunks: int | None = None) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if num_chunks is not None and num_chunks < 1:
            raise ValueError(f"num_chunks must be >= 1, got {num_chunks}")
        self._relation = relation
        self._chunk_size = chunk_size
        self._num_chunks = num_chunks

    def chunks(self) -> list[Chunk]:
        """The live tids split into chunks (empty list on an empty relation)."""
        tids = self._relation.tids()
        if not tids:
            return []
        if self._chunk_size is not None:
            return self._by_size(tids, self._chunk_size)
        return self._balanced(tids, self._num_chunks or 1)

    def __iter__(self) -> Iterator[Chunk]:
        return iter(self.chunks())

    @staticmethod
    def _by_size(tids: list[int], size: int) -> list[Chunk]:
        return [Chunk(i, tids[start:start + size])
                for i, start in enumerate(range(0, len(tids), size))]

    @staticmethod
    def _balanced(tids: list[int], count: int) -> list[Chunk]:
        return [Chunk(i, part) for i, part in enumerate(split_batches(tids, count))]
