"""Chunked detection plans: fan chunks out, merge groups, emit violations.

This is the parent-side half of the engine.  A plan compiles constraints
against a relation's column store once (the compiled arrays and matcher
sets are maintained in place by the store, so plans survive mutations),
broadcasts the code-level state to an
:class:`~repro.engine.executor.ExecutorPool`, and runs detection in two
phases:

1. **scan** — every chunk is scanned once per constraint: single-tuple
   violations fall out directly, group candidates come back as *partial
   groups* keyed by LHS code tuples;
2. **group check** — partial groups are stitched by
   :class:`~repro.engine.merge.GroupMerger` and the surviving groups
   (≥ 2 tuples, non-NULL key) are fanned back out for per-pattern
   verdicts.

Violations are materialised in the parent, in exactly the order the
sequential detectors emit them — the chunk-parity tests assert the
reports are byte-identical for every chunk size and worker count.

On the parallel backend every fan-out here runs supervised (see
:mod:`repro.engine.executor`): per-task timeouts, retries and the
in-process fallback guarantee these results even when worker
processes raise, hang or die mid-run.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro import obs
from repro.constraints.cfd import CFD
from repro.constraints.cind import CIND
from repro.constraints.violations import CFDViolation, CINDViolation
from repro.detection.columnar import CompiledPattern, constant_code_set
from repro.engine.broadcast import RelationBroadcastEngine
from repro.engine.chunker import Chunker
from repro.engine.executor import ExecutorPool, StateHandle
from repro.engine.merge import GroupMerger, split_batches

#: kinds of CFD emission order: "cfd" replicates CFDDetector.detect_one
#: (pattern-major singles, index-set group semantics), "batch" replicates
#: BatchCFDDetector._detect_merged (tid-major singles, sorted groups).
CFD_KINDS = ("cfd", "batch")


def _cfd_spec(relation, cfd: CFD, compiled: Sequence[CompiledPattern],
              kind: str, enumerate_pairs: bool) -> dict[str, Any]:
    store = relation.columns
    positions = relation.schema.positions(list(cfd.lhs))
    return {
        "kind": kind,
        "key_arrays": store.code_arrays(positions),
        "patterns": [
            {
                "lhs_tests": list(cp.lhs_tests),
                "rhs_tests": list(cp.rhs_tests),
                "variable_arrays": list(cp.variable_arrays),
            }
            for cp in compiled
        ],
        "single_pidxs": [i for i, cp in enumerate(compiled) if cp.rhs_tests],
        "group_pidxs": [i for i, cp in enumerate(compiled) if cp.variable_rhs],
        "enumerate_pairs": enumerate_pairs,
    }


class ChunkedCFDEngine(RelationBroadcastEngine):
    """A chunked execution plan over one relation for a fixed list of CFDs."""

    def __init__(self, relation, items: Sequence[tuple[CFD, Sequence[CompiledPattern]]],
                 pool: ExecutorPool, kind: str = "cfd",
                 enumerate_pairs: bool = False) -> None:
        if kind not in CFD_KINDS:
            raise ValueError(f"unknown CFD plan kind {kind!r}")
        super().__init__(relation, pool)
        self._items = list(items)
        self._kind = kind
        self._enumerate_pairs = enumerate_pairs

    # -- state broadcast ---------------------------------------------------

    def _build_state(self) -> dict[str, Any]:
        """One spec per plan item (live arrays and matcher sets)."""
        return {
            str(i): _cfd_spec(self._relation, cfd, compiled,
                              self._kind, self._enumerate_pairs)
            for i, (cfd, compiled) in enumerate(self._items)
        }

    # -- execution ---------------------------------------------------------

    def detect(self, indices: Sequence[int] | None = None) -> list[list[CFDViolation]]:
        """Violations per plan item (optionally a subset), sequential order."""
        if indices is None:
            indices = range(len(self._items))
        indices = list(indices)
        rows = len(self._relation)
        chunks = Chunker(self._relation, **self._pool.chunk_plan(rows)).chunks()
        if not chunks:
            return [[] for _ in indices]
        if obs.enabled:
            obs.inc("engine.detect.runs")
            obs.observe("engine.detect.chunks", len(chunks))
        handle = self._ensure_handle()

        # phase 1: scan every chunk once per selected constraint.  Results
        # stream back in task order, so merging overlaps the still-running
        # workers.
        scan_tasks = [("cfd_scan", (str(i), chunk.tids))
                      for i in indices for chunk in chunks]
        scan_results = self._pool.run_stream(handle, scan_tasks, rows)

        mergers: list[GroupMerger] = []
        singles_per_item: list[list[tuple[int, int]]] = []
        for _ in indices:
            singles: list[tuple[int, int]] = []
            merger = GroupMerger()
            for _ in chunks:
                result = next(scan_results)
                singles.extend(result["singles"])
                merger.add_chunk(result["groups"])
            singles_per_item.append(singles)
            mergers.append(merger)

        # phase 2: per-pattern verdicts for the groups that survive merging.
        group_tasks: list[tuple[str, Any]] = []
        spans: list[tuple[int, int]] = []
        for offset, i in enumerate(indices):
            groups = mergers[offset].checkable_groups() \
                if self._handle.state[str(i)]["group_pidxs"] else []
            batches = split_batches(groups, len(chunks))
            spans.append((len(group_tasks), len(batches)))
            group_tasks.extend(("cfd_groups", (str(i), batch)) for batch in batches)
        group_results = self._pool.run(handle, group_tasks, rows)

        violations: list[list[CFDViolation]] = []
        for offset, i in enumerate(indices):
            start, count = spans[offset]
            verdicts = [v for batch in group_results[start:start + count] for v in batch]
            cfd, compiled = self._items[i]
            violations.append(self._emit(cfd, compiled, singles_per_item[offset], verdicts))
        return violations

    # -- violation materialisation ----------------------------------------

    def _emit(self, cfd: CFD, compiled: Sequence[CompiledPattern],
              singles: list[tuple[int, int]],
              verdicts: list[dict[int, tuple]]) -> list[CFDViolation]:
        if self._kind == "batch":
            return self._emit_batch(cfd, compiled, singles, verdicts)
        return self._emit_cfd(cfd, compiled, singles, verdicts)

    def _emit_cfd(self, cfd: CFD, compiled: Sequence[CompiledPattern],
                  singles: list[tuple[int, int]],
                  verdicts: list[dict[int, tuple]]) -> list[CFDViolation]:
        """CFDDetector order: per pattern, singles then group violations."""
        singles_by_pidx: dict[int, list[int]] = {}
        for pidx, tid in singles:
            singles_by_pidx.setdefault(pidx, []).append(tid)
        violations: list[CFDViolation] = []
        for pidx, cp in enumerate(compiled):
            for tid in singles_by_pidx.get(pidx, ()):
                violations.append(CFDViolation(cfd, cp.pattern, (tid,)))
            if not cp.variable_rhs:
                continue
            for group_verdicts in verdicts:
                verdict = group_verdicts.get(pidx)
                if verdict is None:
                    continue
                tag, data = verdict
                if tag == "g":
                    violations.append(CFDViolation(cfd, cp.pattern, data))
                else:  # enumerate_pairs: expand the RHS buckets into pairs
                    for b, bucket in enumerate(data):
                        for other in data[b + 1:]:
                            for tid_a in bucket:
                                for tid_b in other:
                                    violations.append(
                                        CFDViolation(cfd, cp.pattern, (tid_a, tid_b)))
        return violations

    def _emit_batch(self, cfd: CFD, compiled: Sequence[CompiledPattern],
                    singles: list[tuple[int, int]],
                    verdicts: list[dict[int, tuple]]) -> list[CFDViolation]:
        """BatchCFDDetector order: all singles (tid-major), then per-group."""
        violations = [CFDViolation(cfd, compiled[pidx].pattern, (tid,))
                      for pidx, tid in singles]
        for group_verdicts in verdicts:
            for pidx in sorted(group_verdicts):
                violations.append(
                    CFDViolation(cfd, compiled[pidx].pattern, group_verdicts[pidx][1]))
        return violations


class ChunkedCINDEngine:
    """A chunked anti-join plan for a fixed list of CINDs over a database."""

    def __init__(self, database, cinds: Sequence[CIND], pool: ExecutorPool) -> None:
        self._database = database
        self._cinds = list(cinds)
        self._pool = pool
        self._handle: StateHandle | None = None
        self._versions: tuple[int, ...] = ()

    def _relations(self, cind: CIND):
        return (self._database.relation(cind.lhs_relation),
                self._database.relation(cind.rhs_relation))

    @staticmethod
    def _side_spec(relation, pattern, attributes, partners=None) -> dict[str, Any]:
        """Code-level spec for one side of the anti-join.

        Every key column ships a string-mode bridge translation: the RHS
        side bridges each column to *itself* (canonicalising codes that
        spell the same string), the LHS side passes *partners* — the RHS
        correspondence columns — so its codes translate straight into the
        same canonical RHS code space.  Workers then anti-join on integer
        tuples; no string ever crosses a process boundary.
        """
        store = relation.columns
        columns = [store.column(a) for a in attributes]
        targets = partners if partners is not None else columns
        return {
            "tests": [(store.column(attribute).codes,
                       constant_code_set(store.column(attribute), constant))
                      for attribute, constant in pattern.constants().items()],
            "key_arrays": [column.codes for column in columns],
            "key_bridges": [column.bridge_to(target, mode="string").translation
                            for column, target in zip(columns, targets)],
        }

    def _ensure_handle(self) -> StateHandle:
        versions = tuple(version
                         for cind in self._cinds
                         for relation in self._relations(cind)
                         for version in (relation.version,))
        if self._handle is None or versions != self._versions:
            if obs.enabled:
                obs.inc("engine.broadcast.build" if self._handle is None
                        else "engine.broadcast.retokenize")
            state: dict[str, Any] = {}
            for i, cind in enumerate(self._cinds):
                left, right = self._relations(cind)
                partners = [right.columns.column(a) for a in cind.rhs_attributes]
                state[f"{i}:l"] = self._side_spec(
                    left, cind.lhs_pattern, cind.lhs_attributes, partners=partners)
                state[f"{i}:r"] = self._side_spec(
                    right, cind.rhs_pattern, cind.rhs_attributes)
            supersedes = self._handle.token if self._handle is not None else None
            self._handle = StateHandle(state, supersedes=supersedes)
            self._versions = versions
        elif obs.enabled:
            obs.inc("engine.broadcast.reuse")
        return self._handle

    def detect(self, indices: Sequence[int] | None = None) -> list[list[CINDViolation]]:
        """Violations per CIND (optionally a subset), in sequential order."""
        if indices is None:
            indices = range(len(self._cinds))
        indices = list(indices)
        handle = self._ensure_handle()

        # phase 1: qualifying RHS keys per CIND (canonical code tuples,
        # merged by union).
        rhs_rows = sum(len(self._relations(self._cinds[i])[1]) for i in indices)
        rhs_tasks: list[tuple[str, Any]] = []
        rhs_spans: list[tuple[int, int]] = []
        for i in indices:
            _, right = self._relations(self._cinds[i])
            chunks = Chunker(right, **self._pool.chunk_plan(len(right))).chunks()
            rhs_spans.append((len(rhs_tasks), len(chunks)))
            rhs_tasks.extend(("cind_rhs", (f"{i}:r", chunk.tids)) for chunk in chunks)
        if obs.enabled:
            obs.inc("engine.cind.runs")
            obs.observe("engine.cind.chunks", len(rhs_tasks))
        rhs_results = self._pool.run(handle, rhs_tasks, rhs_rows)

        right_keys: list[frozenset[tuple[int, ...]]] = []
        for offset, i in enumerate(indices):
            start, count = rhs_spans[offset]
            merged: set[tuple[int, ...]] = set()
            for partial in rhs_results[start:start + count]:
                merged |= partial
            right_keys.append(frozenset(merged))

        # phase 2: anti-join every LHS chunk against the merged key set.
        # The key set rides in each task payload rather than the broadcast
        # state: shipping it per chunk costs W pickles of the set, but
        # re-broadcasting would re-tokenise (and re-fork) the pool on every
        # detect() — the wrong trade for steady-state detection, where RHS
        # key sets are usually far smaller than the relation itself.
        lhs_rows = sum(len(self._relations(self._cinds[i])[0]) for i in indices)
        lhs_tasks: list[tuple[str, Any]] = []
        lhs_spans: list[tuple[int, int]] = []
        for offset, i in enumerate(indices):
            left, _ = self._relations(self._cinds[i])
            chunks = Chunker(left, **self._pool.chunk_plan(len(left))).chunks()
            lhs_spans.append((len(lhs_tasks), len(chunks)))
            lhs_tasks.extend(("cind_lhs", (f"{i}:l", chunk.tids, right_keys[offset]))
                             for chunk in chunks)
        lhs_results = self._pool.run(handle, lhs_tasks, lhs_rows)

        violations: list[list[CINDViolation]] = []
        for offset, i in enumerate(indices):
            start, count = lhs_spans[offset]
            cind = self._cinds[i]
            violations.append([
                CINDViolation(cind, tid)
                for tids in lhs_results[start:start + count]
                for tid in tids
            ])
        return violations
