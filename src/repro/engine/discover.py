"""Chunked computation of discovery partitions over column partitions.

Discovery's base operation — group the live tids of a relation by the
code key of an attribute set — runs on the same chunk/merge machinery as
detection: every chunk is scanned once by the ``partition_scan`` worker
(partial groups keyed by code tuples, tids in chunk order) and a
:class:`~repro.engine.merge.GroupMerger` stitches groups spanning chunk
boundaries back together in first-occurrence order.  The merged groups
are exactly what the sequential
:meth:`~repro.relational.columns.ColumnStore.partition_groups` scan
produces — same keys, same order, same ascending tid lists — so the
stripped partitions (and every FD/CFD/key discovered from them) are
identical for every chunk size and worker count.

The broadcast state is one spec holding *every* code array of the
relation, shipped once per relation version: a levelwise lattice walk
requests partitions for many attribute sets, and each request is just a
tuple of schema positions riding in the task payload — no per-attribute-
set re-broadcast, no re-fork.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.engine.chunker import Chunker
from repro.engine.executor import ExecutorPool, StateHandle
from repro.engine.merge import GroupMerger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.relation import Relation

#: the single spec id of the broadcast state (one relation per engine).
_SPEC = "partition"


class ChunkedPartitionEngine:
    """Chunk-parallel grouping of one relation's live tids by code keys."""

    def __init__(self, relation: "Relation", pool: ExecutorPool) -> None:
        self._relation = relation
        self._pool = pool
        self._handle: StateHandle | None = None
        self._version = -1

    # -- state broadcast ---------------------------------------------------

    def _ensure_handle(self) -> StateHandle:
        """The broadcastable code arrays, re-tokenised when the relation changed.

        The spec references the column store's live arrays, so its
        contents are always current; a fresh token on version change tells
        the multiprocessing backend that worker-side snapshots are stale.
        """
        if self._handle is None:
            store = self._relation.columns
            arrays = store.code_arrays(range(self._relation.schema.arity))
            self._handle = StateHandle({_SPEC: {"arrays": arrays}})
        elif self._version != self._relation.version:
            self._relation.columns  # rebuild the store in place if it went stale
            self._handle = StateHandle(self._handle.state,
                                       supersedes=self._handle.token)
        self._version = self._relation.version
        return self._handle

    # -- execution ---------------------------------------------------------

    def groups_of(self, attributes: Sequence[str]) -> list[list[int]]:
        """All live-tid groups keyed by *attributes*' codes, merged across chunks.

        Groups come back in global first-occurrence order with ascending
        tids (singletons included — the caller strips).
        """
        positions = tuple(self._relation.schema.positions(list(attributes)))
        rows = len(self._relation)
        chunks = Chunker(self._relation, **self._pool.chunk_plan(rows)).chunks()
        if not chunks:
            return []
        handle = self._ensure_handle()
        tasks: list[tuple[str, Any]] = [
            ("partition_scan", (_SPEC, positions, chunk.tids)) for chunk in chunks]
        merger = GroupMerger()
        for partial in self._pool.run_stream(handle, tasks, rows):
            merger.add_chunk(partial)
        return list(merger.groups.values())

    def __repr__(self) -> str:
        return (f"ChunkedPartitionEngine({self._relation.name}, "
                f"pool={self._pool.name})")
