"""Chunked computation of discovery partitions over column partitions.

Discovery's base operation — group the live tids of a relation by the
code key of an attribute set — runs on the same chunk/merge machinery as
detection: every chunk is scanned once by the ``partition_scan`` worker
(partial groups keyed by code tuples, tids in chunk order) and a
:class:`~repro.engine.merge.GroupMerger` stitches groups spanning chunk
boundaries back together in first-occurrence order.  The merged groups
are exactly what the sequential
:meth:`~repro.relational.columns.ColumnStore.partition_groups` scan
produces — same keys, same order, same ascending tid lists — so the
stripped partitions (and every FD/CFD/key discovered from them) are
identical for every chunk size and worker count.

The broadcast state is one spec holding *every* code array of the
relation, shipped once per relation version: a levelwise lattice walk
requests partitions for many attribute sets, and each request is just a
tuple of schema positions riding in the task payload — no per-attribute-
set re-broadcast, no re-fork.

On the parallel backend every fan-out here runs supervised (see
:mod:`repro.engine.executor`): per-task timeouts, retries and the
in-process fallback guarantee these results even when worker
processes raise, hang or die mid-run.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro import obs
from repro.engine.broadcast import RelationBroadcastEngine
from repro.engine.chunker import Chunker
from repro.engine.merge import GroupMerger, split_batches

#: the single spec id of the broadcast state (one relation per engine).
_SPEC = "partition"


class ChunkedPartitionEngine(RelationBroadcastEngine):
    """Chunk-parallel grouping of one relation's live tids by code keys."""

    # -- state broadcast ---------------------------------------------------

    def _build_state(self) -> dict[str, Any]:
        """One spec holding every code array of the relation (live views)."""
        store = self._relation.columns
        arrays = store.code_arrays(range(self._relation.schema.arity))
        return {_SPEC: {"arrays": arrays}}

    # -- execution ---------------------------------------------------------

    def groups_of(self, attributes: Sequence[str]) -> list[list[int]]:
        """All live-tid groups keyed by *attributes*' codes, merged across chunks.

        Groups come back in global first-occurrence order with ascending
        tids (singletons included — the caller strips).
        """
        positions = tuple(self._relation.schema.positions(list(attributes)))
        rows = len(self._relation)
        chunks = Chunker(self._relation, **self._pool.chunk_plan(rows)).chunks()
        if not chunks:
            return []
        if obs.enabled:
            obs.inc("engine.partition.runs")
            obs.observe("engine.partition.chunks", len(chunks))
        handle = self._ensure_handle()
        tasks: list[tuple[str, Any]] = [
            ("partition_scan", (_SPEC, positions, chunk.tids)) for chunk in chunks]
        merger = GroupMerger()
        for partial in self._pool.run_stream(handle, tasks, rows):
            merger.add_chunk(partial)
        return list(merger.groups.values())

    def refine_subsets(self, lhs_attributes: Sequence[str], rhs_attribute: str,
                       groups: list[list[int]]) -> list[bool]:
        """Whether ``LHS → RHS`` holds on each conditioning subset of tids.

        The subset checks of ``CFDDiscovery._refine`` fanned across the
        worker pool: conditioning groups are split into contiguous
        balanced batches (one ``subset_check`` task per batch, verdicts
        concatenated back in input order) against the same
        whole-relation broadcast state the partition scans use — no
        extra broadcast, no re-fork.  For small relations the pool's own
        threshold keeps the batches in-process; the verdicts are
        identical either way.
        """
        if not groups:
            return []
        positions = tuple(self._relation.schema.positions(list(lhs_attributes)))
        rhs_position = self._relation.schema.position(rhs_attribute)
        rows = len(self._relation)
        if obs.enabled:
            obs.inc("engine.subset.runs")
        handle = self._ensure_handle()
        batches = split_batches(groups, self._pool.default_chunks(rows))
        tasks: list[tuple[str, Any]] = [
            ("subset_check", (_SPEC, positions, rhs_position, batch))
            for batch in batches]
        verdicts: list[bool] = []
        for partial in self._pool.run(handle, tasks, rows):
            verdicts.extend(partial)
        return verdicts
