"""Execution backends for the chunked detection engine.

An :class:`ExecutorPool` runs per-chunk worker tasks against a broadcast
*state* (see :mod:`repro.engine.worker`).  Two backends exist:

* :class:`SerialPool` — runs tasks in-process.  Chunking and merging are
  still exercised (the default splits into a handful of chunks), which is
  what the chunk-boundary parity tests lean on;
* :class:`MultiprocessingPool` — ships the state to a pool of worker
  processes (codes and dictionaries travel once per broadcast
  generation, via the pool initializer) and runs tasks across them under
  **supervision**.  OS pools live in a small process-wide LRU registry
  keyed by (workers, state token), so detectors with different broadcast
  states can alternate without re-forking, and steady-state detection
  pays no spawn cost; a plan that re-tokenises after a mutation retires
  its stale pool explicitly.  Workloads smaller than ``min_rows`` fall
  back to in-process execution — the report is byte-identical either
  way, so the cut-over is invisible.

Supervision replaces the old blocking ``pool.map``/``imap``: every task
is dispatched asynchronously inside the
:func:`~repro.engine.worker.dispatch_supervised` envelope, bounded by a
per-task timeout (``REPRO_TASK_TIMEOUT``).  A task whose worker raised
comes back as a picklable ``TaskFailure`` and is retried on the live
pool; a timed-out, crashed (``os._exit`` / OOM-killed) or
broken-pipe round retires the pool — the next round re-forks it, which
re-broadcasts the state through the initializer — and retries the
failed tasks, up to ``REPRO_TASK_RETRIES`` rounds.  Tasks that fail
every round degrade to in-process
:func:`~repro.engine.worker.run_local_timed` (injected faults never fire
there), so results stay byte-identical to :class:`SerialPool` under any
fault schedule; ``REPRO_TASK_FALLBACK=0`` turns that last resort into a
raised :class:`~repro.errors.WorkerCrashError` /
:class:`~repro.errors.TaskTimeoutError` instead.

:func:`resolve_pool` turns the user-facing ``engine=``/``workers=`` (and
``task_timeout=``/``task_retries=``) knobs — with the ``REPRO_ENGINE`` /
``REPRO_WORKERS`` / ``REPRO_PARALLEL_THRESHOLD`` / ``REPRO_TASK_TIMEOUT``
/ ``REPRO_TASK_RETRIES`` environment variables, parsed and validated by
:mod:`repro.config`, as process-wide defaults — into a pool, or ``None``
for the classic sequential path.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
from time import monotonic
from typing import Any, Iterator

from repro import config, obs
from repro.config import ENGINE_ENV, THRESHOLD_ENV, WORKERS_ENV  # noqa: F401 (re-exported)
from repro.engine import worker
from repro.engine.worker import TaskFailure
from repro.errors import EngineError, TaskTimeoutError, WorkerCrashError

#: engine names accepted by detectors, the session, the CLI and the env var.
ENGINES = ("sequential", "serial", "parallel")

#: below this many live tuples the parallel backend runs in-process.
DEFAULT_MIN_ROWS = 4096

#: per-task supervision timeout (seconds) when neither the knob nor
#: REPRO_TASK_TIMEOUT says otherwise — generous enough that healthy
#: workloads never trip it, bounded enough that a hung worker cannot
#: stall a long-running service forever.
DEFAULT_TASK_TIMEOUT = 300.0

#: supervised re-dispatch rounds for failed tasks before falling back.
DEFAULT_TASK_RETRIES = 2

#: how long one poll wait on an outstanding task result blocks (seconds);
#: result arrival wakes the wait early, so this only bounds how stale the
#: crash/timeout checks can get, not the latency of the happy path.
_POLL_SECONDS = 0.05

_token_counter = itertools.count(1)


class StateHandle:
    """A broadcastable state with an identity token.

    Detection plans cache one handle per relation version; the
    multiprocessing backend compares tokens to decide whether the worker
    processes already hold this state or a pool must be (re)started.
    When a plan re-tokenises after a relation mutation it passes the old
    token as *supersedes*, letting the backend retire the now-stale pool
    instead of waiting for LRU eviction.
    """

    __slots__ = ("token", "state", "supersedes")

    def __init__(self, state: dict[str, Any],
                 supersedes: int | None = None) -> None:
        self.token = next(_token_counter)
        self.state = state
        self.supersedes = supersedes


class ExecutorPool:
    """Abstract task runner; concrete backends decide where tasks execute."""

    name = "abstract"

    def __init__(self, chunk_size: int | None = None,
                 num_chunks: int | None = None) -> None:
        self.chunk_size = chunk_size
        self.num_chunks = num_chunks

    def chunk_plan(self, rows: int) -> dict[str, int | None]:
        """Keyword arguments for :class:`~repro.engine.chunker.Chunker`."""
        if self.chunk_size is not None:
            return {"chunk_size": self.chunk_size}
        return {"num_chunks": self.num_chunks or self.default_chunks(rows)}

    def default_chunks(self, rows: int) -> int:
        raise NotImplementedError

    def run(self, handle: StateHandle, tasks: list[tuple[str, Any]],
            rows: int = 0) -> list[Any]:
        """Run tasks against the state; results come back in task order."""
        raise NotImplementedError

    def run_stream(self, handle: StateHandle, tasks: list[tuple[str, Any]],
                   rows: int = 0) -> "Iterator[Any]":
        """Like :meth:`run` but yields results as they complete (task order).

        Lets the parent overlap merging with still-running workers.
        """
        return iter(self.run(handle, tasks, rows))


def _merge_timed(tasks: list[tuple[str, Any]],
                 timed: list[tuple[float, Any]]) -> list[Any]:
    """Unwrap ``(seconds, result)`` pairs, folding timings into the registry.

    Pairing is strict: a silent ``zip`` truncation here would drop chunk
    results (and with them violations or query rows), so a length
    mismatch raises :class:`~repro.errors.EngineError` naming the short
    side instead.
    """
    if len(timed) != len(tasks):
        short = "results" if len(timed) < len(tasks) else "tasks"
        raise EngineError(
            f"engine produced {len(timed)} result(s) for {len(tasks)} "
            f"dispatched task(s); the {short} side is short")
    if obs.enabled:
        for (name, _), (seconds, _) in zip(tasks, timed):
            obs.observe(f"engine.task.{name}.seconds", seconds)
    return [result for _, result in timed]


_EXHAUSTED = object()


def _merge_timed_stream(tasks: list[tuple[str, Any]],
                        timed: "Iterator[tuple[float, Any]]") -> "Iterator[Any]":
    """Streaming :func:`_merge_timed`: preserves the backend's laziness.

    Same strict pairing as :func:`_merge_timed` — the stream ending
    before every task has a result (or outliving the task list) raises
    :class:`~repro.errors.EngineError` rather than truncating silently.
    """
    timed = iter(timed)
    produced = 0
    for name, _payload in tasks:
        entry = next(timed, _EXHAUSTED)
        if entry is _EXHAUSTED:
            raise EngineError(
                f"engine produced {produced} result(s) for {len(tasks)} "
                f"dispatched task(s); the results side is short")
        seconds, result = entry
        produced += 1
        if obs.enabled:
            obs.observe(f"engine.task.{name}.seconds", seconds)
        yield result
    if next(timed, _EXHAUSTED) is not _EXHAUSTED:
        raise EngineError(
            f"engine produced more results than the {len(tasks)} "
            f"dispatched task(s); the tasks side is short")


class SerialPool(ExecutorPool):
    """Chunked execution on the calling thread (no processes involved)."""

    name = "serial"
    #: chunks used by default so boundary merging is exercised even serially.
    DEFAULT_CHUNKS = 4

    def default_chunks(self, rows: int) -> int:
        return self.DEFAULT_CHUNKS

    def run(self, handle: StateHandle, tasks: list[tuple[str, Any]],
            rows: int = 0) -> list[Any]:
        return _merge_timed(tasks, worker.run_local_timed(handle.state, tasks))


# Process-wide registry of live OS pools, shared by every
# MultiprocessingPool facade and keyed by (workers, state token).  Keeping
# a small LRU of pools lets plans with different broadcast states (a CFD
# and a CIND detector inside one session, say) alternate without
# terminating and re-forking on every switch; stale generations are
# retired explicitly via StateHandle.supersedes or by LRU eviction.
_pools: "dict[tuple[int, int], Any]" = {}

#: most pools kept alive at once (each holds `workers` OS processes).
MAX_SHARED_POOLS = 4


def _pool_pids(pool: Any) -> frozenset[int] | None:
    """The pids of a pool's current workers, or ``None`` when unknowable.

    ``multiprocessing.Pool`` replaces a dead worker with a fresh process
    (new pid), so a changed pid set is how the supervisor notices a
    crash without waiting out the task timeout.  Reading ``_pool`` is a
    CPython implementation detail; on runtimes without it the supervisor
    simply degrades to timeout-only crash detection.
    """
    processes = getattr(pool, "_pool", None)
    if processes is None:
        return None
    try:
        return frozenset(process.pid for process in processes)
    except Exception:
        return None


def _close_pool(key: tuple[int, int]) -> None:
    pool = _pools.pop(key, None)
    if pool is not None:
        if obs.enabled:
            obs.inc("engine.pool.stop")
        try:
            pool.terminate()
            pool.join()
        except (OSError, ValueError):
            # an already-dead or broken pool (workers crashed, interpreter
            # shutting down) must not turn teardown into a crash of its own
            if obs.enabled:
                obs.inc("engine.pool.stop_error")


def shutdown_pools() -> None:
    """Terminate every shared worker pool now (also runs at exit).

    One-shot callers (``detect_cfd_violations(..., engine="parallel")`` in
    a loop, ephemeral ``detect_one`` plans) each broadcast a fresh state
    and therefore fork a fresh pool; steady-state users should hold on to
    a detector instead, but this releases the processes early either way.
    """
    for key in list(_pools):
        _close_pool(key)


atexit.register(shutdown_pools)


class MultiprocessingPool(ExecutorPool):
    """Multiprocess execution with broadcast-once state and supervision.

    Tasks run inside the worker-side envelope
    (:func:`~repro.engine.worker.dispatch_supervised`) under a per-task
    timeout; failed tasks are retried — on the live pool for clean
    in-worker errors, on a rebuilt pool after crashes, hangs and broken
    pipes — and finally degrade to in-process execution, so a fault
    schedule can slow a run down but never change its results.
    """

    name = "parallel"

    def __init__(self, workers: int | None = None, chunk_size: int | None = None,
                 num_chunks: int | None = None, min_rows: int | None = None,
                 task_timeout: float | None = None,
                 task_retries: int | None = None) -> None:
        super().__init__(chunk_size=chunk_size, num_chunks=num_chunks)
        self.workers = max(1, workers if workers is not None
                           else (os.cpu_count() or 1))
        self.min_rows = DEFAULT_MIN_ROWS if min_rows is None else min_rows
        if task_timeout is None:
            task_timeout = config.task_timeout_default()
        if task_timeout is None:
            task_timeout = DEFAULT_TASK_TIMEOUT
        #: seconds a dispatched task may go without a result; None = unbounded.
        self.task_timeout: float | None = task_timeout if task_timeout > 0 else None
        if task_retries is None:
            task_retries = config.task_retries_default()
        self.task_retries = (DEFAULT_TASK_RETRIES if task_retries is None
                             else max(0, task_retries))
        #: whether exhausted tasks degrade to in-process execution (default)
        #: or raise the structured engine error (strict mode).
        self.serial_fallback = config.task_fallback_default()

    def default_chunks(self, rows: int) -> int:
        return self.workers

    def run(self, handle: StateHandle, tasks: list[tuple[str, Any]],
            rows: int = 0) -> list[Any]:
        if not tasks:
            return []
        if self.workers <= 1 or len(tasks) <= 1 or rows < self.min_rows:
            if obs.enabled:
                obs.inc("engine.pool.inline")
            return _merge_timed(tasks, worker.run_local_timed(handle.state, tasks))
        return _merge_timed(tasks, self._run_supervised(handle, tasks))

    def run_stream(self, handle: StateHandle, tasks: list[tuple[str, Any]],
                   rows: int = 0) -> Any:
        if not tasks:
            return iter(())
        if self.workers <= 1 or len(tasks) <= 1 or rows < self.min_rows:
            if obs.enabled:
                obs.inc("engine.pool.inline")
            return _merge_timed_stream(
                tasks, iter(worker.run_local_timed(handle.state, tasks)))
        # supervision collects out of completion order, so the "stream"
        # materialises first; consumers still merge in task order.
        return _merge_timed_stream(tasks, iter(self._run_supervised(handle, tasks)))

    # -- supervised execution ---------------------------------------------

    def _run_supervised(self, handle: StateHandle,
                        tasks: list[tuple[str, Any]]) -> list[tuple[float, Any]]:
        """Run every task to a ``(seconds, result)`` under fault supervision.

        The state machine per round: dispatch all still-pending tasks
        asynchronously, collect envelopes until done / timed out /
        worker death detected, retire the pool if the round saw
        anything worse than a clean in-worker error, and carry the
        failed tasks into the next round (the rebuilt pool re-broadcasts
        ``handle.state`` through its initializer).  Tasks still failing
        after ``task_retries`` retry rounds run in-process — or, in
        strict mode, raise with the structured failure context.
        """
        timed: list[tuple[float, Any] | None] = [None] * len(tasks)
        pending = list(range(len(tasks)))
        attempts = [0] * len(tasks)
        failures: dict[int, TaskFailure] = {}
        try:
            for round_index in range(self.task_retries + 1):
                if not pending:
                    break
                if round_index and obs.enabled:
                    obs.inc("engine.task.retry", len(pending))
                pool = self._supervised_pool(handle, rebuilding=round_index > 0)
                if pool is None:
                    break  # could not (re)fork: straight to the fallback
                ready, failed, healthy = self._dispatch_round(pool, tasks, pending)
                for index, entry in ready.items():
                    timed[index] = entry
                failures.update(failed)
                for index in failed:
                    attempts[index] += 1
                if not healthy:
                    self._retire_pool(handle)
                pending = sorted(failed)
        except BaseException:
            # Ctrl-C (or anything unexpected) must not leave worker
            # processes running a half-collected round behind.
            self._retire_pool(handle)
            raise
        if pending:
            self._resolve_exhausted(handle, tasks, pending, failures,
                                    attempts, timed)
        return timed  # type: ignore[return-value]

    def _resolve_exhausted(self, handle: StateHandle,
                           tasks: list[tuple[str, Any]], pending: list[int],
                           failures: dict[int, TaskFailure], attempts: list[int],
                           timed: list[tuple[float, Any] | None]) -> None:
        """Fall back in-process for tasks that failed every round (or raise)."""
        if not self.serial_fallback:
            index = pending[0]
            failure = failures[index]
            error_type = (TaskTimeoutError if failure.kind == "timeout"
                          else WorkerCrashError)
            raise error_type(
                f"task {failure.task!r} failed {attempts[index]} attempt(s) "
                f"({failure.kind}: {failure.message}) and the serial "
                f"fallback is disabled ({config.TASK_FALLBACK_ENV}=0) "
                f"[{worker.payload_summary(tasks[index])}]",
                task=failure.task,
                payload_summary=worker.payload_summary(tasks[index]),
                attempts=attempts[index])
        if obs.enabled:
            obs.inc("engine.fallback.serial")
            obs.inc("engine.fallback.tasks", len(pending))
        local = worker.run_local_timed(handle.state,
                                       [tasks[index] for index in pending])
        for index, entry in zip(pending, local):
            timed[index] = entry

    def _supervised_pool(self, handle: StateHandle, rebuilding: bool) -> Any:
        """The (re)built OS pool for this round, or ``None`` when forking fails."""
        try:
            key = (self.workers, handle.token)
            fresh = key not in _pools
            pool = self._ensure_pool(handle)
        except OSError:
            return None
        if rebuilding and fresh and obs.enabled:
            obs.inc("engine.pool.rebuild")
        return pool

    def _retire_pool(self, handle: StateHandle) -> None:
        """Terminate this handle's pool (kills hung/poisoned workers)."""
        _close_pool((self.workers, handle.token))

    def _dispatch_round(self, pool: Any, tasks: list[tuple[str, Any]],
                        indices: list[int]) -> tuple[
                            dict[int, tuple[float, Any]],
                            dict[int, TaskFailure], bool]:
        """One async dispatch + collection round over *indices*.

        Returns ``(ready, failed, healthy)``: per-index ``(seconds,
        result)`` entries, per-index failures, and whether the pool can
        be reused as-is (only clean in-worker errors leave it healthy —
        timeouts, crashes and dispatch breakage all demand a rebuild).
        """
        ready: dict[int, tuple[float, Any]] = {}
        failed: dict[int, TaskFailure] = {}
        healthy = True
        handles: dict[int, Any] = {}
        try:
            for index in indices:
                handles[index] = pool.apply_async(worker.dispatch_supervised,
                                                  (tasks[index],))
        except Exception as exc:
            # the pool died under us (broken pipe, terminated elsewhere)
            healthy = False
            for index in indices:
                if index not in handles:
                    self._record_failure(failed, index, TaskFailure(
                        tasks[index][0], "crash", f"dispatch failed: {exc!r}"))
        pids = _pool_pids(pool)
        deadline = (None if self.task_timeout is None
                    else monotonic() + self.task_timeout)
        deadlines = {index: deadline for index in handles}
        outstanding = set(handles)
        while outstanding:
            for index in sorted(outstanding):
                result = handles[index]
                if result.ready():
                    outstanding.discard(index)
                    self._collect_envelope(result, tasks[index], index,
                                           ready, failed)
                elif (deadlines[index] is not None
                      and monotonic() >= deadlines[index]):
                    outstanding.discard(index)
                    healthy = False  # a hung worker holds the slot until killed
                    self._record_failure(failed, index, TaskFailure(
                        tasks[index][0], "timeout",
                        f"no result within {self.task_timeout}s"))
            if not outstanding:
                break
            current = _pool_pids(pool)
            if pids is not None and current is not None and current != pids:
                # a worker died mid-round (crash/OOM): results of in-flight
                # tasks may never arrive.  Sweep what already finished,
                # fail the rest promptly instead of waiting out the timeout.
                healthy = False
                for index in sorted(outstanding):
                    result = handles[index]
                    if result.ready():
                        self._collect_envelope(result, tasks[index], index,
                                               ready, failed)
                    else:
                        self._record_failure(failed, index, TaskFailure(
                            tasks[index][0], "crash",
                            "a worker process died before the result arrived"))
                break
            # block on the oldest outstanding result; its arrival wakes the
            # wait early, so the happy path pays no polling latency
            handles[min(outstanding)].wait(_POLL_SECONDS)
        return ready, failed, healthy

    def _collect_envelope(self, result: Any, task: tuple[str, Any], index: int,
                          ready: dict[int, tuple[float, Any]],
                          failed: dict[int, TaskFailure]) -> None:
        """Unwrap one finished async result into *ready* or *failed*."""
        try:
            envelope = result.get()
        except Exception as exc:
            # unpicklable payload/result, or the pool machinery surfacing
            # a lost worker; the retry rounds decide which it was
            self._record_failure(failed, index, TaskFailure(
                task[0], "error", f"{type(exc).__name__}: {exc}"))
            return
        status, seconds, value = envelope
        if status == "ok":
            ready[index] = (seconds, value)
        else:
            self._record_failure(failed, index, value)

    @staticmethod
    def _record_failure(failed: dict[int, TaskFailure], index: int,
                        failure: TaskFailure) -> None:
        failed[index] = failure
        if obs.enabled:
            obs.inc(f"engine.task.failure.{failure.kind}")
            if failure.kind == "timeout":
                obs.inc("engine.task.timeout")

    def _ensure_pool(self, handle: StateHandle) -> Any:
        if handle.supersedes is not None:
            _close_pool((self.workers, handle.supersedes))
        key = (self.workers, handle.token)
        pool = _pools.get(key)
        if pool is not None:
            if obs.enabled:
                obs.inc("engine.pool.reuse")
            _pools[key] = _pools.pop(key)  # LRU touch
            return pool
        while len(_pools) >= MAX_SHARED_POOLS:
            _close_pool(next(iter(_pools)))  # evict the least recently used
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        if obs.enabled:
            obs.inc("engine.pool.start")
        pool = context.Pool(self.workers, initializer=worker.initialize,
                            initargs=(handle.state,))
        _pools[key] = pool
        return pool


def resolve_pool(engine: str | None = None,
                 workers: int | None = None,
                 task_timeout: float | None = None,
                 task_retries: int | None = None) -> ExecutorPool | None:
    """Resolve the ``engine=``/``workers=`` knobs into an executor pool.

    ``None`` means the classic sequential path (no chunking at all) —
    the default when neither knob nor the ``REPRO_ENGINE`` environment
    variable asks for more.  Passing only ``workers`` implies
    ``"parallel"`` when more than one, ``"serial"`` for exactly one.
    ``task_timeout`` / ``task_retries`` tune the parallel backend's
    supervision (defaults: ``REPRO_TASK_TIMEOUT`` / ``REPRO_TASK_RETRIES``,
    then 300s / 2); the serial backends ignore them — nothing there can
    crash or hang a worker.
    """
    if engine is None:
        engine = config.engine_default(ENGINES)
    if engine is None and workers is not None:
        engine = "parallel" if workers > 1 else "serial"
    if engine is None or engine == "sequential":
        return None
    if engine == "serial":
        return SerialPool()
    if engine == "parallel":
        if workers is None:
            workers = config.workers_default()
        min_rows = config.parallel_threshold_default()
        return MultiprocessingPool(workers=workers, min_rows=min_rows,
                                   task_timeout=task_timeout,
                                   task_retries=task_retries)
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
