"""Execution backends for the chunked detection engine.

An :class:`ExecutorPool` runs per-chunk worker tasks against a broadcast
*state* (see :mod:`repro.engine.worker`).  Two backends exist:

* :class:`SerialPool` — runs tasks in-process.  Chunking and merging are
  still exercised (the default splits into a handful of chunks), which is
  what the chunk-boundary parity tests lean on;
* :class:`MultiprocessingPool` — ships the state to a pool of worker
  processes (codes and dictionaries travel once per broadcast
  generation, via the pool initializer) and maps tasks across them.  OS
  pools live in a small process-wide LRU registry keyed by (workers,
  state token), so detectors with different broadcast states can
  alternate without re-forking, and steady-state detection pays no spawn
  cost; a plan that re-tokenises after a mutation retires its stale pool
  explicitly.  Workloads smaller than ``min_rows`` fall back to
  in-process execution — the report is byte-identical either way, so the
  cut-over is invisible.

:func:`resolve_pool` turns the user-facing ``engine=``/``workers=`` knobs
(and the ``REPRO_ENGINE`` / ``REPRO_WORKERS`` / ``REPRO_PARALLEL_THRESHOLD``
environment variables, parsed and validated by :mod:`repro.config`) into
a pool, or ``None`` for the classic sequential path.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import os
from typing import Any, Iterator

from repro import config, obs
from repro.config import ENGINE_ENV, THRESHOLD_ENV, WORKERS_ENV  # noqa: F401 (re-exported)
from repro.engine import worker

#: engine names accepted by detectors, the session, the CLI and the env var.
ENGINES = ("sequential", "serial", "parallel")

#: below this many live tuples the parallel backend runs in-process.
DEFAULT_MIN_ROWS = 4096

_token_counter = itertools.count(1)


class StateHandle:
    """A broadcastable state with an identity token.

    Detection plans cache one handle per relation version; the
    multiprocessing backend compares tokens to decide whether the worker
    processes already hold this state or a pool must be (re)started.
    When a plan re-tokenises after a relation mutation it passes the old
    token as *supersedes*, letting the backend retire the now-stale pool
    instead of waiting for LRU eviction.
    """

    __slots__ = ("token", "state", "supersedes")

    def __init__(self, state: dict[str, Any],
                 supersedes: int | None = None) -> None:
        self.token = next(_token_counter)
        self.state = state
        self.supersedes = supersedes


class ExecutorPool:
    """Abstract task runner; concrete backends decide where tasks execute."""

    name = "abstract"

    def __init__(self, chunk_size: int | None = None,
                 num_chunks: int | None = None) -> None:
        self.chunk_size = chunk_size
        self.num_chunks = num_chunks

    def chunk_plan(self, rows: int) -> dict[str, int | None]:
        """Keyword arguments for :class:`~repro.engine.chunker.Chunker`."""
        if self.chunk_size is not None:
            return {"chunk_size": self.chunk_size}
        return {"num_chunks": self.num_chunks or self.default_chunks(rows)}

    def default_chunks(self, rows: int) -> int:
        raise NotImplementedError

    def run(self, handle: StateHandle, tasks: list[tuple[str, Any]],
            rows: int = 0) -> list[Any]:
        """Run tasks against the state; results come back in task order."""
        raise NotImplementedError

    def run_stream(self, handle: StateHandle, tasks: list[tuple[str, Any]],
                   rows: int = 0) -> "Iterator[Any]":
        """Like :meth:`run` but yields results as they complete (task order).

        Lets the parent overlap merging with still-running workers.
        """
        return iter(self.run(handle, tasks, rows))


def _merge_timed(tasks: list[tuple[str, Any]],
                 timed: list[tuple[float, Any]]) -> list[Any]:
    """Unwrap ``(seconds, result)`` pairs, folding timings into the registry."""
    if obs.enabled:
        for (name, _), (seconds, _) in zip(tasks, timed):
            obs.observe(f"engine.task.{name}.seconds", seconds)
    return [result for _, result in timed]


def _merge_timed_stream(tasks: list[tuple[str, Any]],
                        timed: "Iterator[tuple[float, Any]]") -> "Iterator[Any]":
    """Streaming :func:`_merge_timed`: preserves the backend's laziness."""
    for (name, _), (seconds, result) in zip(tasks, timed):
        if obs.enabled:
            obs.observe(f"engine.task.{name}.seconds", seconds)
        yield result


class SerialPool(ExecutorPool):
    """Chunked execution on the calling thread (no processes involved)."""

    name = "serial"
    #: chunks used by default so boundary merging is exercised even serially.
    DEFAULT_CHUNKS = 4

    def default_chunks(self, rows: int) -> int:
        return self.DEFAULT_CHUNKS

    def run(self, handle: StateHandle, tasks: list[tuple[str, Any]],
            rows: int = 0) -> list[Any]:
        return _merge_timed(tasks, worker.run_local_timed(handle.state, tasks))


# Process-wide registry of live OS pools, shared by every
# MultiprocessingPool facade and keyed by (workers, state token).  Keeping
# a small LRU of pools lets plans with different broadcast states (a CFD
# and a CIND detector inside one session, say) alternate without
# terminating and re-forking on every switch; stale generations are
# retired explicitly via StateHandle.supersedes or by LRU eviction.
_pools: "dict[tuple[int, int], Any]" = {}

#: most pools kept alive at once (each holds `workers` OS processes).
MAX_SHARED_POOLS = 4


def _close_pool(key: tuple[int, int]) -> None:
    pool = _pools.pop(key, None)
    if pool is not None:
        if obs.enabled:
            obs.inc("engine.pool.stop")
        pool.terminate()
        pool.join()


def shutdown_pools() -> None:
    """Terminate every shared worker pool now (also runs at exit).

    One-shot callers (``detect_cfd_violations(..., engine="parallel")`` in
    a loop, ephemeral ``detect_one`` plans) each broadcast a fresh state
    and therefore fork a fresh pool; steady-state users should hold on to
    a detector instead, but this releases the processes early either way.
    """
    for key in list(_pools):
        _close_pool(key)


atexit.register(shutdown_pools)


class MultiprocessingPool(ExecutorPool):
    """Multiprocess execution with broadcast-once state."""

    name = "parallel"

    def __init__(self, workers: int | None = None, chunk_size: int | None = None,
                 num_chunks: int | None = None, min_rows: int | None = None) -> None:
        super().__init__(chunk_size=chunk_size, num_chunks=num_chunks)
        self.workers = max(1, workers if workers is not None
                           else (os.cpu_count() or 1))
        self.min_rows = DEFAULT_MIN_ROWS if min_rows is None else min_rows

    def default_chunks(self, rows: int) -> int:
        return self.workers

    def run(self, handle: StateHandle, tasks: list[tuple[str, Any]],
            rows: int = 0) -> list[Any]:
        if not tasks:
            return []
        if self.workers <= 1 or len(tasks) <= 1 or rows < self.min_rows:
            if obs.enabled:
                obs.inc("engine.pool.inline")
            return _merge_timed(tasks, worker.run_local_timed(handle.state, tasks))
        pool = self._ensure_pool(handle)
        return _merge_timed(tasks, pool.map(worker.dispatch_timed, tasks))

    def run_stream(self, handle: StateHandle, tasks: list[tuple[str, Any]],
                   rows: int = 0) -> Any:
        if not tasks:
            return iter(())
        if self.workers <= 1 or len(tasks) <= 1 or rows < self.min_rows:
            if obs.enabled:
                obs.inc("engine.pool.inline")
            return _merge_timed_stream(
                tasks, iter(worker.run_local_timed(handle.state, tasks)))
        pool = self._ensure_pool(handle)
        return _merge_timed_stream(tasks, pool.imap(worker.dispatch_timed, tasks))

    def _ensure_pool(self, handle: StateHandle) -> Any:
        if handle.supersedes is not None:
            _close_pool((self.workers, handle.supersedes))
        key = (self.workers, handle.token)
        pool = _pools.get(key)
        if pool is not None:
            if obs.enabled:
                obs.inc("engine.pool.reuse")
            _pools[key] = _pools.pop(key)  # LRU touch
            return pool
        while len(_pools) >= MAX_SHARED_POOLS:
            _close_pool(next(iter(_pools)))  # evict the least recently used
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        if obs.enabled:
            obs.inc("engine.pool.start")
        pool = context.Pool(self.workers, initializer=worker.initialize,
                            initargs=(handle.state,))
        _pools[key] = pool
        return pool


def resolve_pool(engine: str | None = None,
                 workers: int | None = None) -> ExecutorPool | None:
    """Resolve the ``engine=``/``workers=`` knobs into an executor pool.

    ``None`` means the classic sequential path (no chunking at all) —
    the default when neither knob nor the ``REPRO_ENGINE`` environment
    variable asks for more.  Passing only ``workers`` implies
    ``"parallel"`` when more than one, ``"serial"`` for exactly one.
    """
    if engine is None:
        engine = config.engine_default(ENGINES)
    if engine is None and workers is not None:
        engine = "parallel" if workers > 1 else "serial"
    if engine is None or engine == "sequential":
        return None
    if engine == "serial":
        return SerialPool()
    if engine == "parallel":
        if workers is None:
            workers = config.workers_default()
        min_rows = config.parallel_threshold_default()
        return MultiprocessingPool(workers=workers, min_rows=min_rows)
    raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
