"""Chunked execution of code-native hash-join probes over a relation pair.

The SQL executor's join plans (:class:`~repro.relational.sql.columnar.JoinPlan`)
run their probe phase on the same chunk/merge machinery as everything
else: the probe side's live tids are sliced into contiguous chunks, every
chunk is probed once by the ``join_probe`` worker, and the parent stitches
the per-chunk results back together in chunk order.

* A **pair probe** (probe side = left) returns joined ``(left tid, right
  tid)`` pairs per chunk; concatenating them in chunk order replays the
  sequential left-major join order exactly.
* A **match probe** (probe side = right, used when the left side is the
  smaller build side) returns ``left tid -> [right tids]`` partials;
  merging concatenates each left tid's right tids in chunk order —
  ascending, like the sequential probe — and the executor re-emits pairs
  in left scan order.
* A **grouped probe** returns ``sql_scan``-shaped partial groups (the
  representative is the group's first pair);
  :class:`~repro.engine.sql.AggregateMerger` combines them, so grouped
  join results — floats included — are byte-identical to the in-process
  path for every chunk size and worker count.

The broadcast state holds both relations' code arrays (live views, shipped
once per *version pair* — a mutation of either relation re-tokenises the
handle).  Build-side buckets and bridge translation arrays ride in each
task payload instead: like the CIND engine's RHS key sets, they are
query-scoped and usually far smaller than the relations, and keeping them
out of the broadcast state means steady-state joins over unchanged
relations never re-fork the pool.

On the parallel backend every fan-out here runs supervised (see
:mod:`repro.engine.executor`): per-task timeouts, retries and the
in-process fallback guarantee these results even when worker
processes raise, hang or die mid-run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro import obs
from repro.engine.chunker import Chunker
from repro.engine.executor import ExecutorPool, StateHandle
from repro.engine.sql import AggregateMerger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.relation import Relation

#: the spec id of the ``join_probe`` broadcast state (one pair per engine).
JOIN_SPEC = "join"


def join_state(left: "Relation", right: "Relation") -> dict[str, Any]:
    """The ``join_probe`` broadcast state of one relation pair (live views).

    Shared by :class:`ChunkedJoinEngine` and the executor's in-process
    (poolless) probe, so the worker contract has one source of truth.
    """
    return {JOIN_SPEC: {"sides": (
        left.columns.code_arrays(range(left.schema.arity)),
        right.columns.code_arrays(range(right.schema.arity)),
    )}}


class ChunkedJoinEngine:
    """Chunk-parallel ``join_probe`` execution over one relation pair."""

    def __init__(self, left: "Relation", right: "Relation",
                 pool: ExecutorPool) -> None:
        self._relations = (left, right)
        self._pool = pool
        self._handle: StateHandle | None = None
        self._versions: tuple[int, int] = (-1, -1)

    @property
    def relations(self) -> tuple:
        return self._relations

    def _ensure_handle(self) -> StateHandle:
        """The broadcast handle, re-tokenised when either relation changed."""
        versions = tuple(relation.version for relation in self._relations)
        if self._handle is None:
            if obs.enabled:
                obs.inc("engine.broadcast.build")
            self._handle = StateHandle(join_state(*self._relations))
        elif versions != self._versions:
            if obs.enabled:
                obs.inc("engine.broadcast.retokenize")
            for relation in self._relations:
                relation.columns  # rebuild a stale store in place first
            self._handle = StateHandle(self._handle.state,
                                       supersedes=self._handle.token)
        elif obs.enabled:
            obs.inc("engine.broadcast.reuse")
        self._versions = versions
        return self._handle

    # -- execution ---------------------------------------------------------

    def _run(self, query: dict[str, Any], handler: str = "join_probe"):
        probe = self._relations[query["probe_side"]]
        rows = len(probe)
        chunks = Chunker(probe, **self._pool.chunk_plan(rows)).chunks()
        if not chunks:
            return None
        if obs.enabled:
            obs.inc("engine.join.runs")
            obs.observe("engine.join.chunks", len(chunks))
        handle = self._ensure_handle()
        tasks: list[tuple[str, Any]] = [
            (handler, (JOIN_SPEC, query, chunk.tids)) for chunk in chunks]
        return self._pool.run_stream(handle, tasks, rows)

    def probe_pairs(self, query: dict[str, Any]) -> list[tuple[int, int]]:
        """Joined (left tid, right tid) pairs, global left-major order."""
        with obs.span("sql.join.probe",
                      relation=self._relations[query["probe_side"]].name):
            results = self._run(query)
            pairs: list[tuple[int, int]] = []
            if results is not None:
                for partial in results:
                    pairs.extend(partial)
            return pairs

    def probe_matches(self, query: dict[str, Any]) -> dict[int, list[int]]:
        """Merged ``left (build) tid -> [right tids]`` match lists."""
        with obs.span("sql.join.probe",
                      relation=self._relations[query["probe_side"]].name):
            results = self._run(query)
            matches: dict[int, list[int]] = {}
            if results is not None:
                for partial in results:
                    for build_tid, tids in partial.items():
                        seen = matches.get(build_tid)
                        if seen is None:
                            matches[build_tid] = tids
                        else:
                            seen.extend(tids)
            return matches

    def probe_grouped(self, query: dict[str, Any]) -> dict[Any, list]:
        """Merged ``code key -> [first pair, aggregate states...]`` groups."""
        with obs.span("sql.join.probe",
                      relation=self._relations[query["probe_side"]].name):
            merger = AggregateMerger(query["aggs"])
            results = self._run(query)
            if results is not None:
                for partial in results:
                    merger.add_chunk(partial)
            return merger.groups

    def probe_factorised(self, query: dict[str, Any]
                         ) -> tuple[dict[Any, list], int, int]:
        """Factorised grouped probe: semiring folds, no tuple enumeration.

        Returns ``(merged groups, semiring folds performed, enumerated
        tuples those folds replaced)``; the groups are byte-identical to
        :meth:`probe_grouped`'s for every chunk size and worker count.
        """
        with obs.span("sql.factorised.fold",
                      relation=self._relations[0].name):
            merger = AggregateMerger(query["aggs"], factorised=True)
            partials = 0
            tuples = 0
            results = self._run(query, handler="factorised_fold")
            if results is not None:
                for groups, chunk_partials, chunk_tuples, _ in results:
                    merger.add_chunk(groups)
                    partials += chunk_partials
                    tuples += chunk_tuples
            return merger.groups, partials, tuples

    def __repr__(self) -> str:
        left, right = self._relations
        return (f"ChunkedJoinEngine({left.name} ⋈ {right.name}, "
                f"pool={self._pool.name})")
