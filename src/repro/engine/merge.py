"""Stitching per-chunk partial groups back into global LHS groups.

Chunk workers group their slice of the relation by LHS code tuples; a
group whose tuples straddle a chunk boundary comes back as several
partial groups under the same key.  :class:`GroupMerger` folds the chunk
dictionaries together **in chunk order**, which restores two invariants
of the sequential scan the detectors depend on for byte-identical
reports:

* merged keys appear in global first-occurrence order — exactly the
  bucket order of a freshly rebuilt
  :class:`~repro.relational.index.HashIndex`;
* each merged tid list is ascending — exactly the order the sequential
  scan appended them.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.relational.columns import NULL_CODE


class GroupMerger:
    """Accumulates ``code key -> tids`` partial groups across chunks."""

    __slots__ = ("_groups",)

    def __init__(self) -> None:
        self._groups: dict[tuple[int, ...], list[int]] = {}

    def add_chunk(self, partial: Mapping[tuple[int, ...], list[int]]) -> None:
        """Fold one chunk's partial groups in (call in chunk order)."""
        groups = self._groups
        for key, tids in partial.items():
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = tids
            else:
                bucket.extend(tids)

    @property
    def groups(self) -> dict[tuple[int, ...], list[int]]:
        """All merged groups, keys in first-occurrence order, tids ascending."""
        return self._groups

    def checkable_groups(self) -> list[list[int]]:
        """The tid lists of groups a variable-RHS pattern could violate.

        Mirrors the sequential detectors' bucket filter: at least two
        tuples, and no NULL component in the key (a NULL on the LHS never
        participates in a group violation).  Order follows the merged key
        order, so verdicts computed from this list can be emitted
        positionally.
        """
        return [tids for key, tids in self._groups.items()
                if len(tids) >= 2 and NULL_CODE not in key]

    def __len__(self) -> int:
        return len(self._groups)

    def __repr__(self) -> str:
        return f"GroupMerger({len(self._groups)} groups)"


def split_batches(items: list[Any], parts: int) -> list[list[Any]]:
    """Split *items* into at most *parts* contiguous, balanced batches.

    Used to fan merged groups out to the group-check workers; contiguity
    keeps concatenated results in the original (first-occurrence) order.
    """
    if not items:
        return []
    parts = max(1, min(parts, len(items)))
    base, extra = divmod(len(items), parts)
    batches: list[list[Any]] = []
    start = 0
    for i in range(parts):
        length = base + (1 if i < extra else 0)
        batches.append(items[start:start + length])
        start += length
    return batches
