"""Chunked execution of code-native multiway (3+ table) joins.

The SQL executor's multiway plans
(:class:`~repro.relational.sql.columnar.MultiJoinPlan`) fan out over the
first join variable's candidate codes: the parent intersects the first
variable once, slices the candidate list into contiguous balanced
batches, and every batch is enumerated by the ``multiway_probe`` worker
(leapfrog intersection + descent over the remaining variables).  Each
worker returns its join tuples *sorted*, so merging the per-chunk sorted
runs reproduces the global ascending ``(tid_1, .., tid_N)`` enumeration —
the order the row path's left-deep pipeline emits — for every chunk size
and worker count.

Grouped statements run a second fan-out: the sorted tuple list is sliced
into contiguous batches (global tuple order = chunk order) and the
``multiway_fold`` worker groups + aggregates each slice;
:class:`~repro.engine.sql.AggregateMerger` stitches the partials, so
float folds and group first-occurrence order stay byte-identical to the
in-process path.

The broadcast state holds *all* participating relations' code arrays
(live views, shipped once per version tuple — a mutation of any relation
re-tokenises the handle).  Level groups, bridge translations and the
candidate slices ride in the task payloads: they are query-scoped, like
hash-join buckets.

On the parallel backend every fan-out here runs supervised (see
:mod:`repro.engine.executor`): per-task timeouts, retries and the
in-process fallback guarantee these results even when worker
processes raise, hang or die mid-run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro import obs
from repro.engine.executor import ExecutorPool, StateHandle
from repro.engine.merge import split_batches
from repro.engine.sql import AggregateMerger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.relation import Relation

#: the spec id of the multiway broadcast state (one relation tuple per engine).
MULTI_SPEC = "multijoin"


def multi_join_state(relations: tuple) -> dict[str, Any]:
    """The multiway broadcast state of one relation tuple (live views).

    Shared by :class:`ChunkedMultiJoinEngine` and the executor's
    in-process (poolless) path, so the worker contract has one source of
    truth.
    """
    return {MULTI_SPEC: {"tables": tuple(
        relation.columns.code_arrays(range(relation.schema.arity))
        for relation in relations)}}


class ChunkedMultiJoinEngine:
    """Chunk-parallel multiway join execution over one relation tuple."""

    def __init__(self, relations: tuple, pool: ExecutorPool) -> None:
        self._relations = tuple(relations)
        self._pool = pool
        self._handle: StateHandle | None = None
        self._versions: tuple[int, ...] = ()

    @property
    def relations(self) -> tuple:
        return self._relations

    def _ensure_handle(self) -> StateHandle:
        """The broadcast handle, re-tokenised when any relation changed."""
        versions = tuple(relation.version for relation in self._relations)
        if self._handle is None:
            if obs.enabled:
                obs.inc("engine.broadcast.build")
            self._handle = StateHandle(multi_join_state(self._relations))
        elif versions != self._versions:
            if obs.enabled:
                obs.inc("engine.broadcast.retokenize")
            for relation in self._relations:
                relation.columns  # rebuild a stale store in place first
            self._handle = StateHandle(self._handle.state,
                                       supersedes=self._handle.token)
        elif obs.enabled:
            obs.inc("engine.broadcast.reuse")
        self._versions = versions
        return self._handle

    # -- execution ---------------------------------------------------------

    def _batches(self, items: list) -> list[list]:
        plan = self._pool.chunk_plan(len(items))
        size = plan.get("chunk_size")
        if size:
            return [items[start:start + size]
                    for start in range(0, len(items), size)]
        return split_batches(items, plan.get("num_chunks", 1))

    def probe(self, query: dict[str, Any],
              candidates: list[int]) -> tuple[list[tuple[int, ...]], list[int]]:
        """Join tuples in global ascending order + per-level candidate counts."""
        with obs.span("sql.multiway.probe",
                      tables=len(self._relations)):
            depth = len(query["levels"])
            batches = self._batches(candidates)
            if not batches:
                return [], [0] * depth
            if obs.enabled:
                obs.inc("engine.multijoin.runs")
                obs.observe("engine.multijoin.chunks", len(batches))
            handle = self._ensure_handle()
            rows = sum(len(relation) for relation in self._relations)
            tasks: list[tuple[str, Any]] = [
                ("multiway_probe", (MULTI_SPEC, query, batch))
                for batch in batches]
            results = self._pool.run_stream(handle, tasks, rows)
            combos: list[tuple[int, ...]] = []
            counts = [0] * depth
            for partial_combos, partial_counts in results:
                combos.extend(partial_combos)
                for level, count in enumerate(partial_counts):
                    counts[level] += count
            # per-chunk runs are sorted; timsort merges them near-linearly
            combos.sort()
            return combos, counts

    def probe_factorised(self, query: dict[str, Any], candidates: list[int]
                         ) -> tuple[dict[Any, list], int, int, list[int]]:
        """Factorised grouped probe: one fan-out, no tuple enumeration.

        Workers descend the leapfrog levels exactly like ``multiway_probe``
        but fold each fully bound block by semiring multiplication
        (``factorised_fold``).  Returns ``(merged groups, semiring folds,
        enumerated tuples replaced, per-level candidate counts)``; group
        representatives are min-merged and the caller re-sorts groups by
        representative to restore the sorted enumeration's
        first-occurrence order.
        """
        with obs.span("sql.factorised.fold",
                      tables=len(self._relations)):
            depth = len(query["levels"])
            merger = AggregateMerger(query["aggs"], factorised=True,
                                     ordered_reps=True)
            counts = [0] * depth
            partials = 0
            tuples = 0
            batches = self._batches(candidates)
            if batches:
                if obs.enabled:
                    obs.inc("engine.multijoin.runs")
                    obs.observe("engine.multijoin.chunks", len(batches))
                handle = self._ensure_handle()
                rows = sum(len(relation) for relation in self._relations)
                tasks: list[tuple[str, Any]] = [
                    ("factorised_fold", (MULTI_SPEC, query, batch))
                    for batch in batches]
                for groups, chunk_partials, chunk_tuples, chunk_counts \
                        in self._pool.run_stream(handle, tasks, rows):
                    merger.add_chunk(groups)
                    partials += chunk_partials
                    tuples += chunk_tuples
                    for level, count in enumerate(chunk_counts):
                        counts[level] += count
            return merger.groups, partials, tuples, counts

    def fold(self, query: dict[str, Any],
             combos: list[tuple[int, ...]]) -> dict[Any, list]:
        """Merged ``code key -> [first tuple, aggregate states...]`` groups."""
        with obs.span("sql.multiway.fold",
                      tables=len(self._relations)):
            merger = AggregateMerger(query["aggs"])
            batches = self._batches(combos)
            if batches:
                handle = self._ensure_handle()
                tasks: list[tuple[str, Any]] = [
                    ("multiway_fold", (MULTI_SPEC, query, batch))
                    for batch in batches]
                for partial in self._pool.run_stream(handle, tasks, len(combos)):
                    merger.add_chunk(partial)
            return merger.groups

    def __repr__(self) -> str:
        names = " ⋈ ".join(relation.name for relation in self._relations)
        return f"ChunkedMultiJoinEngine({names}, pool={self._pool.name})"
