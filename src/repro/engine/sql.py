"""Chunked execution of code-native SQL scans over column partitions.

The SQL executor's code-native plans (single-table scan → filter → group
→ aggregate on dictionary codes, see
:mod:`repro.relational.sql.columnar`) run on the same chunk/merge
machinery as detection and discovery: every chunk of live tids is scanned
once by the ``sql_scan`` worker, and the parent stitches the per-chunk
results back together in chunk order.

* A **plain scan** returns surviving tids per chunk; concatenating them
  in chunk order replays the sequential scan order exactly.
* A **grouped scan** returns partial aggregate states keyed by code
  tuples; :class:`AggregateMerger` — the aggregate-aware sibling of
  :class:`~repro.engine.merge.GroupMerger` — combines them so merged keys
  appear in global first-occurrence order, counts add, distinct-code sets
  union, MIN/MAX keep the best dictionary-order rank (ties keeping the
  earliest chunk, i.e. the first occurrence), and SUM/AVG concatenate
  their code lists so the parent folds values in global tuple order.
  Every combination is exact — grouped results (floats included) are
  byte-identical to the sequential scan for every chunk size and worker
  count.

The broadcast state is one spec holding every code array of the relation,
shipped once per relation version; all query-specific inputs (filters,
group positions, aggregate specs) ride in the task payloads, so running
many different queries against an unchanged relation costs no re-broadcast
and no re-fork.

On the parallel backend every fan-out here runs supervised (see
:mod:`repro.engine.executor`): per-task timeouts, retries and the
in-process fallback guarantee these results even when worker
processes raise, hang or die mid-run.
"""

from __future__ import annotations

from typing import Any

from repro import obs
from repro.engine.broadcast import RelationBroadcastEngine
from repro.engine.chunker import Chunker

#: the spec id of the ``sql_scan`` broadcast state (one relation per engine).
SQL_SPEC = "sql"


def broadcast_state(relation: Any) -> dict[str, Any]:
    """The ``sql_scan`` broadcast state of one relation (live array views).

    Shared by :class:`ChunkedSQLEngine` and the executor's in-process
    (poolless) scan, so the worker contract has one source of truth.
    """
    arrays = relation.columns.code_arrays(range(relation.schema.arity))
    return {SQL_SPEC: {"arrays": arrays}}


class AggregateMerger:
    """Combines per-chunk ``sql_scan`` group partials (call in chunk order).

    With ``factorised=True`` the merger combines ``factorised_fold``
    semiring partials instead: counts stay additive, code sets (which
    also back DISTINCT SUM/AVG) union, non-DISTINCT SUM/AVG merge their
    exact ``[total, count]`` pairs elementwise, MIN/MAX keep the best
    rank.  ``ordered_reps=True`` additionally min-merges each group's
    representative tuple (multiway chunks see groups out of enumeration
    order; the parent re-sorts by representative afterwards).
    """

    __slots__ = ("_kinds", "_groups", "_ordered_reps")

    def __init__(self, aggs: list[tuple], factorised: bool = False,
                 ordered_reps: bool = False) -> None:
        if factorised:
            self._kinds = [self._factorised_kind(spec) for spec in aggs]
        else:
            self._kinds = [spec[0] for spec in aggs]
        self._groups: dict[Any, list] = {}
        self._ordered_reps = ordered_reps

    @staticmethod
    def _factorised_kind(spec: tuple) -> str:
        kind = spec[0]
        if kind in ("sum", "avg"):
            # DISTINCT folds are code sets (merged like COUNT(DISTINCT));
            # non-DISTINCT folds are exact [total, count] pairs.
            return "count_distinct" if spec[3] else "pair"
        if kind == "count_star":
            return "count"
        return kind

    def add_chunk(self, partial: dict[Any, list]) -> None:
        """Fold one chunk's partial groups in."""
        groups = self._groups
        kinds = self._kinds
        ordered_reps = self._ordered_reps
        for key, entry in partial.items():
            mine = groups.get(key)
            if mine is None:
                groups[key] = entry  # first occurrence: representative tid rides along
                continue
            if ordered_reps and entry[0] < mine[0]:
                mine[0] = entry[0]  # the enumeration-order first tuple wins
            for index, kind in enumerate(kinds, start=1):
                theirs = entry[index]
                if kind in ("count_star", "count"):
                    mine[index] += theirs
                elif kind == "count_distinct":
                    mine[index] |= theirs
                elif kind == "pair":  # factorised exact [total, count]
                    pair = mine[index]
                    pair[0] += theirs[0]
                    pair[1] += theirs[1]
                elif kind in ("sum", "avg"):
                    mine[index].extend(theirs)
                elif theirs is not None:  # min | max: strictly better rank wins
                    best = mine[index]
                    if best is None or (theirs[0] < best[0] if kind == "min"
                                        else theirs[0] > best[0]):
                        mine[index] = theirs

    @property
    def groups(self) -> dict[Any, list]:
        """Merged groups, keys in global first-occurrence order."""
        return self._groups

    def __len__(self) -> int:
        return len(self._groups)

    def __repr__(self) -> str:
        return f"AggregateMerger({len(self._groups)} groups)"


class ChunkedSQLEngine(RelationBroadcastEngine):
    """Chunk-parallel ``sql_scan`` execution over one relation."""

    # -- state broadcast ---------------------------------------------------

    def _build_state(self) -> dict[str, Any]:
        return broadcast_state(self._relation)

    # -- execution ---------------------------------------------------------

    def _run(self, query: dict[str, Any]):
        rows = len(self._relation)
        chunks = Chunker(self._relation, **self._pool.chunk_plan(rows)).chunks()
        if not chunks:
            return None
        if obs.enabled:
            obs.inc("engine.sql.runs")
            obs.observe("engine.sql.chunks", len(chunks))
        handle = self._ensure_handle()
        tasks: list[tuple[str, Any]] = [
            ("sql_scan", (SQL_SPEC, query, chunk.tids)) for chunk in chunks]
        return self._pool.run_stream(handle, tasks, rows)

    def scan(self, query: dict[str, Any]) -> list[int]:
        """Surviving tids of a plain (ungrouped) scan, in global scan order."""
        results = self._run(query)
        tids: list[int] = []
        if results is not None:
            for partial in results:
                tids.extend(partial)
        return tids

    def scan_grouped(self, query: dict[str, Any]) -> dict[Any, list]:
        """Merged ``code key -> [first tid, aggregate states...]`` groups."""
        merger = AggregateMerger(query["aggs"])
        results = self._run(query)
        if results is not None:
            for partial in results:
                merger.add_chunk(partial)
        return merger.groups
