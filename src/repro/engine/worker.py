"""Per-chunk detection workers.

Everything in this module is *plain data in, plain data out*: a worker
receives a task ``(handler name, payload)`` and reads the broadcast
*state* (code arrays, pre-encoded constant code sets, per-code string
caches) that the parent shipped when the pool was (re)started.  Workers
never see :class:`~repro.relational.relation.Relation`,
:class:`~repro.constraints.cfd.CFD` or violation objects — they return
tids, partial groups keyed by code tuples, and per-group verdicts, and
the parent assembles the actual :class:`CFDViolation`/:class:`CINDViolation`
objects.  That keeps the payloads small and picklable under both the
``fork`` and ``spawn`` start methods.

Correctness contract: every handler replicates its sequential twin
*operation by operation* (including rebuilding each tid group as a
``set`` with the same insertion history the sequential
:class:`~repro.relational.index.HashIndex` would have) so that the merged
output is byte-identical to the sequential columnar path.

Supervision contract: the pool dispatch target is
:func:`dispatch_supervised`, which wraps every task in a structured
envelope — ``("ok", seconds, result)`` on success, ``("err", seconds,
TaskFailure)`` when the handler raised — so an in-worker exception
travels back as plain picklable data instead of poisoning the pool.  The
same dispatch path hosts the seeded fault-injection hook (``REPRO_FAULTS``
or :func:`install_faults`) used by the chaos tests: injected faults only
ever fire here, never in :func:`run_local` / :func:`run_local_timed`,
which is what makes the executor's in-process fallback a safe harbour.
"""

from __future__ import annotations

import os
import random
import time
from bisect import bisect_left
from itertools import product
from time import perf_counter
from typing import Any

from repro.relational.columns import NULL_CODE, take

#: broadcast state of the current pool generation (set by the initializer).
_STATE: dict[str, Any] | None = None


def initialize(state: dict[str, Any]) -> None:
    """Pool initializer: install the broadcast state in this process.

    Also runs in workers the pool spawns to replace crashed ones, so a
    repopulated worker holds the current broadcast generation — and a
    fresh per-pid fault stream — without any parent-side bookkeeping.
    """
    global _STATE
    _STATE = state
    if _FAULTS_SOURCE != "manual":
        install_env_faults()
    elif _FAULTS is not None:
        _FAULTS.reset()


# -- supervision envelope ----------------------------------------------------


class TaskFailure:
    """Picklable record of one task attempt that failed inside a worker.

    Carried back through the ``("err", seconds, failure)`` envelope (or
    synthesised parent-side for crashes and timeouts, where no worker is
    left to report).  ``kind`` is one of ``"error"`` (the handler
    raised), ``"crash"`` (the worker process died) or ``"timeout"``.
    """

    def __init__(self, task: str, kind: str, message: str) -> None:
        self.task = task
        self.kind = kind
        self.message = message

    def __repr__(self) -> str:
        return f"TaskFailure({self.task!r}, {self.kind!r}, {self.message!r})"


def payload_summary(task: tuple[str, Any]) -> str:
    """Compact, code-free description of a task for error messages.

    Container payload parts collapse to ``type[len]`` so a failure over a
    4096-tid chunk never drags the chunk itself into an exception chain.
    """
    name, payload = task
    parts = payload if isinstance(payload, tuple) else (payload,)
    rendered = []
    for part in parts:
        if isinstance(part, str):
            rendered.append(part)
        elif isinstance(part, (list, tuple, set, frozenset, dict)):
            rendered.append(f"{type(part).__name__}[{len(part)}]")
        else:
            rendered.append(type(part).__name__)
    return f"{name}({', '.join(rendered)})"


def dispatch_supervised(task: tuple[str, Any]) -> tuple[str, float, Any]:
    """Supervised pool dispatch target: never lets an exception escape.

    Returns ``("ok", worker seconds, result)`` or ``("err", worker
    seconds, TaskFailure)``.  ``KeyboardInterrupt``/``SystemExit`` still
    propagate (pool teardown must win over supervision), and injected
    ``crash``/``hang`` faults act *before* the envelope — by design, they
    simulate failures the envelope cannot catch.
    """
    name, payload = task
    fault = _FAULTS.draw(name) if _FAULTS is not None else None
    start = perf_counter()
    try:
        if fault is not None:
            _apply_fault(fault, name)
        result = _HANDLERS[name](_STATE, payload)
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:
        return ("err", perf_counter() - start,
                TaskFailure(name, "error", f"{type(exc).__name__}: {exc}"))
    return ("ok", perf_counter() - start, result)


# -- fault injection ---------------------------------------------------------

#: how long an injected hang sleeps; the supervising parent's per-task
#: timeout (and the pool rebuild that follows) is what actually ends it.
HANG_SECONDS = 3600.0

#: exit code of injected crashes (looks like an abrupt kill to the pool).
CRASH_EXIT_CODE = 113


class InjectedFault(RuntimeError):
    """The transient exception raised by an injected ``raise`` fault."""


class FaultInjector:
    """Seeded random fault plan: at most one fault kind per dispatch.

    Each worker process draws from its own ``random.Random`` stream
    derived from ``(seed, pid)``, so a fixed seed gives a reproducible
    fault schedule per worker while fork-inherited copies still diverge.
    """

    def __init__(self, rates: dict[str, float], seed: int = 0) -> None:
        self.rates = dict(rates)
        self.seed = seed
        self._random: random.Random | None = None

    def reset(self) -> None:
        """Drop the stream so the next draw reseeds from the current pid."""
        self._random = None

    def draw(self, task_name: str) -> str | None:
        stream = self._random
        if stream is None:
            stream = self._random = random.Random(f"{self.seed}:{os.getpid()}")
        for kind in ("crash", "hang", "raise"):
            rate = self.rates.get(kind, 0.0)
            if rate and stream.random() < rate:
                return kind
        return None


class ScriptedFaults:
    """Programmatic injector for tests: a per-process script of fault kinds.

    Each dispatch consumes the next entry (``None`` = run cleanly); an
    exhausted script injects nothing.  Install before the pool forks so
    every worker inherits its own copy of the script.
    """

    def __init__(self, kinds: list[str | None]) -> None:
        self._kinds = list(kinds)

    def reset(self) -> None:
        return None

    def draw(self, task_name: str) -> str | None:
        if self._kinds:
            return self._kinds.pop(0)
        return None


_FAULTS: Any = None
_FAULTS_SOURCE: str | None = None


def install_faults(injector: Any) -> None:
    """Install a programmatic fault injector (survives pool re-forks)."""
    global _FAULTS, _FAULTS_SOURCE
    _FAULTS = injector
    _FAULTS_SOURCE = "manual"


def clear_faults() -> None:
    """Remove any installed fault injector (programmatic or env-derived)."""
    global _FAULTS, _FAULTS_SOURCE
    _FAULTS = None
    _FAULTS_SOURCE = None


def install_env_faults() -> None:
    """(Re)build the injector from ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED``."""
    global _FAULTS, _FAULTS_SOURCE
    from repro import config

    rates = config.faults_default()
    if rates:
        _FAULTS = FaultInjector(rates, seed=config.faults_seed_default())
        _FAULTS_SOURCE = "env"
    else:
        _FAULTS = None
        _FAULTS_SOURCE = None


def _apply_fault(kind: str, task_name: str) -> None:
    if kind == "crash":
        # simulate an OOM kill: no cleanup, no exception, no envelope
        os._exit(CRASH_EXIT_CODE)
    if kind == "hang":
        time.sleep(HANG_SECONDS)
        return
    raise InjectedFault(f"injected fault in task {task_name!r}")


def dispatch(task: tuple[str, Any]) -> Any:
    """Run one task against the installed state (pool ``map`` target)."""
    name, payload = task
    return _HANDLERS[name](_STATE, payload)


def run_local(state: dict[str, Any], tasks: list[tuple[str, Any]]) -> list[Any]:
    """Run tasks in-process (the serial backend and small-input fallback)."""
    return [_HANDLERS[name](state, payload) for name, payload in tasks]


def dispatch_timed(task: tuple[str, Any]) -> tuple[float, Any]:
    """Like :func:`dispatch`, returning ``(worker seconds, result)``.

    The elapsed time is measured inside the worker process, so the parent
    can separate genuine compute time from pickling/IPC overhead when it
    folds the timings into the metrics registry.  Timings never feed back
    into results — merged output stays byte-identical to the untimed path.
    """
    name, payload = task
    start = perf_counter()
    result = _HANDLERS[name](_STATE, payload)
    return perf_counter() - start, result


def run_local_timed(state: dict[str, Any],
                    tasks: list[tuple[str, Any]]) -> list[tuple[float, Any]]:
    """Run tasks in-process, timing each: ``[(seconds, result), ...]``."""
    timed = []
    for name, payload in tasks:
        start = perf_counter()
        result = _HANDLERS[name](state, payload)
        timed.append((perf_counter() - start, result))
    return timed


# -- CFD scan phase ---------------------------------------------------------


def _cfd_scan(state: dict[str, Any], payload: tuple[str, list[int]]) -> dict[str, Any]:
    """Scan one chunk: single-tuple violations + partial LHS groups.

    Returns ``singles`` as ``(pattern index, tid)`` pairs in tid-major
    order (the batch detector's emission order; the per-CFD detector
    re-partitions them by pattern) and ``groups`` as ``code key -> tids``
    with tids in chunk scan order.
    """
    spec_id, tids = payload
    spec = state[spec_id]
    patterns = spec["patterns"]
    single_pidxs = spec["single_pidxs"]

    singles: list[tuple[int, int]] = []
    if single_pidxs:
        tests = [(pidx, patterns[pidx]["lhs_tests"], patterns[pidx]["rhs_tests"])
                 for pidx in single_pidxs]
        for tid in tids:
            for pidx, lhs_tests, rhs_tests in tests:
                for codes, allowed in lhs_tests:
                    if codes[tid] not in allowed:
                        break
                else:
                    for codes, allowed in rhs_tests:
                        if codes[tid] not in allowed:
                            singles.append((pidx, tid))
                            break
    groups: dict[tuple[int, ...], list[int]] = {}
    if spec["group_pidxs"]:
        key_arrays = spec["key_arrays"]
        if len(key_arrays) == 1:
            # chunk view: one C-speed gather, then a scalar-keyed loop
            for tid, code in zip(tids, take(key_arrays[0], tids)):
                key = (code,)
                bucket = groups.get(key)
                if bucket is None:
                    groups[key] = [tid]
                else:
                    bucket.append(tid)
        else:
            views = [take(codes, tids) for codes in key_arrays]
            for i, tid in enumerate(tids):
                key = tuple(view[i] for view in views)
                bucket = groups.get(key)
                if bucket is None:
                    groups[key] = [tid]
                else:
                    bucket.append(tid)
    return {"singles": singles, "groups": groups}


# -- CFD group-check phase --------------------------------------------------


def _rhs_key(arrays: list[list[int]], tid: int) -> Any:
    if len(arrays) == 1:
        return arrays[0][tid]
    return tuple(codes[tid] for codes in arrays)


def _cfd_groups(state: dict[str, Any],
                payload: tuple[str, list[list[int]]]) -> list[dict[int, tuple]]:
    """Check merged groups against every variable-RHS pattern.

    Each group arrives as its full (cross-chunk) tid list in ascending
    order; the verdict per pattern is either a group-violation tid tuple
    or, under ``enumerate_pairs``, the RHS equivalence buckets the parent
    expands into pairs.
    """
    spec_id, groups = payload
    spec = state[spec_id]
    patterns = spec["patterns"]
    group_pidxs = spec["group_pidxs"]
    replicate_set = spec["kind"] == "cfd"
    enumerate_pairs = spec["enumerate_pairs"]

    results: list[dict[int, tuple]] = []
    for tids in groups:
        if replicate_set:
            # Rebuild the bucket exactly as HashIndex.rebuild would (ascending
            # insertion), so iteration order matches the sequential detector's.
            members: Any = set()
            for tid in tids:
                members.add(tid)
        else:
            members = tids  # the batch path iterates the sorted bucket
        verdicts: dict[int, tuple] = {}
        for pidx in group_pidxs:
            pattern = patterns[pidx]
            lhs_tests = pattern["lhs_tests"]
            if lhs_tests:
                matching = []
                for tid in members:
                    for codes, allowed in lhs_tests:
                        if codes[tid] not in allowed:
                            break
                    else:
                        matching.append(tid)
                if len(matching) < 2:
                    continue
            else:
                matching = list(members)
            arrays = pattern["variable_arrays"]
            if enumerate_pairs or replicate_set:
                by_rhs: dict[Any, list[int]] = {}
                for tid in matching:
                    key = _rhs_key(arrays, tid)
                    bucket = by_rhs.get(key)
                    if bucket is None:
                        by_rhs[key] = [tid]
                    else:
                        bucket.append(tid)
                if len(by_rhs) <= 1:
                    continue
                if enumerate_pairs:
                    verdicts[pidx] = ("p", list(by_rhs.values()))
                else:
                    verdicts[pidx] = ("g", tuple(sorted(matching)))
            else:
                first = _rhs_key(arrays, matching[0])
                if any(_rhs_key(arrays, tid) != first for tid in matching[1:]):
                    verdicts[pidx] = ("g", tuple(matching))
        results.append(verdicts)
    return results


# -- discovery partition phase ----------------------------------------------


def _partition_scan(state: dict[str, Any],
                    payload: tuple[str, tuple[int, ...], list[int]]) -> dict[Any, list[int]]:
    """Group one chunk's tids by their code key over the given positions.

    The partial groups (bare code keys for one position, code tuples
    otherwise; tids in chunk scan order) are stitched by the parent's
    :class:`~repro.engine.merge.GroupMerger` into exactly the
    first-occurrence-ordered groups a sequential
    :meth:`~repro.relational.columns.ColumnStore.partition_groups` scan
    produces.
    """
    spec_id, positions, tids = payload
    arrays = state[spec_id]["arrays"]
    groups: dict[Any, list[int]] = {}
    if len(positions) == 1:
        for tid, code in zip(tids, take(arrays[positions[0]], tids)):
            bucket = groups.get(code)
            if bucket is None:
                groups[code] = [tid]
            else:
                bucket.append(tid)
    else:
        views = [take(arrays[p], tids) for p in positions]
        for i, tid in enumerate(tids):
            key = tuple(view[i] for view in views)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [tid]
            else:
                bucket.append(tid)
    return groups


# -- SQL scan phase ----------------------------------------------------------

#: aggregate kind -> integer op code driving the scan loop (shared with
#: the parent-side finalizers, so partial-state shapes cannot drift).
AGGREGATE_OPS = {"count_star": 0, "count": 1, "count_distinct": 2,
                 "sum": 3, "avg": 3, "min": 4, "max": 5}


def initial_aggregate_state(kind: str) -> Any:
    """The partial-aggregate state before any tuple is folded in."""
    op = AGGREGATE_OPS[kind]
    if op <= 1:          # count_star | count
        return 0
    if op == 2:          # count_distinct
        return set()
    if op == 3:          # sum | avg
        return []
    return None          # min | max


def _sql_scan(state: dict[str, Any],
              payload: tuple[str, dict[str, Any], list[int]]) -> Any:
    """Filter one chunk by code-set membership, optionally group + aggregate.

    The query rides in the payload (the broadcast state holds only the
    relation's code arrays): ``filters`` are ``(position, allowed codes)``
    pairs, ``group`` is ``None`` for a plain scan (the result is the
    surviving tids, chunk order) or a tuple of positions (possibly empty —
    one global group), and ``aggs`` are the aggregate specs of
    :func:`repro.relational.sql.columnar.query_payload`.

    Grouped results map each code key to ``[first tid, state, ...]`` with
    one partial-aggregate state per spec:

    * ``count_star`` / ``count`` — an int (``count`` skips NULL codes);
    * ``count_distinct`` — the set of non-NULL codes seen;
    * ``sum`` / ``avg`` — the non-NULL codes in chunk scan order (the
      parent folds them in tuple order, so float accumulation is
      byte-identical to the sequential path for every chunk size);
    * ``min`` / ``max`` — the best ``(dictionary-order rank, code)``, ties
      keeping the first occurrence (the ranks array rides in the spec).

    :class:`~repro.engine.sql.AggregateMerger` combines these across
    chunks in chunk order.
    """
    spec_id, query, tids = payload
    arrays = state[spec_id]["arrays"]
    filters = [(arrays[position], allowed) for position, allowed in query["filters"]]
    if filters:
        survivors = []
        for tid in tids:
            for codes, allowed in filters:
                if codes[tid] not in allowed:
                    break
            else:
                survivors.append(tid)
    else:
        survivors = list(tids)
    group = query["group"]
    if group is None:
        return survivors

    # op codes keep the per-tuple loop on integer dispatch
    steps: list[tuple[int, Any, Any]] = []
    for spec in query["aggs"]:
        kind = spec[0]
        op = AGGREGATE_OPS[kind]
        if kind == "count_star":
            steps.append((op, None, None))
        elif op >= 4:  # min | max carry their ranks array
            steps.append((op, arrays[spec[1]], spec[2]))
        else:
            steps.append((op, arrays[spec[1]], None))
    key_arrays = [arrays[position] for position in group]
    single = len(key_arrays) == 1
    groups: dict[Any, list] = {}
    for tid in survivors:
        if single:
            key = key_arrays[0][tid]
        elif key_arrays:
            key = tuple(codes[tid] for codes in key_arrays)
        else:
            key = ()
        entry = groups.get(key)
        if entry is None:
            entry = [tid] + [initial_aggregate_state(spec[0])
                             for spec in query["aggs"]]
            groups[key] = entry
        for index, (op, codes, ranks) in enumerate(steps, start=1):
            if op == 0:
                entry[index] += 1
                continue
            code = codes[tid]
            if code == NULL_CODE:
                continue
            if op == 1:
                entry[index] += 1
            elif op == 2:
                entry[index].add(code)
            elif op == 3:
                entry[index].append(code)
            else:
                rank = ranks[code]
                best = entry[index]
                if best is None or (rank < best[0] if op == 4 else rank > best[0]):
                    entry[index] = (rank, code)
    return groups


# -- SQL join-probe phase -----------------------------------------------------


def _join_probe(state: dict[str, Any],
                payload: tuple[str, dict[str, Any], list[int]]) -> Any:
    """Probe one chunk of a hash join's probe side against bridged buckets.

    The broadcast state holds both relations' code arrays (``sides``,
    index 0 = left); the query payload carries everything else: the probe
    side, its push-down ``filters``, the join ``keys`` as ``(probe
    position, bridge translation)`` pairs, the build side's code-keyed
    ``buckets`` (NULL-free, tids ascending), and — for grouped probes —
    ``group`` keys and ``aggs`` specs tagged with their side.

    A probe code translates through the bridge into the build dictionary;
    NULL (0) and :data:`~repro.relational.columns.NO_PARTNER` (-1) can
    never equal a bucket key (buckets key codes >= 1), so misses need no
    special-casing.  Results by shape:

    * plain, ``probe_side == 0`` — joined ``(left tid, right tid)`` pairs
      in left-major order (probe scan order, bucket order within);
    * plain, ``probe_side == 1`` — ``build (left) tid -> [probe (right)
      tids]`` partial matches; the parent re-emits them in left scan
      order, restoring exactly the left-major pair order;
    * grouped (always ``probe_side == 0``, so SUM/AVG fold order and
      group first-occurrence order stay left-major) — ``sql_scan``-style
      partial groups whose representative is the first ``(left tid,
      right tid)`` pair, merged by
      :class:`~repro.engine.sql.AggregateMerger`.
    """
    spec_id, query, tids = payload
    sides = state[spec_id]["sides"]
    probe_side = query["probe_side"]
    arrays = sides[probe_side]
    filters = [(arrays[position], allowed)
               for position, allowed in query["filters"]]
    keys = [(arrays[position], translation)
            for position, translation in query["keys"]]
    buckets = query["buckets"]
    single = len(keys) == 1

    if filters:
        survivors = []
        for tid in tids:
            for codes, allowed in filters:
                if codes[tid] not in allowed:
                    break
            else:
                survivors.append(tid)
    else:
        survivors = tids

    def bucket_of(tid: int) -> list[int] | None:
        if single:
            codes, translation = keys[0]
            return buckets.get(translation[codes[tid]])
        key = []
        for codes, translation in keys:
            partner = translation[codes[tid]]
            if partner < 1:  # NULL or NO_PARTNER: no bucket can match
                return None
            key.append(partner)
        return buckets.get(tuple(key))

    group = query["group"]
    if group is None:
        if probe_side == 0:
            pairs: list[tuple[int, int]] = []
            for tid in survivors:
                bucket = bucket_of(tid)
                if bucket:
                    for build_tid in bucket:
                        pairs.append((tid, build_tid))
            return pairs
        matches: dict[int, list[int]] = {}
        for tid in survivors:
            bucket = bucket_of(tid)
            if bucket:
                for build_tid in bucket:
                    seen = matches.get(build_tid)
                    if seen is None:
                        matches[build_tid] = [tid]
                    else:
                        seen.append(tid)
        return matches

    # grouped: same op-code dispatch as _sql_scan, codes picked from the
    # (left tid, right tid) pair by each spec's side
    steps: list[tuple[int, int, Any, Any]] = []
    for spec in query["aggs"]:
        kind = spec[0]
        op = AGGREGATE_OPS[kind]
        if kind == "count_star":
            steps.append((op, 0, None, None))
        elif op >= 4:  # min | max carry their ranks array
            steps.append((op, spec[1], sides[spec[1]][spec[2]], spec[3]))
        else:
            steps.append((op, spec[1], sides[spec[1]][spec[2]], None))
    key_columns = [(side, sides[side][position]) for side, position in group]
    single_key = len(key_columns) == 1
    groups: dict[Any, list] = {}
    for tid in survivors:
        bucket = bucket_of(tid)
        if not bucket:
            continue
        for build_tid in bucket:
            pair = (tid, build_tid)
            if single_key:
                side, codes = key_columns[0]
                key = codes[pair[side]]
            elif key_columns:
                key = tuple(codes[pair[side]] for side, codes in key_columns)
            else:
                key = ()
            entry = groups.get(key)
            if entry is None:
                entry = [pair] + [initial_aggregate_state(spec[0])
                                  for spec in query["aggs"]]
                groups[key] = entry
            for index, (op, side, codes, ranks) in enumerate(steps, start=1):
                if op == 0:
                    entry[index] += 1
                    continue
                code = codes[pair[side]]
                if code == NULL_CODE:
                    continue
                if op == 1:
                    entry[index] += 1
                elif op == 2:
                    entry[index].add(code)
                elif op == 3:
                    entry[index].append(code)
                else:
                    rank = ranks[code]
                    best = entry[index]
                    if best is None or (rank < best[0] if op == 4 else rank > best[0]):
                        entry[index] = (rank, code)
    return groups


# -- SQL multiway-join phase --------------------------------------------------


def _gallop(values: list[int], target: int, lo: int, hi: int) -> int:
    """First index in ``values[lo:hi]`` (ascending) holding ``>= target``.

    Exponential probe then bisect — the standard leapfrog seek, sub-linear
    when the next match is near and ``O(log n)`` when it is far.
    """
    if lo >= hi or values[lo] >= target:
        return lo
    step = 1
    while lo + step < hi and values[lo + step] < target:
        step <<= 1
    return bisect_left(values, target, lo + (step >> 1) + 1, min(lo + step, hi))


def gallop_intersect(lists: list[list[int]]) -> list[int]:
    """Sorted intersection of ascending integer lists (leapfrog style).

    Starts from the shortest list and seeks into each other list with
    galloping search, so the cost tracks the smallest participant — the
    intersection step of the multiway join, shared by the parent (first
    variable, over whole relations) and the workers (deeper levels, over
    already-bound tid groups).
    """
    if not lists:
        return []
    ordered = sorted(lists, key=len)
    result = ordered[0]
    for other in ordered[1:]:
        if not result:
            break
        kept: list[int] = []
        lo, hi = 0, len(other)
        for value in result:
            lo = _gallop(other, value, lo, hi)
            if lo >= hi:
                break
            if other[lo] == value:
                kept.append(value)
                lo += 1
        result = kept
    return result


def multiway_group(arrays: list[list[int]], tids: list[int],
                   members: list[tuple[int, Any]]) -> dict[int, list[int]]:
    """Group *tids* by their shared-space code over one variable's members.

    ``members`` are ``(position, translation)`` pairs on one relation —
    the translation maps that column's codes into the variable's
    representative dictionary (``None`` when the column *is* the
    representative).  A tid only lands in a group when every member agrees
    on a code ``>= 1``: NULL (0) never equals anything and
    :data:`~repro.relational.columns.NO_PARTNER` (-1) marks values the
    representative dictionary lacks, so both drop out here, exactly as
    NULL keys drop out of hash-join buckets.  Tid lists stay ascending
    (scan order), which is what :func:`gallop_intersect` and the product
    emission rely on.
    """
    position, translation = members[0]
    codes = arrays[position]
    rest = members[1:]
    groups: dict[int, list[int]] = {}
    for tid in tids:
        code = codes[tid]
        if translation is not None:
            code = translation[code]
        if code < 1:
            continue
        agreed = True
        for other_position, other_translation in rest:
            other = arrays[other_position][tid]
            if other_translation is not None:
                other = other_translation[other]
            if other != code:
                agreed = False
                break
        if not agreed:
            continue
        bucket = groups.get(code)
        if bucket is None:
            groups[code] = [tid]
        else:
            bucket.append(tid)
    return groups


def _multiway_probe(state: dict[str, Any],
                    payload: tuple[str, dict[str, Any], list[int]]) -> Any:
    """Enumerate the join tuples of one chunk of first-variable candidates.

    The broadcast state holds every relation's code arrays (``tables``,
    FROM order); the query payload carries the compiled shape: ``levels``
    is the chosen variable order (per level: the participating tables with
    their member ``(position, translation)`` pairs), ``base`` the filtered
    live tids per table (``None`` for tables already grouped at level 0),
    and ``level_one`` the parent-built ``code -> tids`` groups of the
    first variable's participants.

    For each candidate code the worker binds the first variable, then
    recurses the remaining levels generic-join style: re-group each
    participating table's *currently bound* tids by the level's variable
    (:func:`multiway_group`), leapfrog-intersect the present codes
    (:func:`gallop_intersect`), and descend per candidate.  A fully bound
    assignment emits the cartesian product of the per-table tid lists in
    FROM order.  The tuples are sorted before returning, so the parent's
    merge of all chunks is exactly the ascending ``(tid_1, .., tid_N)``
    enumeration the row path produces.

    Returns ``(sorted tid tuples, per-level candidate counts)`` — the
    counts feed the obs histogram and EXPLAIN's per-level report.
    """
    spec_id, query, candidates = payload
    tables = state[spec_id]["tables"]
    levels = query["levels"]
    base = query["base"]
    level_one = query["level_one"]
    depth = len(levels)
    counts = [0] * depth
    results: list[tuple[int, ...]] = []

    def descend(level: int, per_table: list[list[int]]) -> None:
        if level == depth:
            results.extend(product(*per_table))
            return
        maps: list[tuple[int, dict[int, list[int]]]] = []
        for table, members in levels[level]:
            groups = multiway_group(tables[table], per_table[table], members)
            if not groups:
                return
            maps.append((table, groups))
        for code in gallop_intersect([sorted(groups) for _, groups in maps]):
            counts[level] += 1
            bound = list(per_table)
            for table, groups in maps:
                bound[table] = groups[code]
            descend(level + 1, bound)

    first_tables = [table for table, _ in levels[0]]
    for code in candidates:
        counts[0] += 1
        per_table = list(base)
        for table in first_tables:
            per_table[table] = level_one[table][code]
        descend(1, per_table)
    results.sort()
    return results, counts


def _multiway_fold(state: dict[str, Any],
                   payload: tuple[str, dict[str, Any], list[tuple[int, ...]]]) -> Any:
    """Group + aggregate one contiguous slice of sorted multiway join tuples.

    The slices arrive in global tuple order (the parent chunks the sorted
    enumeration of :func:`_multiway_probe`), so chunk-order merging by
    :class:`~repro.engine.sql.AggregateMerger` reproduces the row path's
    group first-occurrence order and float fold order exactly.  Same
    op-code dispatch as :func:`_join_probe`'s grouped branch, with each
    spec's ``side`` indexing into the N broadcast tables instead of two.
    """
    spec_id, query, combos = payload
    tables = state[spec_id]["tables"]
    steps: list[tuple[int, int, Any, Any]] = []
    for spec in query["aggs"]:
        kind = spec[0]
        op = AGGREGATE_OPS[kind]
        if kind == "count_star":
            steps.append((op, 0, None, None))
        elif op >= 4:  # min | max carry their ranks array
            steps.append((op, spec[1], tables[spec[1]][spec[2]], spec[3]))
        else:
            steps.append((op, spec[1], tables[spec[1]][spec[2]], None))
    key_columns = [(side, tables[side][position])
                   for side, position in query["group"]]
    single_key = len(key_columns) == 1
    groups: dict[Any, list] = {}
    for combo in combos:
        if single_key:
            side, codes = key_columns[0]
            key = codes[combo[side]]
        elif key_columns:
            key = tuple(codes[combo[side]] for side, codes in key_columns)
        else:
            key = ()
        entry = groups.get(key)
        if entry is None:
            entry = [combo] + [initial_aggregate_state(spec[0])
                               for spec in query["aggs"]]
            groups[key] = entry
        for index, (op, side, codes, ranks) in enumerate(steps, start=1):
            if op == 0:
                entry[index] += 1
                continue
            code = codes[combo[side]]
            if code == NULL_CODE:
                continue
            if op == 1:
                entry[index] += 1
            elif op == 2:
                entry[index].add(code)
            elif op == 3:
                entry[index].append(code)
            else:
                rank = ranks[code]
                best = entry[index]
                if best is None or (rank < best[0] if op == 4 else rank > best[0]):
                    entry[index] = (rank, code)
    return groups


# -- SQL factorised (semiring) aggregate phase --------------------------------


def initial_factorised_state(spec: tuple) -> Any:
    """The factorised partial state before any block is folded in.

    * ``count_star`` / ``count`` — an exact integer;
    * ``count_distinct`` and DISTINCT ``sum`` / ``avg`` — a code set
      (multiplicity-free, so the tuple product never matters);
    * non-DISTINCT ``sum`` / ``avg`` — an exact ``[total, count]`` pair;
    * ``min`` / ``max`` — the best ``(rank, code)`` or ``None``.
    """
    kind = spec[0]
    if kind in ("count_star", "count"):
        return 0
    if kind == "count_distinct":
        return set()
    if kind in ("sum", "avg"):
        return set() if spec[3] else [0, 0]
    return None  # min | max


def _factorised_fold(state: dict[str, Any],
                     payload: tuple[str, dict[str, Any], list]) -> Any:
    """Fold one chunk of a grouped join without enumerating its tuples.

    Dispatches on the query's ``kind``: ``"join"`` folds probe tids
    against pre-aggregated hash-bucket blocks
    (:func:`repro.relational.sql.columnar.build_factorised_buckets`),
    ``"multi"`` descends the leapfrog levels like :func:`_multiway_probe`
    and folds each fully bound block by semiring multiplication.  Both
    return ``(groups, partials, tuples, counts)``: ``sql_scan``-shaped
    partial groups (the representative is the enumerated path's first
    tuple), the number of semiring folds performed, the number of
    enumerated tuples those folds replaced, and the per-level candidate
    counts (``None`` for the join shape).
    """
    spec_id, query, items = payload
    if query["kind"] == "join":
        return _factorised_join_fold(state[spec_id]["sides"], query, items)
    return _factorised_multi_fold(state[spec_id]["tables"], query, items)


def _factorised_join_fold(sides: tuple, query: dict[str, Any],
                          tids: list[int]) -> Any:
    """Probe one chunk against blocks of pre-folded build-side partials.

    Matches :func:`_join_probe`'s grouped branch pairing for pairing —
    same probe filters, same bridge translation, same NULL / NO_PARTNER
    misses — but each bucket *block* (one build-side group-key
    projection, scan order) combines in O(specs): COUNT(*) adds the
    block size, probe-side folds scale by it, build-side folds reuse the
    block's pre-aggregated partial.  Group keys assemble from probe
    codes and the block's part codes, so first-occurrence order and the
    first-pair representative match the enumerated probe exactly.
    """
    arrays = sides[0]  # factorised probes always walk the left side
    filters = [(arrays[position], allowed)
               for position, allowed in query["filters"]]
    keys = [(arrays[position], translation)
            for position, translation in query["keys"]]
    buckets = query["buckets"]
    single = len(keys) == 1

    if filters:
        survivors = []
        for tid in tids:
            for codes, allowed in filters:
                if codes[tid] not in allowed:
                    break
            else:
                survivors.append(tid)
    else:
        survivors = tids

    def bucket_of(tid: int) -> list | None:
        if single:
            codes, translation = keys[0]
            return buckets.get(translation[codes[tid]])
        key = []
        for codes, translation in keys:
            partner = translation[codes[tid]]
            if partner < 1:  # NULL or NO_PARTNER: no bucket can match
                return None
            key.append(partner)
        return buckets.get(tuple(key))

    # op codes per spec: probe-side folds read the tid's code, build-side
    # folds combine the block's pre-aggregated partial.
    aggs = query["aggs"]
    steps: list[tuple[int, Any, Any]] = []
    for spec in aggs:
        kind = spec[0]
        if kind == "count_star":
            steps.append((0, None, None))
        elif spec[1] == 0:  # probe (left) side
            codes = arrays[spec[2]]
            if kind == "count":
                steps.append((1, codes, None))
            elif kind == "count_distinct" or (kind in ("sum", "avg") and spec[3]):
                steps.append((3, codes, None))
            elif kind in ("sum", "avg"):
                steps.append((5, codes, spec[4]))
            else:
                steps.append((7 if kind == "min" else 8, codes, spec[3]))
        else:  # build (right) side: combine the pre-folded partial
            if kind == "count":
                steps.append((2, None, None))
            elif kind == "count_distinct" or (kind in ("sum", "avg") and spec[3]):
                steps.append((4, None, None))
            elif kind in ("sum", "avg"):
                steps.append((6, None, None))
            else:
                steps.append((9 if kind == "min" else 10, None, None))

    group = query["group"]
    left_keys = []    # (key slot, probe code array)
    right_slots = []  # (key slot, offset into the block's part codes)
    offset = 0
    for slot, (side, position) in enumerate(group):
        if side == 0:
            left_keys.append((slot, arrays[position]))
        else:
            right_slots.append((slot, offset))
            offset += 1
    single_key = len(group) == 1
    key_codes = [0] * len(group)

    groups: dict[Any, list] = {}
    partials = 0
    tuples = 0
    for tid in survivors:
        blocks = bucket_of(tid)
        if not blocks:
            continue
        for slot, codes in left_keys:
            key_codes[slot] = codes[tid]
        for part, first_tid, size, pres in blocks:
            for slot, position in right_slots:
                key_codes[slot] = part[position]
            if single_key:
                key: Any = key_codes[0]
            else:
                key = tuple(key_codes)
            partials += 1
            tuples += size
            entry = groups.get(key)
            if entry is None:
                entry = [(tid, first_tid)] + [initial_factorised_state(spec)
                                              for spec in aggs]
                groups[key] = entry
            for index, (op, codes, aux) in enumerate(steps, start=1):
                if op == 0:          # COUNT(*): the whole block matches
                    entry[index] += size
                    continue
                if op == 2:          # build-side COUNT: pre-counted non-NULLs
                    entry[index] += pres[index - 1]
                    continue
                if op == 4:          # build-side code set: union (pres read-only)
                    entry[index] |= pres[index - 1]
                    continue
                if op == 6:          # build-side [total, count]: elementwise add
                    pre = pres[index - 1]
                    pair_state = entry[index]
                    pair_state[0] += pre[0]
                    pair_state[1] += pre[1]
                    continue
                if op >= 9:          # build-side MIN | MAX: best rank wins
                    pre = pres[index - 1]
                    if pre is not None:
                        best = entry[index]
                        if best is None or (pre[0] < best[0] if op == 9
                                            else pre[0] > best[0]):
                            entry[index] = pre
                    continue
                code = codes[tid]
                if code == NULL_CODE:
                    continue
                if op == 1:          # probe-side COUNT: size copies of the code
                    entry[index] += size
                elif op == 3:        # probe-side code set
                    entry[index].add(code)
                elif op == 5:        # probe-side SUM/AVG: value × multiplicity
                    pair_state = entry[index]
                    pair_state[0] += aux[code] * size
                    pair_state[1] += size
                else:                # 7 min | 8 max on the probe side
                    rank = aux[code]
                    best = entry[index]
                    if best is None or (rank < best[0] if op == 7 else rank > best[0]):
                        entry[index] = (rank, code)
    return groups, partials, tuples, None


def _factorised_multi_fold(tables: tuple, query: dict[str, Any],
                           candidates: list[int]) -> Any:
    """Descend one chunk of first-variable candidates, folding — not
    enumerating — every fully bound block.

    The descent is :func:`_multiway_probe` move for move (same grouping,
    same leapfrog intersection, same per-level counts); only the full
    depth differs.  There each side holds a bound tid list and the block
    contributes its cartesian product; here each side's list is
    partitioned by its group-key codes, per-part partial aggregates are
    folded once, and every cross-side part combination contributes by
    semiring multiplication: COUNT(*) adds the product of part sizes,
    per-side folds scale by the co-sides' multiplicity (an exact
    integer), code sets union, MIN/MAX compare ranks.  The group
    representative is the combination's per-side minimum tids — exactly
    the lexicographically first tuple of its cartesian product, i.e. the
    enumerated path's first occurrence — min-merged per group so the
    parent can re-sort groups into the sorted enumeration's
    first-occurrence order.
    """
    levels = query["levels"]
    base = query["base"]
    level_one = query["level_one"]
    depth = len(levels)
    counts = [0] * depth
    aggs = query["aggs"]
    group = query["group"]
    table_count = len(tables)

    # group-key code arrays per side; key_slots maps each output key slot
    # to (side, offset into that side's part-key tuple).
    side_key_arrays: list[list] = [[] for _ in range(table_count)]
    key_slots: list[tuple[int, int]] = []
    for side, position in group:
        key_slots.append((side, len(side_key_arrays[side])))
        side_key_arrays[side].append(tables[side][position])
    single_key = len(group) == 1

    # per-side fold steps: (spec slot, mode, codes, ranks-or-values);
    # combine modes per spec: how a part's stat enters the group entry.
    side_steps: list[list[tuple[int, int, Any, Any]]] = \
        [[] for _ in range(table_count)]
    combines: list[tuple[int, int]] = []  # (mode, side) per spec
    for index, spec in enumerate(aggs):
        kind = spec[0]
        if kind == "count_star":
            combines.append((0, 0))
            continue
        side = spec[1]
        codes = tables[side][spec[2]]
        if kind == "count":
            side_steps[side].append((index, 0, codes, None))
            combines.append((1, side))
        elif kind == "count_distinct" or (kind in ("sum", "avg") and spec[3]):
            side_steps[side].append((index, 1, codes, None))
            combines.append((2, side))
        elif kind in ("sum", "avg"):
            side_steps[side].append((index, 2, codes, spec[4]))
            combines.append((3, side))
        else:
            side_steps[side].append((index, 3 if kind == "min" else 4,
                                     codes, spec[3]))
            combines.append((4 if kind == "min" else 5, side))

    groups: dict[Any, list] = {}
    partials = 0
    tuples = 0

    def fold_block(per_table: list[list[int]]) -> None:
        nonlocal partials, tuples
        # partition each side by its group-key codes (insertion order =
        # that side's first-occurrence order); sides without group keys
        # stay one part.  Tid lists are ascending, so part[1][0] is the
        # part's minimum tid.
        parts_per_side: list[list[tuple[tuple, list[int]]]] = []
        stats_per_side: list[list[dict[int, Any]]] = []
        for side in range(table_count):
            tids = per_table[side]
            key_arrays = side_key_arrays[side]
            if key_arrays:
                parts: dict[tuple, list[int]] = {}
                for tid in tids:
                    part_key = tuple(codes[tid] for codes in key_arrays)
                    bucket = parts.get(part_key)
                    if bucket is None:
                        parts[part_key] = [tid]
                    else:
                        bucket.append(tid)
                part_list = list(parts.items())
            else:
                part_list = [((), tids)] if tids else []
            steps = side_steps[side]
            side_stats: list[dict[int, Any]] = []
            for _, part_tids in part_list:
                stats: dict[int, Any] = {}
                for index, mode, codes, aux in steps:
                    if mode == 0:    # COUNT: non-NULLs in the part
                        stat: Any = 0
                        for tid in part_tids:
                            if codes[tid] != NULL_CODE:
                                stat += 1
                    elif mode == 1:  # code set
                        stat = set()
                        for tid in part_tids:
                            code = codes[tid]
                            if code != NULL_CODE:
                                stat.add(code)
                    elif mode == 2:  # exact [total, count]
                        stat = [0, 0]
                        for tid in part_tids:
                            code = codes[tid]
                            if code != NULL_CODE:
                                stat[0] += aux[code]
                                stat[1] += 1
                    else:            # 3 min | 4 max
                        stat = None
                        for tid in part_tids:
                            code = codes[tid]
                            if code == NULL_CODE:
                                continue
                            rank = aux[code]
                            if stat is None or (rank < stat[0] if mode == 3
                                                else rank > stat[0]):
                                stat = (rank, code)
                    stats[index] = stat
                side_stats.append(stats)
            parts_per_side.append(part_list)
            stats_per_side.append(side_stats)

        for choice in product(*(range(len(part_list))
                                for part_list in parts_per_side)):
            sizes = [len(parts_per_side[side][pick][1])
                     for side, pick in enumerate(choice)]
            multiplier = 1
            for size in sizes:
                multiplier *= size
            partials += 1
            tuples += multiplier
            if single_key:
                side, offset = key_slots[0]
                key: Any = parts_per_side[side][choice[side]][0][offset]
            elif key_slots:
                key = tuple(parts_per_side[side][choice[side]][0][offset]
                            for side, offset in key_slots)
            else:
                key = ()
            representative = tuple(parts_per_side[side][pick][1][0]
                                   for side, pick in enumerate(choice))
            entry = groups.get(key)
            if entry is None:
                entry = [representative] + [initial_factorised_state(spec)
                                            for spec in aggs]
                groups[key] = entry
            elif representative < entry[0]:
                entry[0] = representative
            for index, (mode, side) in enumerate(combines, start=1):
                if mode == 0:        # COUNT(*): the whole block
                    entry[index] += multiplier
                    continue
                stat = stats_per_side[side][choice[side]][index - 1]
                if mode == 1:        # COUNT: scale by co-sides' multiplicity
                    entry[index] += stat * (multiplier // sizes[side])
                elif mode == 2:      # code set: union
                    entry[index] |= stat
                elif mode == 3:      # [total, count] × co-sides' multiplicity
                    scale = multiplier // sizes[side]
                    pair_state = entry[index]
                    pair_state[0] += stat[0] * scale
                    pair_state[1] += stat[1] * scale
                elif stat is not None:  # 4 min | 5 max
                    best = entry[index]
                    if best is None or (stat[0] < best[0] if mode == 4
                                        else stat[0] > best[0]):
                        entry[index] = stat

    def descend(level: int, per_table: list[list[int]]) -> None:
        if level == depth:
            fold_block(per_table)
            return
        maps: list[tuple[int, dict[int, list[int]]]] = []
        for table, members in levels[level]:
            bound = multiway_group(tables[table], per_table[table], members)
            if not bound:
                return
            maps.append((table, bound))
        for code in gallop_intersect([sorted(bound) for _, bound in maps]):
            counts[level] += 1
            next_tids = list(per_table)
            for table, bound in maps:
                next_tids[table] = bound[code]
            descend(level + 1, next_tids)

    first_tables = [table for table, _ in levels[0]]
    for code in candidates:
        counts[0] += 1
        per_table = list(base)
        for table in first_tables:
            per_table[table] = level_one[table][code]
        descend(1, per_table)
    return groups, partials, tuples, counts


# -- discovery subset-refinement phase ---------------------------------------


def _subset_check(state: dict[str, Any],
                  payload: tuple[str, tuple[int, ...], int, list[list[int]]]) -> list[bool]:
    """Whether ``LHS → RHS`` holds on each conditioning subset of tids.

    Replicates ``CFDDiscovery._holds_on_subset`` operation by operation:
    within one subset, every LHS code key must map to a single RHS code.
    """
    spec_id, lhs_positions, rhs_position, groups = payload
    arrays = state[spec_id]["arrays"]
    lhs_arrays = [arrays[position] for position in lhs_positions]
    rhs_codes = arrays[rhs_position]
    single = len(lhs_arrays) == 1
    results: list[bool] = []
    for tids in groups:
        seen: dict[Any, int] = {}
        holds = True
        if single:
            codes = lhs_arrays[0]
            for tid in tids:
                rhs_code = rhs_codes[tid]
                if seen.setdefault(codes[tid], rhs_code) != rhs_code:
                    holds = False
                    break
        else:
            for tid in tids:
                key = tuple(codes[tid] for codes in lhs_arrays)
                rhs_code = rhs_codes[tid]
                if seen.setdefault(key, rhs_code) != rhs_code:
                    holds = False
                    break
        results.append(holds)
    return results


# -- CIND phases ------------------------------------------------------------


def _cind_rhs(state: dict[str, Any], payload: tuple[str, list[int]]) -> set[tuple[int, ...]]:
    """Collect the qualifying RHS correspondence keys (canonical code tuples)."""
    spec_id, tids = payload
    spec = state[spec_id]
    tests = spec["tests"]
    key_arrays = spec["key_arrays"]
    key_bridges = spec["key_bridges"]
    keys: set[tuple[int, ...]] = set()
    for tid in tids:
        for codes, allowed in tests:
            if codes[tid] not in allowed:
                break
        else:
            key_codes = [codes[tid] for codes in key_arrays]
            if NULL_CODE not in key_codes:
                keys.add(tuple(bridge[code]
                               for bridge, code in zip(key_bridges, key_codes)))
    return keys


def _cind_lhs(state: dict[str, Any],
              payload: tuple[str, list[int], frozenset]) -> list[int]:
    """Anti-join one LHS chunk against the canonical RHS key set.

    The spec's bridges translate LHS codes into canonical RHS codes;
    untranslatable codes come through as ``NO_PARTNER``, which can never
    appear in the key set, so the plain membership test covers them.
    """
    spec_id, tids, right_keys = payload
    spec = state[spec_id]
    tests = spec["tests"]
    key_arrays = spec["key_arrays"]
    key_bridges = spec["key_bridges"]
    violating: list[int] = []
    for tid in tids:
        for codes, allowed in tests:
            if codes[tid] not in allowed:
                break
        else:
            key_codes = [codes[tid] for codes in key_arrays]
            if NULL_CODE in key_codes:
                violating.append(tid)
                continue
            key = tuple(bridge[code]
                        for bridge, code in zip(key_bridges, key_codes))
            if key not in right_keys:
                violating.append(tid)
    return violating


_HANDLERS = {
    "cfd_scan": _cfd_scan,
    "cfd_groups": _cfd_groups,
    "cind_rhs": _cind_rhs,
    "cind_lhs": _cind_lhs,
    "factorised_fold": _factorised_fold,
    "join_probe": _join_probe,
    "multiway_fold": _multiway_fold,
    "multiway_probe": _multiway_probe,
    "partition_scan": _partition_scan,
    "sql_scan": _sql_scan,
    "subset_check": _subset_check,
}
