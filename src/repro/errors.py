"""Exception hierarchy shared across the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can distinguish library errors from
programming mistakes with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation schema is malformed or an attribute does not exist."""


class TypeMismatchError(ReproError):
    """A value does not conform to the declared attribute type."""


class RelationError(ReproError):
    """Invalid operation on a relation (unknown tuple id, arity mismatch...)."""


class CatalogError(ReproError):
    """A database catalog lookup failed (unknown or duplicate relation)."""


class SQLSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class SQLExecutionError(ReproError):
    """A parsed SQL statement could not be executed."""


class EngineError(ReproError):
    """The chunked execution engine failed to produce a coherent result.

    Raised by the parent side of :mod:`repro.engine` — a task/result
    count mismatch while merging, or (with the serial fallback disabled)
    a task that kept failing after every retry.  The subclasses carry the
    structured failure context of one supervised task.
    """

    def __init__(self, message: str, task: str | None = None,
                 payload_summary: str | None = None, attempts: int = 0) -> None:
        super().__init__(message)
        #: worker handler name of the failing task (``None`` for merge errors).
        self.task = task
        #: compact, code-free description of the task's chunk payload.
        self.payload_summary = payload_summary
        #: how many times the task was attempted before giving up.
        self.attempts = attempts


class WorkerCrashError(EngineError):
    """A worker process died (or kept failing) while running a task.

    Covers hard exits (OOM kills, ``os._exit``), broken pool pipes and
    tasks whose in-worker exception survived every retry.
    """


class TaskTimeoutError(EngineError):
    """A supervised task exceeded the per-task timeout (hung worker)."""


class ConstraintError(ReproError):
    """A constraint definition is malformed."""


class ConstraintParseError(ConstraintError):
    """The textual form of a constraint could not be parsed."""


class InconsistentConstraintsError(ConstraintError):
    """A set of constraints has no non-empty satisfying instance."""


class RepairError(ReproError):
    """Repairing failed (e.g. the constraint set is unsatisfiable)."""


class DiscoveryError(ReproError):
    """Constraint discovery was given invalid parameters."""


class MatchingError(ReproError):
    """Record matching was configured incorrectly."""


class CQAError(ReproError):
    """Consistent query answering failed."""
