"""Exception hierarchy shared across the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can distinguish library errors from
programming mistakes with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation schema is malformed or an attribute does not exist."""


class TypeMismatchError(ReproError):
    """A value does not conform to the declared attribute type."""


class RelationError(ReproError):
    """Invalid operation on a relation (unknown tuple id, arity mismatch...)."""


class CatalogError(ReproError):
    """A database catalog lookup failed (unknown or duplicate relation)."""


class SQLSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class SQLExecutionError(ReproError):
    """A parsed SQL statement could not be executed."""


class ConstraintError(ReproError):
    """A constraint definition is malformed."""


class ConstraintParseError(ConstraintError):
    """The textual form of a constraint could not be parsed."""


class InconsistentConstraintsError(ConstraintError):
    """A set of constraints has no non-empty satisfying instance."""


class RepairError(ReproError):
    """Repairing failed (e.g. the constraint set is unsatisfiable)."""


class DiscoveryError(ReproError):
    """Constraint discovery was given invalid parameters."""


class MatchingError(ReproError):
    """Record matching was configured incorrectly."""


class CQAError(ReproError):
    """Consistent query answering failed."""
