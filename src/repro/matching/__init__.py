"""Object identification (record matching) with relative candidate keys.

Section 4 of the tutorial extends constraints with *similarity*: matching
rules state which attribute comparisons (equality or ``≈``) suffice to
conclude that two records refer to the same real-world entity, and
**relative candidate keys** (RCKs) are the minimal comparison vectors
deduced from those rules.  This package provides:

* string similarity operators (:mod:`repro.matching.similarity`),
* matching rules over a pair of relations (:mod:`repro.matching.rules`),
* relative candidate keys and their deduction from rules
  (:mod:`repro.matching.rck`, :mod:`repro.matching.derivation`),
* a blocking record matcher applying RCKs to two relations
  (:mod:`repro.matching.matcher`), and
* match-quality evaluation against ground truth
  (:mod:`repro.matching.evaluation`).
"""

from repro.matching.similarity import (
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    normalized_edit_similarity,
    qgram_jaccard_similarity,
    similarity,
    token_jaccard_similarity,
)
from repro.matching.rules import Comparator, MatchingRule
from repro.matching.rck import RelativeCandidateKey
from repro.matching.derivation import derive_rcks
from repro.matching.matcher import MatchDecision, RecordMatcher
from repro.matching.evaluation import MatchQuality, evaluate_matching

__all__ = [
    "Comparator",
    "MatchingRule",
    "RelativeCandidateKey",
    "derive_rcks",
    "RecordMatcher",
    "MatchDecision",
    "MatchQuality",
    "evaluate_matching",
    "similarity",
    "levenshtein_distance",
    "normalized_edit_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "qgram_jaccard_similarity",
    "token_jaccard_similarity",
]
