"""Deduction of relative candidate keys from matching rules.

Given matching rules such as the tutorial's

    (a) if phn = phn'                      then addr ⇌ addr'
    (b) if email = email'                  then (fn, ln) ⇌ (fn, ln)
    (c) if ln = ln', addr = addr', fn ≈ fn' then Y ⇌ Y'

one can *deduce* comparison vectors that transitively entail a match on
the full target list ``Y`` — the derived RCKs ``rck1`` and ``rck2`` of the
tutorial.  The benefit: true matches can be found even when the attributes
of one particular rule are dirty, because a different derived key applies.

The deduction implemented here is a closure computation:

1. a *candidate premise* (a set of comparators) is asserted;
2. attribute pairs concluded to match are accumulated to a fixpoint — a
   rule fires when each of its premise comparisons is entailed either by a
   candidate comparator on the same attribute pair that is at least as
   strong (``=`` entails ``≈``) or by an already-concluded match (a
   concluded match behaves like equality);
3. the candidate is an RCK when the fixpoint covers every pair of the
   target list.

Candidates are drawn from the comparators appearing in rule premises, and
only minimal ones (no entailing proper subset) are kept.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.errors import MatchingError
from repro.matching.rck import RelativeCandidateKey
from repro.matching.rules import Comparator, MatchingRule


def _entails(candidate: Comparator, requirement: Comparator) -> bool:
    """Whether asserting *candidate* satisfies the premise comparison *requirement*."""
    if (candidate.left_attribute, candidate.right_attribute) != (
            requirement.left_attribute, requirement.right_attribute):
        return False
    if requirement.is_similarity:
        return True  # both '=' and '≈' assertions satisfy an '≈' requirement
    return not candidate.is_similarity  # '=' requirements need an '=' assertion


def concluded_matches(candidate: Iterable[Comparator],
                      rules: Sequence[MatchingRule]) -> set[tuple[str, str]]:
    """The fixpoint of attribute pairs concluded to match from *candidate*."""
    candidate = list(candidate)
    matched: set[tuple[str, str]] = set()
    changed = True
    while changed:
        changed = False
        for rule in rules:
            if all(self_entailed(requirement, candidate, matched)
                   for requirement in rule.comparators):
                for pair in rule.concluded_pairs():
                    if pair not in matched:
                        matched.add(pair)
                        changed = True
    return matched


def self_entailed(requirement: Comparator, candidate: Sequence[Comparator],
                  matched: set[tuple[str, str]]) -> bool:
    """Whether one premise comparison is satisfied by the candidate or by a derived match."""
    pair = (requirement.left_attribute, requirement.right_attribute)
    if pair in matched:
        return True  # a concluded match is as good as equality
    return any(_entails(asserted, requirement) for asserted in candidate)


def entails_target(candidate: Iterable[Comparator], rules: Sequence[MatchingRule],
                   target_pairs: Sequence[tuple[str, str]]) -> bool:
    """Whether asserting *candidate* lets the rules conclude every target pair."""
    matched = concluded_matches(candidate, rules)
    candidate_pairs = {(c.left_attribute, c.right_attribute)
                       for c in candidate if not c.is_similarity}
    return all(pair in matched or pair in candidate_pairs for pair in target_pairs)


def derive_rcks(rules: Sequence[MatchingRule], target: Sequence[str],
                right_target: Sequence[str] | None = None,
                max_size: int = 4) -> list[RelativeCandidateKey]:
    """Derive minimal RCKs relative to *target* from *rules*.

    ``target`` / ``right_target`` are the attribute lists ``Y`` / ``Y'``
    (``right_target`` defaults to ``target``).  Candidates up to
    *max_size* comparators are considered; the result keeps only minimal
    keys and is sorted by arity (shorter keys first).
    """
    if not rules:
        raise MatchingError("derive_rcks needs at least one matching rule")
    left_target = tuple(a.lower() for a in target)
    resolved_right = tuple(a.lower() for a in (right_target or target))
    if len(left_target) != len(resolved_right):
        raise MatchingError("target lists must have the same length")
    target_pairs = list(zip(left_target, resolved_right))

    # candidate pool: every premise comparator (deduplicated)
    pool: list[Comparator] = []
    seen: set[tuple] = set()
    for rule in rules:
        for comparator in rule.comparators:
            key = (comparator.left_attribute, comparator.right_attribute, comparator.operator)
            if key not in seen:
                seen.add(key)
                pool.append(comparator)

    found: list[RelativeCandidateKey] = []
    for size in range(1, min(max_size, len(pool)) + 1):
        for combination in itertools.combinations(pool, size):
            attribute_pairs = [(c.left_attribute, c.right_attribute) for c in combination]
            if len(set(attribute_pairs)) != len(attribute_pairs):
                continue  # two comparators on the same pair are never minimal
            if not entails_target(combination, rules, target_pairs):
                continue
            candidate = RelativeCandidateKey(tuple(combination), left_target, resolved_right)
            if any(existing.subsumes(candidate) for existing in found):
                continue  # a smaller/weaker key already covers this one
            found.append(candidate)
    found.sort(key=lambda rck: (rck.arity(), repr(rck)))
    for index, rck in enumerate(found, start=1):
        object.__setattr__(rck, "name", f"rck{index}")
    return found
