"""Match-quality evaluation against ground truth."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass
class MatchQuality:
    """Precision / recall / F1 of a set of predicted matches."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }

    def __repr__(self) -> str:
        return (f"MatchQuality(precision={self.precision:.3f}, recall={self.recall:.3f}, "
                f"f1={self.f1:.3f})")


def evaluate_matching(predicted: Iterable[tuple[int, int]],
                      truth: Iterable[tuple[int, int]]) -> MatchQuality:
    """Compare predicted (left_tid, right_tid) pairs against the true pairs."""
    predicted_set = set(predicted)
    truth_set = set(truth)
    true_positives = len(predicted_set & truth_set)
    return MatchQuality(
        true_positives=true_positives,
        false_positives=len(predicted_set - truth_set),
        false_negatives=len(truth_set - predicted_set),
    )
