"""Record matching across two relations using relative candidate keys.

:class:`RecordMatcher` takes two relations (e.g. ``card`` and ``billing``)
and a set of RCKs; a pair of tuples is declared a match when *any* RCK's
comparisons all hold.  Because comparing every pair is quadratic, the
matcher supports **blocking**: candidate pairs are restricted to tuples
sharing a blocking key (e.g. the same last name or the same zip code),
which is the standard technique in the record-linkage literature and the
ablation reported by experiment E10.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import MatchingError
from repro.matching.rck import RelativeCandidateKey
from repro.relational.relation import Relation
from repro.relational.types import is_null


@dataclass(frozen=True)
class MatchDecision:
    """One matched pair of tuples and the key that established it."""

    left_tid: int
    right_tid: int
    rck: RelativeCandidateKey

    @property
    def pair(self) -> tuple[int, int]:
        return (self.left_tid, self.right_tid)


class RecordMatcher:
    """Applies RCKs to find matching tuple pairs across two relations."""

    def __init__(self, left: Relation, right: Relation,
                 rcks: Sequence[RelativeCandidateKey],
                 blocking: tuple[str, str] | None = None) -> None:
        if not rcks:
            raise MatchingError("RecordMatcher needs at least one RCK")
        for rck in rcks:
            for left_attr, right_attr in rck.attribute_pairs():
                if not left.schema.has_attribute(left_attr):
                    raise MatchingError(
                        f"RCK {rck} uses unknown attribute {left_attr!r} of {left.name!r}")
                if not right.schema.has_attribute(right_attr):
                    raise MatchingError(
                        f"RCK {rck} uses unknown attribute {right_attr!r} of {right.name!r}")
        if blocking is not None:
            left_block, right_block = blocking
            if not left.schema.has_attribute(left_block) or \
                    not right.schema.has_attribute(right_block):
                raise MatchingError(f"blocking attributes {blocking!r} do not exist")
        self._left = left
        self._right = right
        self._rcks = list(rcks)
        self._blocking = blocking
        self._candidate_pairs_examined = 0

    # -- candidate generation --------------------------------------------------

    def candidate_pairs(self) -> Iterable[tuple[int, int]]:
        """The (left_tid, right_tid) pairs that will be compared."""
        if self._blocking is None:
            for left_row in self._left:
                for right_row in self._right:
                    yield left_row.tid, right_row.tid
            return
        left_block, right_block = self._blocking
        buckets: dict[str, list[int]] = defaultdict(list)
        for right_row in self._right:
            value = right_row[right_block]
            if is_null(value):
                continue
            buckets[str(value)].append(right_row.tid)
        for left_row in self._left:
            value = left_row[left_block]
            if is_null(value):
                continue
            for right_tid in buckets.get(str(value), ()):
                yield left_row.tid, right_tid

    # -- matching ---------------------------------------------------------------------

    def match(self) -> list[MatchDecision]:
        """All matched pairs (each pair reported once, with the first RCK that fired)."""
        decisions: list[MatchDecision] = []
        seen: set[tuple[int, int]] = set()
        self._candidate_pairs_examined = 0
        for left_tid, right_tid in self.candidate_pairs():
            self._candidate_pairs_examined += 1
            if (left_tid, right_tid) in seen:
                continue
            left_row = self._left.tuple(left_tid)
            right_row = self._right.tuple(right_tid)
            for rck in self._rcks:
                if rck.matches_pair(left_row, right_row):
                    decisions.append(MatchDecision(left_tid, right_tid, rck))
                    seen.add((left_tid, right_tid))
                    break
        return decisions

    def matched_pairs(self) -> set[tuple[int, int]]:
        """Just the set of matched (left_tid, right_tid) pairs."""
        return {decision.pair for decision in self.match()}

    @property
    def candidate_pairs_examined(self) -> int:
        """Number of pairs compared by the last :meth:`match` call (blocking ablation)."""
        return self._candidate_pairs_examined

    def matches_by_rck(self) -> dict[str, int]:
        """How many matches each RCK contributed (keyed by its repr)."""
        counts: dict[str, int] = {}
        for decision in self.match():
            key = repr(decision.rck)
            counts[key] = counts.get(key, 0) + 1
        return counts
