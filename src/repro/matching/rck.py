"""Relative candidate keys (RCKs).

An RCK ``([A1..Ak], [B1..Bk] ‖ [⊙1..⊙k])`` relative to the attribute lists
``(Y, Y')`` states: if for every ``i`` the comparison ``t[Ai] ⊙i t'[Bi]``
holds (``⊙`` being ``=`` or a similarity ``≈``), then ``t[Y]`` and
``t'[Y']`` refer to the same entity.  In contrast to a traditional
candidate key an RCK (i) spans two relations, (ii) may use similarity
rather than equality, and (iii) has a "match" rather than "key" semantics
suited to unreliable data (§4 of the tutorial).

The tutorial's examples::

    rck1: ([email, addr], [email, addr] ‖ [=, =])
    rck2: ([ln, phn, fn], [ln, phn, fn] ‖ [=, =, ≈])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import MatchingError
from repro.matching.rules import Comparator


@dataclass(frozen=True)
class RelativeCandidateKey:
    """A comparison vector sufficient to identify two records."""

    comparators: tuple[Comparator, ...]
    left_target: tuple[str, ...]
    right_target: tuple[str, ...]
    name: str | None = None

    def __post_init__(self) -> None:
        if not self.comparators:
            raise MatchingError("an RCK needs at least one comparator")
        if len(self.left_target) != len(self.right_target):
            raise MatchingError("RCK target lists must have the same length")
        object.__setattr__(self, "comparators", tuple(self.comparators))
        object.__setattr__(self, "left_target", tuple(a.lower() for a in self.left_target))
        object.__setattr__(self, "right_target", tuple(a.lower() for a in self.right_target))

    @classmethod
    def build(cls, comparators: Sequence[Comparator], target: Sequence[str],
              name: str | None = None) -> "RelativeCandidateKey":
        """RCK whose target uses the same attribute names on both relations."""
        return cls(tuple(comparators), tuple(target), tuple(target), name=name)

    # -- structure -------------------------------------------------------------

    def attribute_pairs(self) -> tuple[tuple[str, str], ...]:
        """The (left, right) attribute pairs this RCK compares."""
        return tuple((c.left_attribute, c.right_attribute) for c in self.comparators)

    def arity(self) -> int:
        """Number of comparisons (the paper's key length)."""
        return len(self.comparators)

    def uses_similarity(self) -> bool:
        """Whether any comparison is a similarity (``≈``) comparison."""
        return any(c.is_similarity for c in self.comparators)

    def subsumes(self, other: "RelativeCandidateKey") -> bool:
        """Whether this RCK's premise is a (weaker-or-equal) subset of *other*'s.

        Used for minimization: if ``self`` subsumes ``other`` then ``other``
        is redundant.  Equality entails similarity on the same attribute
        pair, so an ``=`` comparator in *other* satisfies a ``≈``
        requirement of *self*.
        """
        for mine in self.comparators:
            satisfied = False
            for theirs in other.comparators:
                same_pair = (mine.left_attribute == theirs.left_attribute
                             and mine.right_attribute == theirs.right_attribute)
                if not same_pair:
                    continue
                if mine.is_similarity or theirs.operator == "=":
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    # -- semantics ------------------------------------------------------------------

    def matches_pair(self, left_row, right_row) -> bool:
        """Whether the two tuples satisfy every comparison of the RCK."""
        return all(comparator.matches_pair(left_row, right_row)
                   for comparator in self.comparators)

    def __repr__(self) -> str:
        lefts = ", ".join(c.left_attribute for c in self.comparators)
        rights = ", ".join(c.right_attribute for c in self.comparators)
        operators = ", ".join("=" if not c.is_similarity else "≈" for c in self.comparators)
        label = f"{self.name}: " if self.name else ""
        return f"{label}([{lefts}], [{rights}] ‖ [{operators}])"
