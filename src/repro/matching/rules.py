"""Matching rules over a pair of relations.

A matching rule (the tutorial's rules (a)–(c)) has the form

    if t[A1] ⊙1 t'[B1] and ... and t[Ak] ⊙k t'[Bk]  then  t[Y] ⇌ t'[Y']

where each ``⊙`` is either equality or a similarity operator ``≈``, and
the conclusion says the two tuples agree on (refer to the same entity via)
the attribute lists ``Y`` / ``Y'``.  Rules are directional across two
relations (e.g. ``card`` and ``billing``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import MatchingError
from repro.matching.similarity import similarity
from repro.relational.types import is_null


@dataclass(frozen=True)
class Comparator:
    """One comparison ``left_attribute ⊙ right_attribute``.

    ``operator`` is ``"="`` for strict equality or ``"~"`` for similarity;
    similarity comparisons carry the similarity *method* and a *threshold*.
    """

    left_attribute: str
    right_attribute: str
    operator: str = "="
    method: str = "jaro_winkler"
    threshold: float = 0.85

    def __post_init__(self) -> None:
        if self.operator not in ("=", "~"):
            raise MatchingError(f"comparator operator must be '=' or '~', got {self.operator!r}")
        if not (0.0 < self.threshold <= 1.0):
            raise MatchingError("similarity threshold must be in (0, 1]")
        object.__setattr__(self, "left_attribute", self.left_attribute.lower())
        object.__setattr__(self, "right_attribute", self.right_attribute.lower())

    @classmethod
    def equality(cls, left_attribute: str, right_attribute: str | None = None) -> "Comparator":
        """Equality comparator (right attribute defaults to the left one)."""
        return cls(left_attribute, right_attribute or left_attribute, "=")

    @classmethod
    def similar(cls, left_attribute: str, right_attribute: str | None = None,
                method: str = "jaro_winkler", threshold: float = 0.85) -> "Comparator":
        """Similarity comparator (``≈``)."""
        return cls(left_attribute, right_attribute or left_attribute, "~", method, threshold)

    @property
    def is_similarity(self) -> bool:
        return self.operator == "~"

    def compare(self, left_value: Any, right_value: Any) -> bool:
        """Evaluate the comparison on two values (NULLs never compare true)."""
        if is_null(left_value) or is_null(right_value):
            return False
        if self.operator == "=":
            return str(left_value) == str(right_value)
        return similarity(left_value, right_value, self.method) >= self.threshold

    def matches_pair(self, left_row, right_row) -> bool:
        """Evaluate the comparison on two tuples."""
        return self.compare(left_row[self.left_attribute], right_row[self.right_attribute])

    def __repr__(self) -> str:
        symbol = "=" if self.operator == "=" else f"≈({self.method}≥{self.threshold})"
        return f"({self.left_attribute} {symbol} {self.right_attribute})"


@dataclass(frozen=True)
class MatchingRule:
    """``if <comparators> then (left_conclusion ⇌ right_conclusion)``."""

    comparators: tuple[Comparator, ...]
    left_conclusion: tuple[str, ...]
    right_conclusion: tuple[str, ...]
    name: str | None = None

    def __post_init__(self) -> None:
        if not self.comparators:
            raise MatchingError("a matching rule needs at least one comparator")
        if len(self.left_conclusion) != len(self.right_conclusion):
            raise MatchingError("rule conclusions must have the same length on both sides")
        object.__setattr__(self, "comparators", tuple(self.comparators))
        object.__setattr__(self, "left_conclusion",
                           tuple(a.lower() for a in self.left_conclusion))
        object.__setattr__(self, "right_conclusion",
                           tuple(a.lower() for a in self.right_conclusion))

    @classmethod
    def build(cls, comparators: Sequence[Comparator], conclusion: Sequence[str],
              name: str | None = None) -> "MatchingRule":
        """Rule whose conclusion uses the same attribute names on both sides."""
        return cls(tuple(comparators), tuple(conclusion), tuple(conclusion), name=name)

    def premise_attributes(self) -> tuple[tuple[str, str], ...]:
        """The (left, right) attribute pairs compared by the premise."""
        return tuple((c.left_attribute, c.right_attribute) for c in self.comparators)

    def applies_to(self, left_row, right_row) -> bool:
        """Whether the premise holds for the two tuples."""
        return all(comparator.matches_pair(left_row, right_row)
                   for comparator in self.comparators)

    def concluded_pairs(self) -> tuple[tuple[str, str], ...]:
        """The (left, right) attribute pairs the rule concludes to match."""
        return tuple(zip(self.left_conclusion, self.right_conclusion))

    def __repr__(self) -> str:
        premise = " and ".join(repr(c) for c in self.comparators)
        label = f"{self.name}: " if self.name else ""
        return (f"{label}if {premise} then "
                f"[{', '.join(self.left_conclusion)}] ⇌ [{', '.join(self.right_conclusion)}]")
