"""String similarity operators, implemented from scratch.

These are the ``≈`` operators used by relative candidate keys (§4 of the
tutorial) and by the repair cost model (the cost of changing a value is
proportional to how different the new value is).  All functions return a
similarity in ``[0, 1]`` (1 = identical) unless stated otherwise.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.relational.types import is_null


def levenshtein_distance(left: str, right: str) -> int:
    """Classic edit distance (insertions, deletions, substitutions)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (0 if left_char == right_char else 1)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


def normalized_edit_similarity(left: Any, right: Any) -> float:
    """``1 - edit_distance / max(len)``; NULLs are only similar to NULLs."""
    if is_null(left) and is_null(right):
        return 1.0
    if is_null(left) or is_null(right):
        return 0.0
    left_text, right_text = str(left), str(right)
    longest = max(len(left_text), len(right_text))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(left_text, right_text) / longest


def normalized_edit_distance(left: Any, right: Any) -> float:
    """``1 - normalized_edit_similarity`` (used as a repair cost)."""
    return 1.0 - normalized_edit_similarity(left, right)


def jaro_similarity(left: str, right: str) -> float:
    """Jaro similarity (match window = half the longer string)."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    window = max(len(left), len(right)) // 2 - 1
    window = max(window, 0)
    left_matches = [False] * len(left)
    right_matches = [False] * len(right)
    matches = 0
    for i, char in enumerate(left):
        start = max(0, i - window)
        end = min(i + window + 1, len(right))
        for j in range(start, end):
            if right_matches[j] or right[j] != char:
                continue
            left_matches[i] = True
            right_matches[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, matched in enumerate(left_matches):
        if not matched:
            continue
        while not right_matches[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (matches / len(left) + matches / len(right)
            + (matches - transpositions) / matches) / 3.0


def jaro_winkler_similarity(left: str, right: str, prefix_weight: float = 0.1) -> float:
    """Jaro–Winkler: Jaro boosted by the length of the common prefix (max 4)."""
    jaro = jaro_similarity(left, right)
    prefix = 0
    for left_char, right_char in zip(left[:4], right[:4]):
        if left_char != right_char:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def qgrams(text: str, q: int = 2) -> set[str]:
    """The set of q-grams of *text* (padded with ``#`` at both ends)."""
    padded = "#" * (q - 1) + text + "#" * (q - 1)
    return {padded[i:i + q] for i in range(len(padded) - q + 1)}


def qgram_jaccard_similarity(left: str, right: str, q: int = 2) -> float:
    """Jaccard similarity of the q-gram sets of the two strings."""
    if left == right:
        return 1.0
    if not left or not right:
        return 0.0
    left_grams, right_grams = qgrams(left, q), qgrams(right, q)
    union = left_grams | right_grams
    if not union:
        return 1.0
    return len(left_grams & right_grams) / len(union)


def token_jaccard_similarity(left: str, right: str) -> float:
    """Jaccard similarity of whitespace-separated token sets (for addresses)."""
    left_tokens = set(left.lower().split())
    right_tokens = set(right.lower().split())
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0
    return len(left_tokens & right_tokens) / len(left_tokens | right_tokens)


SIMILARITY_FUNCTIONS: dict[str, Callable[[str, str], float]] = {
    "edit": normalized_edit_similarity,
    "jaro": jaro_similarity,
    "jaro_winkler": jaro_winkler_similarity,
    "qgram": qgram_jaccard_similarity,
    "token": token_jaccard_similarity,
}


def similarity(left: Any, right: Any, method: str = "edit") -> float:
    """Dispatch to a named similarity function; NULL is only similar to NULL."""
    if is_null(left) and is_null(right):
        return 1.0
    if is_null(left) or is_null(right):
        return 0.0
    if method not in SIMILARITY_FUNCTIONS:
        raise ValueError(f"unknown similarity method {method!r}; "
                         f"known: {sorted(SIMILARITY_FUNCTIONS)}")
    return SIMILARITY_FUNCTIONS[method](str(left), str(right))
