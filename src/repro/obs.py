"""``repro.obs`` — process-wide metrics registry and span tracer.

A single module-level :class:`MetricsRegistry` collects named counters,
gauges and histograms from every layer of the library (engine fan-out,
caches, SQL planning, detection/repair/discovery).  Collection is **off
by default** and the off path is near-free: every instrumented call site
guards on the module attribute :data:`enabled` before allocating
anything::

    from repro import obs

    if obs.enabled:
        obs.inc("cache.partition.hit")

    with obs.span("sql.join.probe", relation=name):
        ...  # when disabled this yields a shared no-op singleton

Spans time a block with :func:`time.perf_counter` and fold the elapsed
seconds into the histogram ``span.<name>``; with :data:`trace_enabled`
they additionally append ``(name, seconds, tags)`` records to a bounded
in-memory trace buffer.  Set ``REPRO_OBS=1`` (and optionally
``REPRO_OBS_TRACE=1``) to switch collection on at import time — that is
how CI reruns the full suite instrumented — or call :func:`enable`
programmatically (the CLI does this for ``--stats``/``--explain`` runs).

Metric names are dotted, lowest-level last: ``<layer>.<object>.<event>``
(``engine.pool.reuse``, ``cache.bridge.rebuilt``, ``sql.plan.code``,
``repair.passes``).  The supervised parallel engine contributes the
fault-tolerance family: ``engine.task.retry``, ``engine.task.timeout``,
``engine.task.failure.{error,crash,timeout}``, ``engine.pool.rebuild``,
``engine.pool.stop_error``, ``engine.fallback.serial`` and
``engine.fallback.tasks`` (see :mod:`repro.engine.executor`).
Histograms observe seconds (``engine.task.*``, ``span.*``) or sizes
(``engine.sql.chunks``).  The Prometheus rendering
in :meth:`MetricsRegistry.render_prometheus` maps dots to underscores and
prefixes ``repro_``, so ``cache.partition.hit`` becomes
``repro_cache_partition_hit_total``.

Instrumentation never feeds results back into computation, so reports,
SQL results and repairs are byte-identical with collection on or off.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Iterator

from repro.config import obs_enabled_default, obs_trace_default

TRACE_LIMIT = 1000

enabled = False
trace_enabled = False


class Histogram:
    """Streaming summary of observed values: count/total/min/max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count if self.count else 0.0,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class MetricsRegistry:
    """Named counters, gauges, histograms and a bounded span trace."""

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._trace: list[tuple[str, float, dict[str, Any]]] = []

    # -- recording ------------------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def record_trace(self, name: str, seconds: float,
                     tags: dict[str, Any]) -> None:
        if len(self._trace) < TRACE_LIMIT:
            self._trace.append((name, seconds, tags))

    # -- export ---------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Structured dict of everything recorded so far."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {name: histogram.snapshot()
                           for name, histogram
                           in sorted(self._histograms.items())},
            "trace": [{"name": name, "seconds": seconds, "tags": tags}
                      for name, seconds, tags in self._trace],
        }

    def render_prometheus(self) -> str:
        """Prometheus text exposition: ``repro_`` prefix, dots → underscores."""
        lines: list[str] = []
        for name, value in sorted(self._counters.items()):
            metric = _prometheus_name(name) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value}")
        for name, value in sorted(self._gauges.items()):
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_format_value(value)}")
        for name, histogram in sorted(self._histograms.items()):
            metric = _prometheus_name(name)
            summary = histogram.snapshot()
            lines.append(f"# TYPE {metric} summary")
            lines.append(f"{metric}_count {summary['count']}")
            lines.append(f"{metric}_sum {_format_value(summary['total'])}")
            lines.append(f"{metric}_min {_format_value(summary['min'])}")
            lines.append(f"{metric}_max {_format_value(summary['max'])}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._trace.clear()


def _prometheus_name(name: str) -> str:
    return "repro_" + name.replace(".", "_").replace("-", "_")


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


# -- spans --------------------------------------------------------------------------

class _Span:
    """Times a block; elapsed seconds land in the ``span.<name>`` histogram."""

    __slots__ = ("name", "tags", "_start")

    def __init__(self, name: str, tags: dict[str, Any]) -> None:
        self.name = name
        self.tags = tags
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        elapsed = perf_counter() - self._start
        REGISTRY.observe("span." + self.name, elapsed)
        if trace_enabled:
            REGISTRY.record_trace(self.name, elapsed, self.tags)


class _NoopSpan:
    """Shared zero-allocation span used whenever collection is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NOOP_SPAN = _NoopSpan()

REGISTRY = MetricsRegistry()


def span(name: str, **tags: Any) -> "_Span | _NoopSpan":
    """Context manager timing a block, or a shared no-op when disabled."""
    if not enabled:
        return _NOOP_SPAN
    return _Span(name, tags)


# -- module facade ------------------------------------------------------------------

def enable(trace: bool | None = None) -> None:
    """Switch metrics collection on (optionally span tracing too)."""
    global enabled, trace_enabled
    enabled = True
    if trace is not None:
        trace_enabled = trace


def disable() -> None:
    """Switch metrics collection (and tracing) off."""
    global enabled, trace_enabled
    enabled = False
    trace_enabled = False


def configure_from_env() -> None:
    """Apply ``REPRO_OBS`` / ``REPRO_OBS_TRACE`` to the module flags."""
    global enabled, trace_enabled
    enabled = obs_enabled_default()
    trace_enabled = obs_trace_default()


def inc(name: str, value: int = 1) -> None:
    REGISTRY.inc(name, value)


def counter(name: str) -> int:
    return REGISTRY.counter(name)


def gauge(name: str, value: float) -> None:
    REGISTRY.gauge(name, value)


def observe(name: str, value: float) -> None:
    REGISTRY.observe(name, value)


def metrics() -> dict[str, Any]:
    """Structured snapshot of the process-wide registry."""
    return REGISTRY.snapshot()


def prometheus() -> str:
    """Prometheus text rendering of the process-wide registry."""
    return REGISTRY.render_prometheus()


def reset() -> None:
    """Clear the process-wide registry (flags are left untouched)."""
    REGISTRY.reset()


def iter_trace() -> Iterator[tuple[str, float, dict[str, Any]]]:
    """Iterate recorded span trace entries ``(name, seconds, tags)``."""
    return iter(REGISTRY._trace)


configure_from_env()
