"""In-memory relational engine.

This package is the storage and query substrate of the library: a small,
fully self-contained relational engine providing

* typed schemas and relations with stable tuple identifiers
  (:mod:`repro.relational.schema`, :mod:`repro.relational.relation`),
* dictionary-encoded columnar storage maintained alongside the row store
  (:mod:`repro.relational.columns`) — the substrate of the detection,
  discovery and statistics hot paths,
* hash indexes over column codes (:mod:`repro.relational.index`),
* a relational-algebra layer (:mod:`repro.relational.algebra`),
* CSV import/export (:mod:`repro.relational.csvio`), and
* a small SQL dialect — enough to run the CFD/CIND violation-detection
  queries of Fan et al. (:mod:`repro.relational.sql`).

The engine is deliberately simple (row store, hash joins, no cost-based
optimizer) but semantically faithful: NULL follows three-valued logic,
group-by/aggregation matches SQL semantics, and every operator is covered
by unit and property tests.
"""

from repro.relational.types import (
    NULL,
    AttributeType,
    coerce_value,
    is_null,
    value_repr,
)
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.columns import Column, ColumnStore, NULL_CODE, TOMBSTONE
from repro.relational.relation import Relation, Tuple
from repro.relational.database import Database
from repro.relational.index import HashIndex
from repro.relational.csvio import read_csv, relation_from_csv, relation_to_csv
from repro.relational.sql.engine import SQLEngine

__all__ = [
    "NULL",
    "NULL_CODE",
    "TOMBSTONE",
    "AttributeType",
    "Attribute",
    "RelationSchema",
    "Relation",
    "Tuple",
    "Column",
    "ColumnStore",
    "Database",
    "HashIndex",
    "SQLEngine",
    "coerce_value",
    "is_null",
    "value_repr",
    "read_csv",
    "relation_from_csv",
    "relation_to_csv",
]
