"""Relational-algebra operators over :class:`~repro.relational.relation.Relation`.

Each operator is a plain function taking relations (and, where relevant,
expressions from :mod:`repro.relational.expressions`) and returning a new
relation.  Join operators use hash joins on the equi-join attributes; the
SQL executor is built on top of these operators.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import RelationError, SchemaError
from repro.relational.expressions import EvaluationContext, Expression, truth
from repro.relational.relation import Relation, Tuple
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import NULL, AttributeType, is_null, sort_key


# ---------------------------------------------------------------------------
# unary operators
# ---------------------------------------------------------------------------

def select(relation: Relation, predicate: Expression | Callable[[Tuple], bool],
           name: str | None = None) -> Relation:
    """Selection: tuples of *relation* satisfying *predicate* (tids preserved)."""
    if isinstance(predicate, Expression):
        def keep(row: Tuple) -> bool:
            return truth(predicate.evaluate(EvaluationContext.from_tuple(row)))
    else:
        keep = predicate
    return relation.filter(keep, name=name)


def project(relation: Relation, attribute_names: Sequence[str], name: str | None = None,
            distinct: bool = True) -> Relation:
    """Projection onto *attribute_names*; set semantics by default."""
    return relation.project_relation(attribute_names, name=name, distinct=distinct)


def rename(relation: Relation, mapping: Mapping[str, str], name: str | None = None) -> Relation:
    """Rename attributes according to *mapping* (old → new)."""
    target_schema = relation.schema.rename(mapping, name=name or relation.name)
    result = Relation(target_schema)
    for row in relation:
        result.insert(list(row.values))
    return result


def extend(relation: Relation, new_attribute: str, attr_type: AttributeType,
           compute: Callable[[Tuple], Any], name: str | None = None) -> Relation:
    """Append a computed attribute to every tuple."""
    target_schema = relation.schema.extend([Attribute(new_attribute, attr_type)],
                                           name=name or relation.name)
    result = Relation(target_schema)
    for row in relation:
        result.insert(list(row.values) + [compute(row)])
    return result


def distinct(relation: Relation, name: str | None = None) -> Relation:
    """Duplicate elimination over all attributes."""
    return relation.project_relation(relation.schema.attribute_names, name=name, distinct=True)


def sort(relation: Relation, attribute_names: Sequence[str], descending: bool = False,
         name: str | None = None) -> Relation:
    """Return a relation whose insertion order follows the sort order."""
    result = Relation(relation.schema if name is None else relation.schema.renamed_relation(name))
    rows = relation.sorted_tuples(attribute_names)
    if descending:
        rows = list(reversed(rows))
    for row in rows:
        result.insert(list(row.values))
    return result


def limit(relation: Relation, count: int, name: str | None = None) -> Relation:
    """First *count* tuples in insertion order."""
    result = Relation(relation.schema if name is None else relation.schema.renamed_relation(name))
    for i, row in enumerate(relation):
        if i >= count:
            break
        result.insert(list(row.values))
    return result


# ---------------------------------------------------------------------------
# set operators
# ---------------------------------------------------------------------------

def _check_compatible(left: Relation, right: Relation) -> None:
    if left.schema.arity != right.schema.arity:
        raise SchemaError(
            f"set operation requires equal arity: {left.name}({left.schema.arity}) vs "
            f"{right.name}({right.schema.arity})"
        )


def union(left: Relation, right: Relation, name: str = "union") -> Relation:
    """Set union (duplicates removed)."""
    _check_compatible(left, right)
    result = Relation(left.schema.renamed_relation(name))
    seen: set[tuple[Any, ...]] = set()
    for source in (left, right):
        for row in source:
            key = row.values
            if key not in seen:
                seen.add(key)
                result.insert(list(key))
    return result


def difference(left: Relation, right: Relation, name: str = "difference") -> Relation:
    """Set difference ``left - right``."""
    _check_compatible(left, right)
    right_rows = {row.values for row in right}
    result = Relation(left.schema.renamed_relation(name))
    seen: set[tuple[Any, ...]] = set()
    for row in left:
        key = row.values
        if key not in right_rows and key not in seen:
            seen.add(key)
            result.insert(list(key))
    return result


def intersection(left: Relation, right: Relation, name: str = "intersection") -> Relation:
    """Set intersection."""
    _check_compatible(left, right)
    right_rows = {row.values for row in right}
    result = Relation(left.schema.renamed_relation(name))
    seen: set[tuple[Any, ...]] = set()
    for row in left:
        key = row.values
        if key in right_rows and key not in seen:
            seen.add(key)
            result.insert(list(key))
    return result


# ---------------------------------------------------------------------------
# joins
# ---------------------------------------------------------------------------

def _joined_schema(left: Relation, right: Relation, name: str) -> RelationSchema:
    """Schema of a join result; clashing names get the relation name as prefix."""
    left_names = {a.name.lower() for a in left.schema.attributes}
    attrs: list[Attribute] = list(left.schema.attributes)
    for attr in right.schema.attributes:
        if attr.name.lower() in left_names:
            attrs.append(Attribute(f"{right.name}_{attr.name}", attr.type))
        else:
            attrs.append(attr)
    return RelationSchema(name, attrs)


def cartesian_product(left: Relation, right: Relation, name: str = "product") -> Relation:
    """Cartesian product (attribute clashes disambiguated with the right name)."""
    result = Relation(_joined_schema(left, right, name))
    for lrow in left:
        for rrow in right:
            result.insert(list(lrow.values) + list(rrow.values))
    return result


def equi_join(left: Relation, right: Relation,
              left_attributes: Sequence[str], right_attributes: Sequence[str],
              name: str = "join") -> Relation:
    """Hash equi-join on the given attribute lists (NULL keys never match)."""
    if len(left_attributes) != len(right_attributes):
        raise RelationError("equi_join requires the same number of attributes on both sides")
    result = Relation(_joined_schema(left, right, name))
    right_positions = right.schema.positions(right_attributes)
    buckets: dict[tuple[Any, ...], list[Tuple]] = defaultdict(list)
    for rrow in right:
        key = tuple(rrow.at(p) for p in right_positions)
        if any(is_null(v) for v in key):
            continue
        buckets[key].append(rrow)
    left_positions = left.schema.positions(left_attributes)
    for lrow in left:
        key = tuple(lrow.at(p) for p in left_positions)
        if any(is_null(v) for v in key):
            continue
        for rrow in buckets.get(key, ()):
            result.insert(list(lrow.values) + list(rrow.values))
    return result


def natural_join(left: Relation, right: Relation, name: str = "join") -> Relation:
    """Equi-join on all attributes with the same name."""
    common = [a for a in left.schema.attribute_names if right.schema.has_attribute(a)]
    if not common:
        return cartesian_product(left, right, name=name)
    return equi_join(left, right, common, common, name=name)


def left_anti_join(left: Relation, right: Relation,
                   left_attributes: Sequence[str], right_attributes: Sequence[str],
                   name: str = "anti_join") -> Relation:
    """Tuples of *left* that have NO matching tuple in *right* (tids preserved).

    This is the operator behind CIND violation detection: a CIND violation
    is a left tuple matching the left pattern with no right partner.
    Tuples with a NULL in the join key are treated as having no partner.
    """
    right_positions = right.schema.positions(right_attributes)
    right_keys = set()
    for rrow in right:
        key = tuple(rrow.at(p) for p in right_positions)
        if any(is_null(v) for v in key):
            continue
        right_keys.add(key)
    left_positions = left.schema.positions(left_attributes)

    def keep(row: Tuple) -> bool:
        key = tuple(row.at(p) for p in left_positions)
        if any(is_null(v) for v in key):
            return True
        return key not in right_keys

    return left.filter(keep, name=name)


def left_semi_join(left: Relation, right: Relation,
                   left_attributes: Sequence[str], right_attributes: Sequence[str],
                   name: str = "semi_join") -> Relation:
    """Tuples of *left* that DO have a matching tuple in *right* (tids preserved)."""
    right_positions = right.schema.positions(right_attributes)
    right_keys = set()
    for rrow in right:
        key = tuple(rrow.at(p) for p in right_positions)
        if any(is_null(v) for v in key):
            continue
        right_keys.add(key)
    left_positions = left.schema.positions(left_attributes)

    def keep(row: Tuple) -> bool:
        key = tuple(row.at(p) for p in left_positions)
        if any(is_null(v) for v in key):
            return False
        return key in right_keys

    return left.filter(keep, name=name)


# ---------------------------------------------------------------------------
# grouping and aggregation
# ---------------------------------------------------------------------------

class Aggregate:
    """Specification of one aggregate: function, input attribute, output name."""

    SUPPORTED = ("count", "count_distinct", "sum", "min", "max", "avg")

    def __init__(self, function: str, attribute: str | None, output_name: str | None = None) -> None:
        function = function.lower()
        if function not in self.SUPPORTED:
            raise RelationError(f"unsupported aggregate function {function!r}")
        if function != "count" and attribute is None:
            raise RelationError(f"aggregate {function!r} requires an attribute")
        self.function = function
        self.attribute = attribute
        self.output_name = output_name or (
            f"{function}_{attribute}" if attribute else "count"
        )

    def output_type(self) -> AttributeType:
        if self.function in ("count", "count_distinct"):
            return AttributeType.INTEGER
        if self.function == "avg":
            return AttributeType.FLOAT
        return AttributeType.FLOAT if self.function == "sum" else AttributeType.STRING

    def compute(self, rows: list[Tuple]) -> Any:
        if self.function == "count":
            if self.attribute is None:
                return len(rows)
            return sum(1 for row in rows if not is_null(row[self.attribute]))
        values = [row[self.attribute] for row in rows if not is_null(row[self.attribute])]
        if self.function == "count_distinct":
            return len(set(values))
        if not values:
            return NULL
        if self.function == "sum":
            return sum(values)
        if self.function == "avg":
            return sum(values) / len(values)
        if self.function == "min":
            return min(values, key=sort_key)
        return max(values, key=sort_key)

    def __repr__(self) -> str:
        return f"Aggregate({self.function}({self.attribute or '*'}) AS {self.output_name})"


def group_by(relation: Relation, group_attributes: Sequence[str],
             aggregates: Sequence[Aggregate], name: str = "grouped") -> Relation:
    """SQL-style GROUP BY with the given aggregates.

    With an empty *group_attributes* list a single row of global
    aggregates is produced (even for an empty input, matching SQL).
    """
    group_attributes = [relation.schema.canonical_name(a) for a in group_attributes]
    attrs: list[Attribute] = [relation.schema.attribute(a) for a in group_attributes]
    for aggregate in aggregates:
        out_type = AttributeType.FLOAT
        if aggregate.function in ("count", "count_distinct"):
            out_type = AttributeType.INTEGER
        elif aggregate.function in ("min", "max") and aggregate.attribute is not None:
            out_type = relation.schema.attribute(aggregate.attribute).type
        elif aggregate.function == "sum" and aggregate.attribute is not None:
            out_type = relation.schema.attribute(aggregate.attribute).type
            if out_type is AttributeType.STRING:
                out_type = AttributeType.FLOAT
        attrs.append(Attribute(aggregate.output_name, out_type))
    result = Relation(RelationSchema(name, attrs))

    groups: dict[tuple[Any, ...], list[Tuple]] = defaultdict(list)
    positions = relation.schema.positions(group_attributes)
    for row in relation:
        key = tuple(row.at(p) for p in positions)
        groups[key].append(row)

    if not group_attributes and not groups:
        groups[()] = []

    for key, rows in groups.items():
        out_row = list(key) + [aggregate.compute(rows) for aggregate in aggregates]
        result.insert(out_row)
    return result


def aggregate_value(relation: Relation, aggregate: Aggregate) -> Any:
    """Convenience: compute a single global aggregate and return its value."""
    grouped = group_by(relation, [], [aggregate], name="agg")
    rows = grouped.tuples()
    return rows[0][aggregate.output_name] if rows else NULL
