"""Dictionary-encoded columnar storage attached to a :class:`Relation`.

A :class:`ColumnStore` keeps, for every attribute of a relation, a
:class:`Column`: an array of small integer *codes* indexed by tuple id plus
a *dictionary* mapping codes back to values.  Equal values (under Python
``==``) share a code, NULL is always code :data:`NULL_CODE` (0) in every
column, and deleted tuple ids keep the tombstone code ``-1``.

The store is the substrate of the hot paths: hash indexes group tuples by
tuples of integer codes instead of raw values, CFD pattern matching becomes
integer set membership (constants are pre-encoded once per pattern via
:meth:`Column.matcher`), stripped partitions for TANE-style discovery fall
out of a single pass over a code array, and per-column statistics
(distinct count, null count, most common value) are read off the live
occurrence counts the store maintains per code.

Maintenance mirrors :class:`~repro.relational.index.HashIndex`: the store
records the relation ``version`` it is synchronised with.  Mutations made
through the :class:`Relation` API notify the store (``on_insert`` /
``on_delete`` / ``on_update``) so it stays fresh in O(arity) per change;
any mutation the hooks cannot track (e.g. ``Relation.clear``) simply
leaves the store stale and the next access through ``Relation.columns``
rebuilds it.  Code arrays, dictionaries and matcher sets are mutated *in
place* on rebuild, so compiled detection plans holding references to them
survive rebuilds.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Any, Callable, Hashable, Sequence

from repro import obs
from repro.relational.types import is_null, sort_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.relational.relation import Relation

NULL_CODE = 0
"""The code every column assigns to NULL (dictionary slot 0)."""

TOMBSTONE = -1
"""The code marking a deleted (or never-live) tuple id in a code array."""

NO_PARTNER = -1
"""The bridge translation of a code whose value the target dictionary lacks."""


def take(codes: Sequence[int], tids: Sequence[int]) -> list[int]:
    """A compact chunk view of a code array: ``codes[tid]`` per tid.

    The chunked execution engine slices tid-indexed code arrays into
    per-chunk views with this helper (workers receive the live arrays and
    a tid slice; the view aligns codes with the slice positionally).
    """
    return [codes[tid] for tid in tids]


class ConstantMatcher:
    """The live set of codes of one column matching one pattern constant.

    Detection pre-encodes each pattern constant into the set of dictionary
    codes it matches, turning per-tuple constant tests into integer set
    membership.  The set is *live*: when the column dictionary grows (a new
    distinct value is interned), the column re-evaluates the matcher's
    predicate and extends ``codes`` in place, so long-lived compiled plans
    (e.g. inside :class:`~repro.detection.incremental.IncrementalCFDDetector`)
    stay correct as new values arrive.
    """

    __slots__ = ("predicate", "codes")

    def __init__(self, predicate: Callable[[Any], bool]) -> None:
        self.predicate = predicate
        self.codes: set[int] = set()


class ColumnOrder:
    """A dictionary-order view of one column: codes sorted by value.

    Built lazily from the dictionary (one sort per dictionary size — the
    dictionary only grows, so a size check is an exact staleness test) and
    shared by every consumer of the same version:

    * ``sorted_codes`` / ``keys`` — the codes ordered by
      :func:`~repro.relational.types.sort_key` of their value, with the
      keys alongside for bisection.  Range predicates (``<``, ``<=``,
      ``>``, ``>=`` and the desugared ``BETWEEN``) compile to code sets by
      bisecting here — the same total order the row-at-a-time comparisons
      use, so push-down is exact;
    * ``ranks`` — a code → dense-rank array (``==``-tied sort keys share a
      rank).  Ordering codes by rank is order-isomorphic to ordering
      values by ``sort_key``, which is what lets MIN/MAX and ORDER BY run
      on codes; the *dense* ranks keep stable sorts stable exactly where
      a value sort would be.

    NULL (code 0) participates in ``ranks`` (it sorts first, as
    ``sort_key`` says) but is excluded from every range result — a
    comparison against NULL is UNKNOWN.
    """

    __slots__ = ("size", "sorted_codes", "keys", "ranks")

    def __init__(self, values: Sequence[Any]) -> None:
        self.size = len(values)
        by_code = [sort_key(value) for value in values]
        self.sorted_codes: list[int] = sorted(range(len(values)),
                                              key=by_code.__getitem__)
        self.keys: list[tuple] = [by_code[code] for code in self.sorted_codes]
        ranks = [0] * len(values)
        rank = -1
        previous = None
        for position, code in enumerate(self.sorted_codes):
            key = self.keys[position]
            if key != previous:
                rank += 1
                previous = key
            ranks[code] = rank
        self.ranks: list[int] = ranks

    def codes_in_range(self, operator: str, bound: Any) -> set[int]:
        """The non-NULL codes whose value satisfies ``value <operator> bound``.

        *operator* is one of ``<``, ``<=``, ``>``, ``>=``; the comparison
        is the engine's :func:`~repro.relational.types.sort_key` total
        order, exactly as the row-at-a-time
        :class:`~repro.relational.expressions.Comparison` evaluates it.
        """
        key = sort_key(bound)
        if operator == "<":
            selected = self.sorted_codes[:bisect_left(self.keys, key)]
        elif operator == "<=":
            selected = self.sorted_codes[:bisect_right(self.keys, key)]
        elif operator == ">":
            selected = self.sorted_codes[bisect_right(self.keys, key):]
        elif operator == ">=":
            selected = self.sorted_codes[bisect_left(self.keys, key):]
        else:
            raise ValueError(f"unknown range operator {operator!r}")
        codes = set(selected)
        codes.discard(NULL_CODE)
        return codes


class DictionaryBridge:
    """A code→code translation from one column's dictionary into another's.

    The cross-relation substrate of code-native joins and CIND anti-joins:
    ``translation[source code]`` is the target-dictionary code whose value
    matches the source value, or :data:`NO_PARTNER` when the target
    dictionary holds no such value.  NULL maps to NULL
    (``translation[0] == 0``); join and anti-join consumers treat NULL
    specially anyway, so the slot never decides a match.

    Two match semantics exist, mirroring the two cross-relation equalities
    in the system:

    * ``"value"`` — Python ``==`` via the target's value→code table, the
      equality SQL hash joins key their buckets with.  Target codes are
      already canonical under this equality (interning collapses
      ``==``-equal values to one code), so the translation composes
      directly with code-keyed buckets.
    * ``"string"`` — equality of ``str`` forms, the equality CIND
      correspondence keys are compared under.  Several target codes can
      share a string, so the translation lands on the *canonical* target
      code (the smallest code with that string); a bridge from a column to
      itself under this mode is exactly the canonicalizer that makes
      target-side keys comparable with translated source keys.

    A bridge is valid for one ``(source dictionary, target dictionary)``
    state, tracked as ``(generation, size)`` per side: dictionaries only
    grow between resets, so a size check is an exact staleness test — and
    growth on *either* side can create partners that did not exist (an
    insert interning a novel value mid-session), so both sides
    participate.  :meth:`Column.bridge_to` revalidates on every access and
    rebuilds the translation **in place** (the list identity survives), so
    broadcast states and long-lived compiled plans holding the array stay
    correct, exactly like code arrays and matcher sets.
    """

    __slots__ = ("source", "target", "mode", "translation",
                 "_source_state", "_target_state")

    #: match semantics a bridge can be built under.
    MODES = ("value", "string")

    def __init__(self, source: "Column", target: "Column", mode: str) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown bridge mode {mode!r}; expected one of {self.MODES}")
        self.source = source
        self.target = target
        self.mode = mode
        self.translation: list[int] = []
        self._source_state: tuple[int, int] = (-1, -1)
        self._target_state: tuple[int, int] = (-1, -1)
        self._rebuild()

    def is_stale(self) -> bool:
        """Whether either side's dictionary grew or reset since the build."""
        return (self._source_state != (self.source.generation, len(self.source.values))
                or self._target_state != (self.target.generation, len(self.target.values)))

    def ensure_fresh(self) -> "DictionaryBridge":
        """Rebuild the translation in place if either dictionary moved."""
        if self.is_stale():
            if obs.enabled:
                obs.inc("cache.bridge.rebuilt")
            self._rebuild()
        elif obs.enabled:
            obs.inc("cache.bridge.valid")
        return self

    def _rebuild(self) -> None:
        source, target = self.source, self.target
        translation = [NO_PARTNER] * len(source.values)
        translation[NULL_CODE] = NULL_CODE
        if self.mode == "value":
            lookup = target._code_by_value
            values = source.values
            for code in range(1, len(values)):
                partner = lookup.get(values[code])
                if partner is not None:
                    translation[code] = partner
        else:
            target_strings = target.strings
            canonical: dict[str, int] = {}
            for code in range(1, len(target.values)):
                canonical.setdefault(target_strings[code], code)
            source_strings = source.strings
            for code in range(1, len(source.values)):
                partner = canonical.get(source_strings[code])
                if partner is not None:
                    translation[code] = partner
        self.translation[:] = translation
        self._source_state = (source.generation, len(source.values))
        self._target_state = (target.generation, len(target.values))

    def __repr__(self) -> str:
        matched = sum(1 for code in self.translation[1:] if code != NO_PARTNER)
        return (f"DictionaryBridge({self.source.attribute!r} -> "
                f"{self.target.attribute!r}, {self.mode}, "
                f"{matched}/{max(0, len(self.translation) - 1)} matched)")

    def compose(self, other: "DictionaryBridge | ComposedBridge") -> "ComposedBridge":
        """The chained translation ``self ∘ other``: source codes of *self*
        translated all the way into the *target* dictionary of *other*.

        Requires ``self.target is other.source`` (the hops must chain).
        The result revalidates every hop on :meth:`ComposedBridge.ensure_fresh`.
        """
        hops = [self] + (list(other.hops) if isinstance(other, ComposedBridge)
                         else [other])
        return ComposedBridge(hops)


class ComposedBridge:
    """A chained code→code translation across two or more bridge hops.

    Multiway join variables can span columns with no direct bridge between
    them: member ``k`` of a variable bridges to member ``k-1``, which
    bridges onward until the variable's representative column is reached.
    ``translation[source code]`` is the code in the *final* hop's target
    dictionary, or :data:`NO_PARTNER` when any hop loses the value.  NULL
    maps to NULL through every hop.

    Losing a value at an intermediate hop is join-safe: a value absent from
    an intermediate member's dictionary has no live tuple in that member's
    relation either, so the multiway intersection would exclude it anyway.

    Validity is per hop: the composition caches each hop's
    ``(generation, size)`` stamps of both dictionaries at build time, and
    :meth:`ensure_fresh` rebuilds the composed translation **in place**
    (list identity survives, like :class:`DictionaryBridge`) when any hop
    is stale *or* was rebuilt elsewhere since this composition last looked.
    """

    __slots__ = ("hops", "translation", "_states")

    def __init__(self, hops: Sequence[DictionaryBridge]) -> None:
        if len(hops) < 2:
            raise ValueError("a composed bridge needs at least two hops")
        for first, second in zip(hops, hops[1:]):
            if first.target is not second.source:
                raise ValueError(
                    f"bridge hops do not chain: {first!r} ends at a column "
                    f"different from where {second!r} starts")
        self.hops: tuple[DictionaryBridge, ...] = tuple(hops)
        self.translation: list[int] = []
        self._states: list[tuple[tuple[int, int], tuple[int, int]]] = []
        self._rebuild()

    @property
    def source(self) -> "Column":
        return self.hops[0].source

    @property
    def target(self) -> "Column":
        return self.hops[-1].target

    def is_stale(self) -> bool:
        """Whether any hop's dictionaries moved (or the hop was rebuilt)."""
        for hop, (source_state, target_state) in zip(self.hops, self._states):
            if (hop.is_stale()
                    or hop._source_state != source_state
                    or hop._target_state != target_state):
                return True
        return False

    def ensure_fresh(self) -> "ComposedBridge":
        """Recompose the translation in place if any hop moved."""
        if self.is_stale():
            if obs.enabled:
                obs.inc("cache.bridge.rebuilt")
            self._rebuild()
        elif obs.enabled:
            obs.inc("cache.bridge.valid")
        return self

    def _rebuild(self) -> None:
        for hop in self.hops:
            hop.ensure_fresh()
        translation = list(self.hops[0].translation)
        for hop in self.hops[1:]:
            step = hop.translation
            # NO_PARTNER is -1: indexing with it would silently read the
            # last slot, so non-positive codes are mapped explicitly.
            translation = [step[code] if code > 0 else code
                           for code in translation]
        translation[NULL_CODE] = NULL_CODE
        self.translation[:] = translation
        self._states = [(hop._source_state, hop._target_state)
                        for hop in self.hops]

    def compose(self, other: "DictionaryBridge | ComposedBridge") -> "ComposedBridge":
        """Extend the chain with further hop(s)."""
        hops = list(self.hops) + (list(other.hops)
                                  if isinstance(other, ComposedBridge)
                                  else [other])
        return ComposedBridge(hops)

    def __repr__(self) -> str:
        matched = sum(1 for code in self.translation[1:] if code != NO_PARTNER)
        return (f"ComposedBridge({self.source.attribute!r} -> "
                f"{self.target.attribute!r}, {len(self.hops)} hops, "
                f"{matched}/{max(0, len(self.translation) - 1)} matched)")


class Column:
    """One dictionary-encoded attribute of a relation.

    * ``codes[tid]`` is the code of the value of this attribute in tuple
      ``tid`` (``TOMBSTONE`` when the tuple is deleted or never existed);
    * ``values[code]`` is the decoded value (``values[0]`` is NULL);
    * ``counts[code]`` is the number of *live* tuples carrying that code.

    The dictionary only ever grows; codes are never reassigned while the
    column object lives (a full rebuild re-interns values but keeps the
    ``codes``/``values``/``counts`` list objects and matcher sets, mutating
    them in place).
    """

    __slots__ = ("attribute", "codes", "values", "counts", "generation",
                 "_code_by_value", "_matchers", "_strings", "_distances",
                 "_order", "_bridges")

    def __init__(self, attribute: str) -> None:
        from repro.relational.types import NULL

        self.attribute = attribute
        self.codes: list[int] = []
        self.values: list[Any] = [NULL]
        self.counts: list[int] = [0]
        #: bumped on every :meth:`_reset`; with the dictionary size it
        #: identifies one dictionary state exactly (the dictionary only
        #: grows between resets), which is what bridges validate against.
        self.generation = 0
        self._code_by_value: dict[Any, int] = {NULL: NULL_CODE}
        self._matchers: dict[Hashable, ConstantMatcher] = {}
        self._strings: list[str] | None = None
        self._distances: dict[Hashable, dict[tuple[int, int], float]] = {}
        self._order: ColumnOrder | None = None
        self._bridges: dict[tuple[int, str], DictionaryBridge] = {}

    # -- encoding ---------------------------------------------------------

    def intern(self, value: Any) -> int:
        """The code of *value*, adding it to the dictionary if unseen."""
        if is_null(value):
            return NULL_CODE
        code = self._code_by_value.get(value)
        if code is None:
            code = len(self.values)
            self.values.append(value)
            self.counts.append(0)
            self._code_by_value[value] = code
            if self._strings is not None:
                self._strings.append(str(value))
            for matcher in self._matchers.values():
                if matcher.predicate(value):
                    matcher.codes.add(code)
        return code

    def code_of(self, value: Any) -> int | None:
        """The code of *value*, or ``None`` when the value was never seen."""
        if is_null(value):
            return NULL_CODE
        return self._code_by_value.get(value)

    def value_of(self, code: int) -> Any:
        """The value a code decodes to."""
        return self.values[code]

    @property
    def strings(self) -> list[str]:
        """``str(value)`` per code (lazily built, then maintained on intern).

        Used by CIND detection, which compares correspondence keys across
        relations by string equality: computing ``str`` once per distinct
        value instead of once per tuple.
        """
        if self._strings is None:
            self._strings = [str(v) for v in self.values]
        return self._strings

    # -- dictionary order -------------------------------------------------

    def order(self) -> ColumnOrder:
        """The dictionary-order view of this column (rebuilt lazily).

        The view is valid for exactly one dictionary size; interning a new
        value invalidates it and the next access sorts afresh.  Unlike
        matcher sets, order views are *not* maintained incrementally —
        consumers (range push-down, MIN/MAX on codes, ORDER BY) hold them
        for at most one query.
        """
        order = self._order
        if order is None or order.size != len(self.values):
            if obs.enabled:
                obs.inc("cache.order.build")
            order = ColumnOrder(self.values)
            self._order = order
        elif obs.enabled:
            obs.inc("cache.order.reuse")
        return order

    # -- constant matchers ------------------------------------------------

    def matcher(self, key: Hashable, predicate: Callable[[Any], bool]) -> ConstantMatcher:
        """The live code set of the non-NULL dictionary values satisfying *predicate*.

        Matchers are deduplicated by *key* (one scan of the dictionary per
        distinct constant, then maintained incrementally as values are
        interned).  The predicate is never shown NULL.
        """
        matcher = self._matchers.get(key)
        if matcher is None:
            if obs.enabled:
                obs.inc("cache.matcher.miss")
            matcher = ConstantMatcher(predicate)
            for code, value in enumerate(self.values):
                if code != NULL_CODE and predicate(value):
                    matcher.codes.add(code)
            self._matchers[key] = matcher
        elif obs.enabled:
            obs.inc("cache.matcher.hit")
        return matcher

    # -- distance memo ----------------------------------------------------

    def distance_cache(self, key: Hashable) -> dict[tuple[int, int], float]:
        """A ``(code, code) → distance`` memo for one distance function.

        The repair cost model stores ``dist(values[a], values[b])`` here,
        keyed by the model's distance-function identity, so repeated cost
        evaluations decode a code pair at most once (the per-code string
        cache makes the miss itself cheap).  Like matcher sets, caches are
        cleared in place on rebuild — codes are re-interned then — so
        long-lived references stay valid.
        """
        cache = self._distances.get(key)
        if cache is None:
            cache = {}
            self._distances[key] = cache
        return cache

    # -- statistics -------------------------------------------------------

    def null_count(self) -> int:
        """Number of live NULLs."""
        return self.counts[NULL_CODE]

    def distinct_count(self) -> int:
        """Number of distinct non-NULL values among live tuples."""
        return sum(1 for count in self.counts[1:] if count > 0)

    def most_common(self) -> tuple[Any, int]:
        """The most frequent live non-NULL value and its count.

        Ties break towards the value interned earliest (the smallest
        code).  That rule is deterministic and stable under incremental
        maintenance, but after deletes it can differ from a fresh scan's
        first-*live*-occurrence order (codes remember the first time a
        value was ever seen, not the earliest live row carrying it).
        Returns ``(None, 0)`` on an all-NULL (or empty) column.
        """
        best_code, best_count = -1, 0
        for code in range(1, len(self.counts)):
            if self.counts[code] > best_count:
                best_code, best_count = code, self.counts[code]
        if best_code < 0:
            return None, 0
        return self.values[best_code], best_count

    # -- bridges ----------------------------------------------------------

    def bridge_to(self, other: "Column", mode: str = "value") -> DictionaryBridge:
        """The fresh code→code bridge from this dictionary into *other*'s.

        Bridges are cached per ``(target column, mode)`` and revalidated on
        every access: if either dictionary grew (or was reset) since the
        last build, the translation array is rebuilt in place before the
        bridge is returned.  The cache holds a strong reference to the
        target column — bridge consumers (join plans, CIND specs) always
        name both relations, which keep their columns alive anyway.
        """
        key = (id(other), mode)
        bridge = self._bridges.get(key)
        if bridge is None or bridge.target is not other:
            if obs.enabled:
                obs.inc("cache.bridge.build")
            bridge = DictionaryBridge(self, other, mode)
            self._bridges[key] = bridge
            return bridge
        return bridge.ensure_fresh()

    # -- maintenance ------------------------------------------------------

    def _reset(self) -> None:
        """Forget all codes and counts in place; registered matchers survive."""
        from repro.relational.types import NULL

        self.generation += 1
        self.codes.clear()
        del self.values[1:]
        del self.counts[1:]
        self.counts[0] = 0
        self._code_by_value = {NULL: NULL_CODE}
        self._strings = None
        self._order = None
        for matcher in self._matchers.values():
            matcher.codes.clear()
        for cache in self._distances.values():
            cache.clear()

    def __repr__(self) -> str:
        return (f"Column({self.attribute!r}, {len(self.values) - 1} distinct values, "
                f"{len(self.codes)} slots)")


class ColumnStore:
    """Dictionary-encoded columns of one relation, versioned like an index."""

    def __init__(self, relation: "Relation") -> None:
        self._relation = relation
        self._columns = [Column(attr.name.lower()) for attr in relation.schema.attributes]
        self._by_name = {column.attribute: column for column in self._columns}
        self._synced_version = -1
        self.rebuild()

    # -- access -----------------------------------------------------------

    @property
    def relation(self) -> "Relation":
        return self._relation

    def column(self, attribute_name: str) -> Column:
        """The column of *attribute_name* (case-insensitive)."""
        column = self._by_name.get(attribute_name.lower())
        if column is None:
            # raises the canonical SchemaError for unknown attributes
            self._relation.schema.position(attribute_name)
            raise AssertionError("unreachable")  # pragma: no cover
        return column

    def column_at(self, position: int) -> Column:
        """The column at schema *position*."""
        return self._columns[position]

    def columns(self) -> list[Column]:
        """All columns in schema order."""
        return list(self._columns)

    def code_arrays(self, positions: Sequence[int]) -> list[list[int]]:
        """The code arrays of the given schema positions (shared, read-only)."""
        return [self._columns[p].codes for p in positions]


    def key_codes(self, tid: int, positions: Sequence[int]) -> tuple[int, ...]:
        """The code tuple of one tuple id over the given positions."""
        return tuple(self._columns[p].codes[tid] for p in positions)

    def partition_groups(self, positions: Sequence[int]) -> dict[Any, list[int]]:
        """Live tids grouped by their code key over *positions* (one pass).

        The substrate of stripped-partition discovery: the code arrays are
        scanned directly — dead slots carry :data:`TOMBSTONE` and are
        skipped — so no tid list is materialised first.  Keys (a bare code
        for one position, a code tuple otherwise) appear in
        first-occurrence order and every tid list is ascending, matching
        the bucket order of a freshly rebuilt
        :class:`~repro.relational.index.HashIndex`.
        """
        arrays = self.code_arrays(positions)
        buckets: dict[Any, list[int]] = {}
        if len(arrays) == 1:
            for tid, code in enumerate(arrays[0]):
                if code == TOMBSTONE:
                    continue
                bucket = buckets.get(code)
                if bucket is None:
                    buckets[code] = [tid]
                else:
                    bucket.append(tid)
        else:
            first = arrays[0]
            for tid, code in enumerate(first):
                if code == TOMBSTONE:
                    continue
                key = tuple(codes[tid] for codes in arrays)
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [tid]
                else:
                    bucket.append(tid)
        return buckets

    # -- maintenance ------------------------------------------------------

    def is_stale(self) -> bool:
        """Whether the relation changed in a way the hooks did not track."""
        return self._synced_version != self._relation.version

    def rebuild(self) -> None:
        """Re-encode the whole relation (in place: array identities survive)."""
        rows = self._relation.rows_items()
        bound = self._relation.tid_bound
        for position, column in enumerate(self._columns):
            column._reset()
            codes = [TOMBSTONE] * bound
            counts = column.counts
            intern = column.intern
            for tid, values in rows:
                code = intern(values[position])
                codes[tid] = code
                counts[code] += 1
            column.codes[:] = codes
        self._synced_version = self._relation.version

    def _in_sync_before_mutation(self) -> bool:
        # A hook fires right after the relation bumped its version; the
        # store can apply the delta only if it was fresh just before.
        return self._synced_version == self._relation.version - 1

    def on_insert(self, tid: int, values: Sequence[Any]) -> None:
        """Hook: *values* (already coerced) were inserted as tuple *tid*."""
        if not self._in_sync_before_mutation():
            return
        for column, value in zip(self._columns, values):
            codes = column.codes
            while len(codes) < tid:
                codes.append(TOMBSTONE)
            code = column.intern(value)
            codes.append(code)
            column.counts[code] += 1
        self._synced_version = self._relation.version

    def on_delete(self, tid: int) -> None:
        """Hook: tuple *tid* was deleted."""
        if not self._in_sync_before_mutation():
            return
        for column in self._columns:
            code = column.codes[tid]
            if code != TOMBSTONE:
                column.counts[code] -= 1
            column.codes[tid] = TOMBSTONE
        self._synced_version = self._relation.version

    def on_update(self, tid: int, position: int, value: Any) -> None:
        """Hook: cell ``(tid, position)`` now holds *value* (already coerced)."""
        if not self._in_sync_before_mutation():
            return
        column = self._columns[position]
        old = column.codes[tid]
        if old != TOMBSTONE:
            column.counts[old] -= 1
        code = column.intern(value)
        column.codes[tid] = code
        column.counts[code] += 1
        self._synced_version = self._relation.version

    def __repr__(self) -> str:
        return (f"ColumnStore({self._relation.name}, {len(self._columns)} columns, "
                f"{'stale' if self.is_stale() else 'fresh'})")
