"""CSV import and export for relations.

The papers' experiments load dirty relations from flat files; this module
provides the equivalent: read a CSV into a :class:`Relation` (with either
a declared schema or type inference) and write a relation back out.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import NULL, AttributeType, infer_type, is_null


def read_csv(path: str | Path, relation_name: str | None = None,
             schema: RelationSchema | None = None, delimiter: str = ",") -> Relation:
    """Read *path* into a relation.

    When *schema* is omitted the header row provides attribute names and
    the narrowest type fitting each column is inferred from the data.
    Empty fields become NULL.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        return _read_csv_stream(handle, relation_name or path.stem, schema, delimiter)


def relation_from_csv(text: str, relation_name: str = "relation",
                      schema: RelationSchema | None = None, delimiter: str = ",") -> Relation:
    """Like :func:`read_csv` but reading from a string (used in tests/examples)."""
    return _read_csv_stream(io.StringIO(text), relation_name, schema, delimiter)


def _read_csv_stream(handle, relation_name: str, schema: RelationSchema | None,
                     delimiter: str) -> Relation:
    reader = csv.reader(handle, delimiter=delimiter)
    rows = [row for row in reader if row]
    if not rows:
        raise SchemaError("cannot read a relation from an empty CSV stream")
    header, data = rows[0], rows[1:]
    header = [name.strip() for name in header]

    if schema is None:
        columns = list(zip(*data)) if data else [[] for _ in header]
        attributes = [
            Attribute(name, infer_type(list(column)))
            for name, column in zip(header, columns)
        ]
        schema = RelationSchema(relation_name, attributes)
    else:
        if len(header) != schema.arity:
            raise SchemaError(
                f"CSV has {len(header)} columns but schema {schema.name!r} expects {schema.arity}"
            )

    relation = Relation(schema)
    for row in data:
        if len(row) != schema.arity:
            raise SchemaError(
                f"CSV row {row!r} has {len(row)} fields, expected {schema.arity}"
            )
        relation.insert([NULL if field == "" else field for field in row])
    return relation


def relation_to_csv(relation: Relation, path: str | Path | None = None,
                    delimiter: str = ",") -> str:
    """Write *relation* as CSV; returns the CSV text (and writes to *path* if given)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    writer.writerow(relation.schema.attribute_names)
    for row in relation:
        writer.writerow(["" if is_null(value) else _render(value) for value in row.values])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def _render(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def write_rows_csv(path: str | Path, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Write arbitrary rows (e.g. benchmark results) to a CSV file."""
    with Path(path).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, lineterminator="\n")
        writer.writerow(list(header))
        for row in rows:
            writer.writerow(list(row))
