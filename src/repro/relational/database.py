"""A database is a named catalog of relations.

The :class:`Database` keeps relations by (case-insensitive) name and is
what the SQL engine, the Semandaq session and the CIND machinery operate
on: CINDs relate two relations, so a single-relation API is not enough.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence, Any

from repro.errors import CatalogError
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


class Database:
    """A catalog of named relations."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._relations: dict[str, Relation] = {}

    # -- catalog management ----------------------------------------------

    def add(self, relation: Relation, replace: bool = False) -> Relation:
        """Register *relation* under its schema name.

        Raises :class:`~repro.errors.CatalogError` if a relation of the
        same name exists and *replace* is false.
        """
        key = relation.name.lower()
        if key in self._relations and not replace:
            raise CatalogError(f"database {self.name!r} already has a relation {relation.name!r}")
        self._relations[key] = relation
        return relation

    def create(self, schema: RelationSchema, replace: bool = False) -> Relation:
        """Create and register an empty relation with *schema*."""
        return self.add(Relation(schema), replace=replace)

    def create_from_dicts(self, schema: RelationSchema, rows: Sequence[Mapping[str, Any]],
                          replace: bool = False) -> Relation:
        """Create, populate from dict rows, and register a relation."""
        return self.add(Relation.from_dicts(schema, rows), replace=replace)

    def drop(self, relation_name: str) -> None:
        """Remove a relation from the catalog."""
        key = relation_name.lower()
        if key not in self._relations:
            raise CatalogError(f"database {self.name!r} has no relation {relation_name!r}")
        del self._relations[key]

    def relation(self, relation_name: str) -> Relation:
        """Look up a relation by (case-insensitive) name."""
        key = relation_name.lower()
        if key not in self._relations:
            known = ", ".join(sorted(r.name for r in self._relations.values())) or "<empty>"
            raise CatalogError(
                f"database {self.name!r} has no relation {relation_name!r}; known: {known}"
            )
        return self._relations[key]

    def has_relation(self, relation_name: str) -> bool:
        """Whether the catalog contains *relation_name*."""
        return relation_name.lower() in self._relations

    def relation_names(self) -> list[str]:
        """Names of all registered relations."""
        return [relation.name for relation in self._relations.values()]

    def __contains__(self, relation_name: str) -> bool:
        return self.has_relation(relation_name)

    def __getitem__(self, relation_name: str) -> Relation:
        return self.relation(relation_name)

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    # -- convenience -----------------------------------------------------

    def copy(self, name: str | None = None) -> "Database":
        """Deep copy of the whole database (used by repair and CQA)."""
        clone = Database(name or self.name)
        for relation in self._relations.values():
            clone.add(relation.copy())
        return clone

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(relation) for relation in self._relations.values())

    def __repr__(self) -> str:
        parts = ", ".join(f"{r.name}({len(r)})" for r in self._relations.values())
        return f"Database({self.name}: {parts})"
