"""Scalar expressions with SQL three-valued logic.

The expression AST is shared by the relational-algebra layer and the SQL
executor: column references, literals, comparisons, boolean connectives,
arithmetic, ``IS NULL``, ``IN``, ``LIKE`` and a handful of scalar
functions.  Evaluation takes an :class:`EvaluationContext` that resolves
column references to values; boolean results use three-valued logic with
``UNKNOWN`` represented by the NULL marker.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.errors import SQLExecutionError
from repro.relational.types import NULL, is_null, sort_key


class EvaluationContext:
    """Resolves (qualified) column names to values during evaluation.

    *bindings* maps lower-cased names to values.  A column can be bound
    both unqualified (``'zip'``) and qualified (``'t1.zip'``); qualified
    lookups are attempted first when a qualifier is present.
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Mapping[str, Any]) -> None:
        self._bindings = {key.lower(): value for key, value in bindings.items()}

    @classmethod
    def from_tuple(cls, row: "Any", alias: str | None = None) -> "EvaluationContext":
        """Context exposing one relation tuple, optionally under an alias."""
        bindings: dict[str, Any] = {}
        for name in row.schema.attribute_names:
            bindings[name.lower()] = row[name]
            if alias:
                bindings[f"{alias.lower()}.{name.lower()}"] = row[name]
        return cls(bindings)

    def merged_with(self, other: "EvaluationContext") -> "EvaluationContext":
        """Context containing the bindings of both contexts (other wins ties)."""
        merged = dict(self._bindings)
        merged.update(other._bindings)
        return EvaluationContext(merged)

    def lookup(self, name: str, qualifier: str | None = None) -> Any:
        """Resolve a column reference; raises when the name is unknown."""
        if qualifier is not None:
            key = f"{qualifier.lower()}.{name.lower()}"
            if key in self._bindings:
                return self._bindings[key]
            raise SQLExecutionError(f"unknown column {qualifier}.{name}")
        key = name.lower()
        if key in self._bindings:
            return self._bindings[key]
        # fall back: a unique qualified binding with this column part
        matches = [v for k, v in self._bindings.items() if k.endswith(f".{key}")]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise SQLExecutionError(f"ambiguous column reference {name!r}")
        raise SQLExecutionError(f"unknown column {name!r}")

    def names(self) -> list[str]:
        return list(self._bindings.keys())


class Expression:
    """Base class of all scalar expressions."""

    def evaluate(self, context: EvaluationContext) -> Any:
        raise NotImplementedError

    def references(self) -> set[str]:
        """Unqualified column names referenced by this expression."""
        return set()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, context: EvaluationContext) -> Any:
        return self.value

    def __str__(self) -> str:
        if is_null(self.value):
            return "NULL"
        if isinstance(self.value, str):
            return "'" + self.value.replace("'", "''") + "'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a column, optionally qualified by a relation alias."""

    name: str
    qualifier: str | None = None

    def evaluate(self, context: EvaluationContext) -> Any:
        return context.lookup(self.name, self.qualifier)

    def references(self) -> set[str]:
        return {self.name.lower()}

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


_COMPARISONS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: sort_key(a) < sort_key(b),
    "<=": lambda a, b: sort_key(a) <= sort_key(b),
    ">": lambda a, b: sort_key(a) > sort_key(b),
    ">=": lambda a, b: sort_key(a) >= sort_key(b),
}


@dataclass(frozen=True)
class Comparison(Expression):
    """Binary comparison with SQL NULL semantics (NULL compares to UNKNOWN)."""

    operator: str
    left: Expression
    right: Expression

    def evaluate(self, context: EvaluationContext) -> Any:
        left = self.left.evaluate(context)
        right = self.right.evaluate(context)
        if is_null(left) or is_null(right):
            return NULL
        if self.operator not in _COMPARISONS:
            raise SQLExecutionError(f"unknown comparison operator {self.operator!r}")
        if self.operator in ("=", "!=", "<>"):
            result = _COMPARISONS[self.operator](_normalize(left), _normalize(right))
        else:
            result = _COMPARISONS[self.operator](left, right)
        return result

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def __str__(self) -> str:
        return f"({self.left} {self.operator} {self.right})"


def _normalize(value: Any) -> Any:
    """Make int/float comparisons symmetric (1 == 1.0)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    return value


@dataclass(frozen=True)
class And(Expression):
    """Three-valued conjunction."""

    operands: tuple[Expression, ...]

    def evaluate(self, context: EvaluationContext) -> Any:
        saw_unknown = False
        for operand in self.operands:
            value = operand.evaluate(context)
            if is_null(value):
                saw_unknown = True
            elif not value:
                return False
        return NULL if saw_unknown else True

    def references(self) -> set[str]:
        refs: set[str] = set()
        for operand in self.operands:
            refs |= operand.references()
        return refs

    def __str__(self) -> str:
        return "(" + " AND ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Expression):
    """Three-valued disjunction."""

    operands: tuple[Expression, ...]

    def evaluate(self, context: EvaluationContext) -> Any:
        saw_unknown = False
        for operand in self.operands:
            value = operand.evaluate(context)
            if is_null(value):
                saw_unknown = True
            elif value:
                return True
        return NULL if saw_unknown else False

    def references(self) -> set[str]:
        refs: set[str] = set()
        for operand in self.operands:
            refs |= operand.references()
        return refs

    def __str__(self) -> str:
        return "(" + " OR ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expression):
    """Three-valued negation."""

    operand: Expression

    def evaluate(self, context: EvaluationContext) -> Any:
        value = self.operand.evaluate(context)
        if is_null(value):
            return NULL
        return not value

    def references(self) -> set[str]:
        return self.operand.references()

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False

    def evaluate(self, context: EvaluationContext) -> Any:
        value = self.operand.evaluate(context)
        result = is_null(value)
        return (not result) if self.negated else result

    def references(self) -> set[str]:
        return self.operand.references()

    def __str__(self) -> str:
        return f"({self.operand} IS {'NOT ' if self.negated else ''}NULL)"


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    values: tuple[Expression, ...]
    negated: bool = False

    def evaluate(self, context: EvaluationContext) -> Any:
        value = self.operand.evaluate(context)
        if is_null(value):
            return NULL
        saw_unknown = False
        for candidate in self.values:
            other = candidate.evaluate(context)
            if is_null(other):
                saw_unknown = True
                continue
            if _normalize(other) == _normalize(value):
                return False if self.negated else True
        if saw_unknown:
            return NULL
        return True if self.negated else False

    def references(self) -> set[str]:
        refs = self.operand.references()
        for value in self.values:
            refs |= value.references()
        return refs

    def __str__(self) -> str:
        values = ", ".join(str(v) for v in self.values)
        return f"({self.operand} {'NOT ' if self.negated else ''}IN ({values}))"


@dataclass(frozen=True)
class Like(Expression):
    """SQL ``LIKE`` with ``%`` and ``_`` wildcards."""

    operand: Expression
    pattern: str
    negated: bool = False

    def evaluate(self, context: EvaluationContext) -> Any:
        value = self.operand.evaluate(context)
        if is_null(value):
            return NULL
        regex = _like_to_regex(self.pattern)
        result = bool(regex.fullmatch(str(value)))
        return (not result) if self.negated else result

    def references(self) -> set[str]:
        return self.operand.references()

    def __str__(self) -> str:
        return f"({self.operand} {'NOT ' if self.negated else ''}LIKE '{self.pattern}')"


def _like_to_regex(pattern: str) -> re.Pattern[str]:
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("".join(parts), re.DOTALL)


_ARITHMETIC: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Binary arithmetic; NULL-propagating."""

    operator: str
    left: Expression
    right: Expression

    def evaluate(self, context: EvaluationContext) -> Any:
        left = self.left.evaluate(context)
        right = self.right.evaluate(context)
        if is_null(left) or is_null(right):
            return NULL
        if self.operator not in _ARITHMETIC:
            raise SQLExecutionError(f"unknown arithmetic operator {self.operator!r}")
        try:
            return _ARITHMETIC[self.operator](left, right)
        except ZeroDivisionError:
            return NULL
        except TypeError as exc:
            raise SQLExecutionError(
                f"cannot apply {self.operator!r} to {left!r} and {right!r}"
            ) from exc

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def __str__(self) -> str:
        return f"({self.left} {self.operator} {self.right})"


_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "upper": lambda v: NULL if is_null(v) else str(v).upper(),
    "lower": lambda v: NULL if is_null(v) else str(v).lower(),
    "length": lambda v: NULL if is_null(v) else len(str(v)),
    "trim": lambda v: NULL if is_null(v) else str(v).strip(),
    "abs": lambda v: NULL if is_null(v) else abs(v),
    "coalesce": lambda *vs: next((v for v in vs if not is_null(v)), NULL),
    "concat": lambda *vs: NULL if any(is_null(v) for v in vs) else "".join(str(v) for v in vs),
}


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A scalar function call (UPPER, LOWER, LENGTH, TRIM, ABS, COALESCE, CONCAT)."""

    name: str
    arguments: tuple[Expression, ...]

    def evaluate(self, context: EvaluationContext) -> Any:
        func = _FUNCTIONS.get(self.name.lower())
        if func is None:
            raise SQLExecutionError(f"unknown function {self.name!r}")
        values = [arg.evaluate(context) for arg in self.arguments]
        return func(*values)

    def references(self) -> set[str]:
        refs: set[str] = set()
        for argument in self.arguments:
            refs |= argument.references()
        return refs

    def __str__(self) -> str:
        return f"{self.name.upper()}({', '.join(str(a) for a in self.arguments)})"


def conjunction(operands: Sequence[Expression]) -> Expression:
    """AND of *operands*, simplified for the 0- and 1-operand cases."""
    operands = [op for op in operands if op is not None]
    if not operands:
        return Literal(True)
    if len(operands) == 1:
        return operands[0]
    return And(tuple(operands))


def disjunction(operands: Sequence[Expression]) -> Expression:
    """OR of *operands*, simplified for the 0- and 1-operand cases."""
    operands = [op for op in operands if op is not None]
    if not operands:
        return Literal(False)
    if len(operands) == 1:
        return operands[0]
    return Or(tuple(operands))


def truth(value: Any) -> bool:
    """Collapse a three-valued result to a WHERE-clause decision (UNKNOWN → False)."""
    if is_null(value):
        return False
    return bool(value)
