"""Hash indexes over one or more attributes of a relation.

Indexes map a key (the tuple of values of the indexed attributes) to the
set of tuple ids having that key.  They are the workhorse of direct CFD
violation detection (group tuples by the LHS attributes), of hash joins in
the algebra/SQL layers, and of incremental detection.

An index is a snapshot: it remembers the relation ``version`` it was built
against and can report staleness; callers decide whether to rebuild or to
maintain it incrementally via :meth:`HashIndex.add_tuple` /
:meth:`HashIndex.remove_tuple`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterator, Sequence

from repro.relational.relation import Relation, Tuple


class HashIndex:
    """Hash index of a relation on a list of attributes."""

    def __init__(self, relation: Relation, attribute_names: Sequence[str]) -> None:
        self._relation = relation
        self._attribute_names = [relation.schema.canonical_name(a) for a in attribute_names]
        self._positions = relation.schema.positions(attribute_names)
        self._buckets: dict[tuple[Any, ...], set[int]] = defaultdict(set)
        self._built_version = -1
        self.rebuild()

    # -- construction / maintenance ---------------------------------------

    def rebuild(self) -> None:
        """Re-scan the relation and rebuild all buckets."""
        self._buckets.clear()
        for row in self._relation:
            key = tuple(row.at(p) for p in self._positions)
            self._buckets[key].add(row.tid)
        self._built_version = self._relation.version

    def add_tuple(self, row: Tuple) -> None:
        """Register a newly inserted tuple without a full rebuild."""
        key = tuple(row.at(p) for p in self._positions)
        self._buckets[key].add(row.tid)

    def remove_tuple(self, row: Tuple) -> None:
        """Remove a tuple from the index (by its pre-deletion values)."""
        key = tuple(row.at(p) for p in self._positions)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(row.tid)
        if not bucket:
            del self._buckets[key]

    def is_stale(self) -> bool:
        """Whether the underlying relation changed since the index was built."""
        return self._built_version != self._relation.version

    # -- lookups -----------------------------------------------------------

    @property
    def attribute_names(self) -> list[str]:
        return list(self._attribute_names)

    def key_of(self, row: Tuple) -> tuple[Any, ...]:
        """The index key of *row*."""
        return tuple(row.at(p) for p in self._positions)

    def lookup(self, key: Sequence[Any]) -> set[int]:
        """Tuple ids whose indexed attributes equal *key* (empty set if none)."""
        return set(self._buckets.get(tuple(key), ()))

    def groups(self) -> Iterator[tuple[tuple[Any, ...], set[int]]]:
        """Iterate over ``(key, tids)`` buckets."""
        for key, tids in self._buckets.items():
            yield key, set(tids)

    def keys(self) -> list[tuple[Any, ...]]:
        """All distinct keys present in the relation."""
        return list(self._buckets.keys())

    def group_count(self) -> int:
        """Number of distinct keys."""
        return len(self._buckets)

    def largest_group(self) -> tuple[tuple[Any, ...] | None, int]:
        """The key with the most tuples and its cardinality."""
        if not self._buckets:
            return None, 0
        key = max(self._buckets, key=lambda k: len(self._buckets[k]))
        return key, len(self._buckets[key])

    def __len__(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:
        return (
            f"HashIndex({self._relation.name}[{', '.join(self._attribute_names)}], "
            f"{len(self._buckets)} keys)"
        )
