"""Hash indexes over one or more attributes of a relation.

Indexes map a key (the indexed attributes of a tuple) to the set of tuple
ids having that key.  They are the workhorse of direct CFD violation
detection (group tuples by the LHS attributes), of hash joins in the
algebra/SQL layers, and of incremental detection.

By default an index is *columnar*: buckets are keyed by tuples of integer
codes from the relation's :class:`~repro.relational.columns.ColumnStore`,
so a rebuild is a single pass of integer array reads and key comparison
never touches raw values.  ``use_columns=False`` selects the original
row-at-a-time build (value-keyed buckets) — kept as the baseline that the
columnar benchmarks and parity tests compare against.

The *value*-level API (:meth:`lookup`, :meth:`groups`, :meth:`keys`) is
unchanged and works against either representation; code-level accessors
(:meth:`key_of`, :meth:`bucket_view`, :meth:`bucket_items`) expose the
internal keys for hot paths.  An index is a snapshot: it remembers the
relation ``version`` it was built against and can report staleness;
callers decide whether to rebuild or to maintain it incrementally via
:meth:`HashIndex.add_tuple` / :meth:`HashIndex.remove_tuple`.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro import obs
from repro.relational.columns import Column
from repro.relational.relation import Relation, Tuple

_EMPTY: frozenset[int] = frozenset()


class HashIndex:
    """Hash index of a relation on a list of attributes."""

    def __init__(self, relation: Relation, attribute_names: Sequence[str],
                 use_columns: bool = True) -> None:
        self._relation = relation
        self._attribute_names = [relation.schema.canonical_name(a) for a in attribute_names]
        self._positions = relation.schema.positions(attribute_names)
        self._use_columns = use_columns
        self._columns: list[Column] = []
        self._buckets: dict[tuple[Any, ...], set[int]] = {}
        self._built_version = -1
        self.rebuild()

    # -- construction / maintenance ---------------------------------------

    def rebuild(self) -> None:
        """Re-scan the relation and rebuild all buckets."""
        if obs.enabled:
            obs.inc("cache.index.rebuild")
        buckets: dict[tuple[Any, ...], set[int]] = {}
        if self._use_columns:
            store = self._relation.columns
            self._columns = [store.column_at(p) for p in self._positions]
            arrays = [column.codes for column in self._columns]
            if len(arrays) == 1:
                codes = arrays[0]
                for tid in self._relation.tids():
                    key = (codes[tid],)
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = {tid}
                    else:
                        bucket.add(tid)
            else:
                for tid in self._relation.tids():
                    key = tuple(codes[tid] for codes in arrays)
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = {tid}
                    else:
                        bucket.add(tid)
        else:
            for row in self._relation:
                key = tuple(row.at(p) for p in self._positions)
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = {row.tid}
                else:
                    bucket.add(row.tid)
        self._buckets = buckets
        self._built_version = self._relation.version

    def add_tuple(self, row: Tuple) -> tuple[Any, ...]:
        """Register a newly inserted tuple; returns its internal bucket key."""
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = {row.tid}
        else:
            bucket.add(row.tid)
        return key

    def remove_tuple(self, row: Tuple) -> tuple[Any, ...]:
        """Remove a tuple (by its pre-deletion values); returns its bucket key."""
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(row.tid)
            if not bucket:
                del self._buckets[key]
        return key

    def is_stale(self) -> bool:
        """Whether the underlying relation changed since the index was built."""
        return self._built_version != self._relation.version

    # -- key encoding ------------------------------------------------------

    @property
    def attribute_names(self) -> list[str]:
        return list(self._attribute_names)

    @property
    def is_columnar(self) -> bool:
        """Whether buckets are keyed by column codes (the default)."""
        return self._use_columns

    def key_of(self, row: Tuple) -> tuple[Any, ...]:
        """The *internal* bucket key of *row*: codes when columnar, else values."""
        if self._use_columns:
            return tuple(column.intern(row.at(p))
                         for column, p in zip(self._columns, self._positions))
        return tuple(row.at(p) for p in self._positions)

    def encode_key(self, key: Sequence[Any]) -> tuple[Any, ...] | None:
        """Translate a *value* key to the internal key, or ``None`` if unseen."""
        key = tuple(key)
        if not self._use_columns:
            return key
        if len(key) != len(self._columns):
            return None
        codes = []
        for column, value in zip(self._columns, key):
            code = column.code_of(value)
            if code is None:
                return None
            codes.append(code)
        return tuple(codes)

    def decode_key(self, key: tuple[Any, ...]) -> tuple[Any, ...]:
        """Translate an internal bucket key back to attribute values."""
        if not self._use_columns:
            return key
        return tuple(column.values[code] for column, code in zip(self._columns, key))

    # -- lookups -----------------------------------------------------------

    def lookup(self, key: Sequence[Any]) -> set[int]:
        """Tuple ids whose indexed attributes equal the *value* key *key*.

        Returns a fresh, caller-owned set (a copy).  Hot paths that only
        read should use :meth:`lookup_view` / :meth:`bucket_view` instead.
        """
        return set(self.lookup_view(key))

    def lookup_view(self, key: Sequence[Any]) -> set[int] | frozenset[int]:
        """Non-copying :meth:`lookup`: the internal bucket set, **read-only**.

        The returned set is live storage — it reflects later index updates
        and must not be mutated by the caller.
        """
        encoded = self.encode_key(key)
        if encoded is None:
            return _EMPTY
        return self._buckets.get(encoded, _EMPTY)

    def bucket_view(self, key: tuple[Any, ...]) -> set[int] | frozenset[int]:
        """The bucket of an *internal* key (from :meth:`key_of`), **read-only**."""
        return self._buckets.get(key, _EMPTY)

    def groups(self) -> Iterator[tuple[tuple[Any, ...], set[int]]]:
        """Iterate over ``(value key, tids)`` buckets.

        Keys are decoded to attribute values and the tid sets are copies,
        so the result is safe to keep or mutate; hot paths should iterate
        :meth:`bucket_items` instead.
        """
        for key, tids in self._buckets.items():
            yield self.decode_key(key), set(tids)

    def bucket_items(self) -> Iterator[tuple[tuple[Any, ...], set[int]]]:
        """Non-copying iteration over the raw ``(internal key, tids)`` buckets.

        Keys are code tuples when the index is columnar (NULL is
        :data:`~repro.relational.columns.NULL_CODE` in every component),
        attribute-value tuples otherwise.  The tid sets are live storage
        and must not be mutated.
        """
        return iter(self._buckets.items())

    def keys(self) -> list[tuple[Any, ...]]:
        """All distinct value keys present in the relation."""
        return [self.decode_key(key) for key in self._buckets]

    def group_count(self) -> int:
        """Number of distinct keys."""
        return len(self._buckets)

    def largest_group(self) -> tuple[tuple[Any, ...] | None, int]:
        """The value key with the most tuples and its cardinality."""
        if not self._buckets:
            return None, 0
        key = max(self._buckets, key=lambda k: len(self._buckets[k]))
        return self.decode_key(key), len(self._buckets[key])

    def __len__(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:
        return (
            f"HashIndex({self._relation.name}[{', '.join(self._attribute_names)}], "
            f"{len(self._buckets)} keys, {'columnar' if self._use_columns else 'rows'})"
        )
