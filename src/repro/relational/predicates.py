"""Value-predicate → dictionary-code-set compilation over columns.

Every hot path that tests column values against constants — CFD/CIND
pattern matching in :mod:`repro.detection`, the SQL WHERE push-down in
:mod:`repro.relational.sql` — compiles the constant once into the set of
dictionary codes it selects, turning per-tuple value tests into integer
set membership.  This module is the shared home of those compilers (SQL
used to import them from ``repro.detection.columnar``, an inverted
dependency):

* :func:`constant_code_set` — the live code set matching one constant
  under the ``≍`` equality of CFD patterns (int/str tolerant, NULL never
  matches).  Backed by :meth:`~repro.relational.columns.Column.matcher`,
  so the set is maintained in place as the dictionary grows — safe to
  hold inside long-lived compiled detection plans.
* :func:`equality_code_set` — SQL ``=`` / ``IN`` (and their negations)
  over string literals: exact string equality degenerates to plain
  ``code_of`` lookups; the negated forms take the complement over the
  current dictionary.  NULL is excluded either way (``NULL != 'x'`` is
  UNKNOWN).  The returned set is a per-query snapshot, nothing is
  retained on the column.
* :func:`range_code_set` — SQL ``<`` / ``<=`` / ``>`` / ``>=`` (and the
  parser's desugared ``BETWEEN``): bisects the column's lazily rebuilt
  dictionary-order view (:meth:`~repro.relational.columns.Column.order`)
  under the same :func:`~repro.relational.types.sort_key` total order
  the row-at-a-time comparisons use.  Also a per-query snapshot.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable

from repro.relational.columns import NULL_CODE, Column
from repro.relational.types import constants_equal, is_null

__all__ = ["constant_code_set", "equality_code_set", "range_code_set",
           "RANGE_OPERATORS"]

#: the comparison operators :func:`range_code_set` compiles.
RANGE_OPERATORS = ("<", "<=", ">", ">=")


def _matcher_key(constant: Any) -> Hashable:
    # 1 and 1.0 hash alike but match different string forms, so the type
    # name participates in the cache key.
    return ("constant", type(constant).__name__, constant)


def constant_code_set(column: Column, constant: Any) -> set[int]:
    """The live set of codes of *column* matching *constant* (``≍`` semantics).

    NULL never matches a constant, so :data:`~repro.relational.columns.NULL_CODE`
    is never included.  The set is maintained by the column as its
    dictionary grows.
    """
    matcher = column.matcher(
        _matcher_key(constant), lambda value, c=constant: constants_equal(value, c))
    return matcher.codes


def equality_code_set(column: Column, constants: Iterable[str],
                      negated: bool = False) -> set[int]:
    """The codes of *column* selected by ``col [NOT] IN (constants)``.

    String equality is exact, so the positive form is plain ``code_of``
    lookups (an unseen literal selects nothing); the negated form is the
    complement over the current dictionary.  NULL is excluded from both.
    """
    codes = {column.code_of(constant) for constant in constants}
    codes.discard(None)
    if negated:
        codes = set(range(1, len(column.values))) - codes
    return codes


def range_code_set(column: Column, operator: str, bound: Any) -> set[int]:
    """The codes of *column* satisfying ``value <operator> bound``.

    *operator* is one of :data:`RANGE_OPERATORS`.  A NULL *bound* selects
    nothing (every comparison against NULL is UNKNOWN); NULL cells are
    never selected.  The comparison is the engine's ``sort_key`` total
    order — exactly what the row-at-a-time evaluation of ``<`` etc. uses,
    so push-down changes execution, never results.
    """
    if is_null(bound):
        return set()
    return column.order().codes_in_range(operator, bound)
