"""Relations: mutable row stores with stable tuple identifiers.

A :class:`Relation` owns a :class:`~repro.relational.schema.RelationSchema`
and a set of tuples.  Every tuple receives a *tuple id* (``tid``) that is
stable across updates and never reused after deletion — violation reports,
repairs and incremental detection all refer to cells as ``(tid, attribute)``
pairs, so stability matters.

Tuples are stored as lists indexed by attribute position; the
:class:`Tuple` wrapper gives dict-like access by attribute name without
copying.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import RelationError, SchemaError
from repro.relational.columns import ColumnStore
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import NULL, coerce_value, is_null, sort_key, value_repr


class Tuple:
    """A read-mostly view of one row of a relation.

    Supports access by attribute name (``t['zip']``), by position
    (``t.at(3)``) and conversion to a plain dict.  Equality and hashing
    are value-based (the tid is excluded) so tuples can be deduplicated.
    """

    __slots__ = ("tid", "_schema", "_values")

    def __init__(self, tid: int, schema: RelationSchema, values: list[Any]) -> None:
        self.tid = tid
        self._schema = schema
        self._values = values

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    @property
    def values(self) -> tuple[Any, ...]:
        """The row values in schema order."""
        return tuple(self._values)

    def __getitem__(self, attribute_name: str) -> Any:
        return self._values[self._schema.position(attribute_name)]

    def get(self, attribute_name: str, default: Any = NULL) -> Any:
        """Value of *attribute_name*, or *default* when the attribute is unknown."""
        try:
            return self[attribute_name]
        except SchemaError:
            return default

    def at(self, position: int) -> Any:
        """Value at 0-based *position*."""
        return self._values[position]

    def project(self, attribute_names: Sequence[str]) -> tuple[Any, ...]:
        """Values of *attribute_names*, in that order."""
        return tuple(self._values[self._schema.position(name)] for name in attribute_names)

    def as_dict(self) -> dict[str, Any]:
        """A plain ``{attribute: value}`` dict copy of this row."""
        return dict(zip(self._schema.attribute_names, self._values))

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return tuple(self._values) == tuple(other._values)

    def __hash__(self) -> int:
        return hash(tuple(self._values))

    def __repr__(self) -> str:
        cells = ", ".join(
            f"{name}={value_repr(value)}"
            for name, value in zip(self._schema.attribute_names, self._values)
        )
        return f"Tuple(tid={self.tid}, {cells})"


class Relation:
    """A mutable bag of typed tuples with stable tuple ids."""

    def __init__(self, schema: RelationSchema) -> None:
        self._schema = schema
        self._rows: dict[int, list[Any]] = {}
        self._next_tid = 0
        self._version = 0
        self._column_store: ColumnStore | None = None

    # -- construction ----------------------------------------------------

    @classmethod
    def from_dicts(cls, schema: RelationSchema, rows: Iterable[Mapping[str, Any]]) -> "Relation":
        """Build a relation from ``{attribute: value}`` mappings."""
        relation = cls(schema)
        for row in rows:
            relation.insert_dict(row)
        return relation

    @classmethod
    def from_rows(cls, schema: RelationSchema, rows: Iterable[Sequence[Any]]) -> "Relation":
        """Build a relation from positional value sequences."""
        relation = cls(schema)
        for row in rows:
            relation.insert(row)
        return relation

    # -- accessors -------------------------------------------------------

    @property
    def schema(self) -> RelationSchema:
        return self._schema

    @property
    def name(self) -> str:
        return self._schema.name

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every mutation (used by indexes/caches)."""
        return self._version

    @property
    def tid_bound(self) -> int:
        """Exclusive upper bound on tuple ids ever assigned (tids are never reused)."""
        return self._next_tid

    @property
    def columns(self) -> ColumnStore:
        """The dictionary-encoded column store of this relation.

        Built lazily on first access, then maintained incrementally by the
        mutation methods; rebuilt transparently when a change the hooks
        could not track left it stale.
        """
        store = self._column_store
        if store is None:
            store = ColumnStore(self)
            self._column_store = store
        elif store.is_stale():
            store.rebuild()
        return store

    def rows_items(self) -> list[tuple[int, list[Any]]]:
        """``(tid, values)`` pairs in insertion order.

        The value lists are the live storage — fast-path callers (the
        column store) must not mutate them.
        """
        return list(self._rows.items())

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Tuple]:
        for tid, values in self._rows.items():
            yield Tuple(tid, self._schema, values)

    def __contains__(self, tid: int) -> bool:
        return tid in self._rows

    def tids(self) -> list[int]:
        """All live tuple ids (insertion order)."""
        return list(self._rows.keys())

    def tuple(self, tid: int) -> Tuple:
        """The tuple with id *tid*; raises :class:`RelationError` if absent."""
        if tid not in self._rows:
            raise RelationError(f"relation {self.name!r} has no tuple with tid {tid}")
        return Tuple(tid, self._schema, self._rows[tid])

    def value(self, tid: int, attribute_name: str) -> Any:
        """Value of cell ``(tid, attribute_name)``."""
        return self.tuple(tid)[attribute_name]

    def tuples(self) -> list[Tuple]:
        """All tuples as a list (insertion order)."""
        return list(iter(self))

    def column(self, attribute_name: str) -> list[Any]:
        """All values of one attribute, in tuple order."""
        position = self._schema.position(attribute_name)
        return [values[position] for values in self._rows.values()]

    def active_domain(self, attribute_name: str) -> set[Any]:
        """Distinct non-NULL values appearing in *attribute_name*."""
        return {v for v in self.column(attribute_name) if not is_null(v)}

    # -- mutation --------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> int:
        """Insert a positional row; returns the new tuple id."""
        if len(row) != self._schema.arity:
            raise RelationError(
                f"relation {self.name!r} expects {self._schema.arity} values, got {len(row)}"
            )
        values = [
            coerce_value(value, attr.type)
            for value, attr in zip(row, self._schema.attributes)
        ]
        tid = self._next_tid
        self._next_tid += 1
        self._rows[tid] = values
        self._version += 1
        if self._column_store is not None:
            self._column_store.on_insert(tid, values)
        return tid

    def insert_dict(self, row: Mapping[str, Any]) -> int:
        """Insert a row given as a ``{attribute: value}`` mapping.

        Missing attributes become NULL; unknown attributes raise
        :class:`~repro.errors.SchemaError`.
        """
        lowered = {key.lower(): value for key, value in row.items()}
        for key in lowered:
            self._schema.position(key)  # validates the attribute exists
        positional = [
            lowered.get(attr.name.lower(), NULL) for attr in self._schema.attributes
        ]
        return self.insert(positional)

    def insert_tuple(self, source: Tuple) -> int:
        """Insert a copy of a tuple (possibly coming from another relation)."""
        return self.insert(list(source.values))

    def delete(self, tid: int) -> None:
        """Delete the tuple with id *tid*."""
        if tid not in self._rows:
            raise RelationError(f"relation {self.name!r} has no tuple with tid {tid}")
        del self._rows[tid]
        self._version += 1
        if self._column_store is not None:
            self._column_store.on_delete(tid)

    def update(self, tid: int, attribute_name: str, value: Any) -> Any:
        """Set cell ``(tid, attribute_name)`` to *value*; returns the old value."""
        if tid not in self._rows:
            raise RelationError(f"relation {self.name!r} has no tuple with tid {tid}")
        position = self._schema.position(attribute_name)
        attr = self._schema.attributes[position]
        old = self._rows[tid][position]
        coerced = coerce_value(value, attr.type)
        self._rows[tid][position] = coerced
        self._version += 1
        if self._column_store is not None:
            self._column_store.on_update(tid, position, coerced)
        return old

    def update_dict(self, tid: int, changes: Mapping[str, Any]) -> dict[str, Any]:
        """Apply several cell updates to one tuple; returns the old values."""
        old_values = {}
        for attribute_name, value in changes.items():
            old_values[attribute_name] = self.update(tid, attribute_name, value)
        return old_values

    def clear(self) -> None:
        """Remove all tuples (tuple ids are still never reused)."""
        self._rows.clear()
        self._version += 1

    # -- copies and views -------------------------------------------------

    def copy(self, name: str | None = None) -> "Relation":
        """Deep copy of this relation, preserving tuple ids."""
        clone = Relation(self._schema if name is None else self._schema.renamed_relation(name))
        clone._rows = {tid: list(values) for tid, values in self._rows.items()}
        clone._next_tid = self._next_tid
        return clone

    def project_relation(self, attribute_names: Sequence[str], name: str | None = None,
                         distinct: bool = False) -> "Relation":
        """New relation containing only *attribute_names* (optionally deduplicated)."""
        target_schema = self._schema.project(attribute_names, name or self.name)
        result = Relation(target_schema)
        seen: set[tuple[Any, ...]] = set()
        positions = self._schema.positions(attribute_names)
        for values in self._rows.values():
            row = tuple(values[p] for p in positions)
            if distinct:
                if row in seen:
                    continue
                seen.add(row)
            result.insert(row)
        return result

    def filter(self, predicate: Callable[[Tuple], bool], name: str | None = None) -> "Relation":
        """New relation with the tuples satisfying *predicate* (tids preserved)."""
        result = Relation(self._schema if name is None else self._schema.renamed_relation(name))
        kept = {t.tid: list(t.values) for t in self if predicate(t)}
        result._rows = kept
        result._next_tid = self._next_tid
        return result

    def sorted_tuples(self, attribute_names: Sequence[str] | None = None) -> list[Tuple]:
        """Tuples sorted by the given attributes (or the whole row)."""
        names = list(attribute_names) if attribute_names else list(self._schema.attribute_names)
        return sorted(self, key=lambda t: tuple(sort_key(v) for v in t.project(names)))

    # -- diagnostics -----------------------------------------------------

    def count_distinct(self, attribute_names: Sequence[str]) -> int:
        """Number of distinct value combinations over *attribute_names*."""
        positions = self._schema.positions(attribute_names)
        return len({tuple(values[p] for p in positions) for values in self._rows.values()})

    def null_count(self, attribute_name: str) -> int:
        """Number of NULLs in *attribute_name*."""
        return sum(1 for value in self.column(attribute_name) if is_null(value))

    def to_dicts(self) -> list[dict[str, Any]]:
        """All rows as plain dictionaries (useful in tests and examples)."""
        return [t.as_dict() for t in self]

    def pretty(self, limit: int = 20) -> str:
        """A fixed-width textual rendering of the first *limit* rows."""
        names = list(self._schema.attribute_names)
        rows = [[value_repr(v) for v in t.values] for t in list(self)[:limit]]
        widths = [
            max(len(name), *(len(row[i]) for row in rows)) if rows else len(name)
            for i, name in enumerate(names)
        ]
        header = " | ".join(name.ljust(widths[i]) for i, name in enumerate(names))
        separator = "-+-".join("-" * w for w in widths)
        body = "\n".join(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows
        )
        footer = "" if len(self) <= limit else f"\n... ({len(self) - limit} more rows)"
        return f"{header}\n{separator}\n{body}{footer}"

    def __repr__(self) -> str:
        return f"Relation({self.name}, {len(self)} tuples, arity {self._schema.arity})"
