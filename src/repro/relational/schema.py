"""Relation schemas: named, typed attribute lists.

A :class:`RelationSchema` is an ordered list of :class:`Attribute`
definitions with unique, case-insensitive names.  Schemas are immutable;
"modifying" operations (:meth:`RelationSchema.project`,
:meth:`RelationSchema.rename`, :meth:`RelationSchema.extend`) return new
schema objects so that relations can safely share them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.types import AttributeType


@dataclass(frozen=True)
class Attribute:
    """A single attribute (column) of a relation."""

    name: str
    type: AttributeType = AttributeType.STRING

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.type, AttributeType):
            raise SchemaError(f"attribute type must be an AttributeType, got {self.type!r}")

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy of this attribute with a different name."""
        return Attribute(new_name, self.type)


class RelationSchema:
    """An immutable, ordered collection of uniquely named attributes."""

    __slots__ = ("name", "_attributes", "_positions")

    def __init__(self, name: str, attributes: Sequence[Attribute | tuple[str, AttributeType] | str]) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        normalized: list[Attribute] = []
        for attr in attributes:
            if isinstance(attr, Attribute):
                normalized.append(attr)
            elif isinstance(attr, tuple):
                normalized.append(Attribute(attr[0], attr[1]))
            elif isinstance(attr, str):
                normalized.append(Attribute(attr, AttributeType.STRING))
            else:
                raise SchemaError(f"cannot interpret {attr!r} as an attribute")
        if not normalized:
            raise SchemaError(f"relation {name!r} must have at least one attribute")

        positions: dict[str, int] = {}
        for index, attr in enumerate(normalized):
            key = attr.name.lower()
            if key in positions:
                raise SchemaError(f"duplicate attribute {attr.name!r} in relation {name!r}")
            positions[key] = index

        self.name = name
        self._attributes = tuple(normalized)
        self._positions = positions

    # -- basic accessors -------------------------------------------------

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The attributes, in declaration order."""
        return self._attributes

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """The attribute names, in declaration order."""
        return tuple(attr.name for attr in self._attributes)

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, attribute_name: str) -> bool:
        return attribute_name.lower() in self._positions

    def has_attribute(self, attribute_name: str) -> bool:
        """Whether the schema declares *attribute_name* (case-insensitive)."""
        return attribute_name.lower() in self._positions

    def position(self, attribute_name: str) -> int:
        """Return the 0-based position of *attribute_name*.

        Raises :class:`~repro.errors.SchemaError` for unknown attributes.
        """
        key = attribute_name.lower()
        if key not in self._positions:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute_name!r}; "
                f"known attributes: {', '.join(self.attribute_names)}"
            )
        return self._positions[key]

    def attribute(self, attribute_name: str) -> Attribute:
        """Return the :class:`Attribute` named *attribute_name*."""
        return self._attributes[self.position(attribute_name)]

    def canonical_name(self, attribute_name: str) -> str:
        """Return the declared spelling of a (case-insensitively named) attribute."""
        return self._attributes[self.position(attribute_name)].name

    def positions(self, attribute_names: Iterable[str]) -> list[int]:
        """Positions of several attributes, in the order given."""
        return [self.position(name) for name in attribute_names]

    # -- derived schemas -------------------------------------------------

    def project(self, attribute_names: Sequence[str], name: str | None = None) -> "RelationSchema":
        """Schema restricted to *attribute_names* (in the given order)."""
        attrs = [self.attribute(a) for a in attribute_names]
        return RelationSchema(name or self.name, attrs)

    def rename(self, mapping: Mapping[str, str], name: str | None = None) -> "RelationSchema":
        """Schema with attributes renamed according to *mapping*."""
        lowered = {old.lower(): new for old, new in mapping.items()}
        for old in mapping:
            self.position(old)  # validate
        attrs = [
            attr.renamed(lowered[attr.name.lower()]) if attr.name.lower() in lowered else attr
            for attr in self._attributes
        ]
        return RelationSchema(name or self.name, attrs)

    def renamed_relation(self, new_name: str) -> "RelationSchema":
        """Schema identical to this one but belonging to relation *new_name*."""
        return RelationSchema(new_name, self._attributes)

    def extend(self, extra: Sequence[Attribute | tuple[str, AttributeType]], name: str | None = None) -> "RelationSchema":
        """Schema with additional attributes appended."""
        return RelationSchema(name or self.name, list(self._attributes) + list(extra))

    def equivalent(self, other: "RelationSchema") -> bool:
        """Attribute-wise equality ignoring the relation name."""
        return self._attributes == other._attributes

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self.name == other.name and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash((self.name, self._attributes))

    def __repr__(self) -> str:
        cols = ", ".join(f"{a.name}:{a.type.value}" for a in self._attributes)
        return f"RelationSchema({self.name}({cols}))"


def schema(name: str, **columns: AttributeType | str) -> RelationSchema:
    """Convenience constructor: ``schema('r', a=AttributeType.STRING, n='integer')``."""
    attrs = []
    for col_name, col_type in columns.items():
        if isinstance(col_type, str):
            col_type = AttributeType(col_type)
        attrs.append(Attribute(col_name, col_type))
    return RelationSchema(name, attrs)
