"""A small SQL dialect: enough to run the CFD/CIND detection queries.

The supported statement is ``SELECT`` with

* a select list of expressions, aggregates, ``*`` and ``AS`` aliases,
* ``FROM`` with multiple comma-separated relations or explicit ``JOIN ... ON``,
* ``WHERE`` with three-valued boolean logic, ``IN``, ``LIKE``, ``IS NULL``,
* ``GROUP BY`` / ``HAVING``,
* ``ORDER BY ... [ASC|DESC]`` and ``LIMIT``,
* ``UNION`` between two selects.

The entry point is :class:`repro.relational.sql.engine.SQLEngine`.
"""

from repro.relational.sql.engine import SQLEngine
from repro.relational.sql.parser import parse_sql
from repro.relational.sql.tokenizer import tokenize

__all__ = ["SQLEngine", "parse_sql", "tokenize"]
