"""AST node classes for the SQL subset.

Scalar expressions reuse :mod:`repro.relational.expressions`; this module
adds the statement-level structure: select items, table references, joins
and the SELECT statement itself (possibly a UNION of two selects).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.expressions import Expression


@dataclass(frozen=True)
class AggregateCall:
    """An aggregate in the select list or HAVING clause."""

    function: str                 # count | sum | avg | min | max
    argument: Expression | None   # None for COUNT(*)
    distinct: bool = False

    def default_name(self) -> str:
        if self.argument is None:
            return "count"
        arg = str(self.argument).replace(".", "_")
        prefix = f"{self.function}_distinct" if self.distinct else self.function
        return f"{prefix}_{arg}"

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.function.upper()}({inner})"


@dataclass(frozen=True)
class SelectItem:
    """One entry of the select list."""

    expression: Expression | AggregateCall | None  # None means '*'
    alias: str | None = None
    star_qualifier: str | None = None  # for 'alias.*'

    @property
    def is_star(self) -> bool:
        return self.expression is None

    def output_name(self, default_index: int) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, AggregateCall):
            return self.expression.default_name()
        if self.expression is not None:
            text = str(self.expression)
            if text.isidentifier():
                return text
            # qualified column reference t.a -> a
            if "." in text and all(part.isidentifier() for part in text.split(".")):
                return text.split(".")[-1]
            return f"col_{default_index}"
        return f"col_{default_index}"


@dataclass(frozen=True)
class TableRef:
    """A relation in the FROM clause, with an optional alias."""

    relation_name: str
    alias: str | None = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.relation_name


@dataclass(frozen=True)
class Join:
    """An explicit ``JOIN ... ON`` clause."""

    table: TableRef
    condition: Expression
    kind: str = "inner"  # only inner joins are supported


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY entry."""

    expression: Expression
    descending: bool = False


@dataclass
class SelectStatement:
    """A single SELECT block."""

    items: list[SelectItem]
    tables: list[TableRef]
    joins: list[Join] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False

    def has_aggregates(self) -> bool:
        if any(isinstance(item.expression, AggregateCall) for item in self.items):
            return True
        return bool(self.group_by)


@dataclass
class UnionStatement:
    """``SELECT ... UNION [ALL] SELECT ...`` (left-associative chain)."""

    selects: list[SelectStatement]
    all: bool = False


Statement = SelectStatement | UnionStatement
