"""Code-native (vectorized) plans for single-table SELECT statements.

The classic executor materialises an ``_ExecRow`` binding dict per
surviving row and evaluates WHERE / GROUP BY / aggregates value-at-a-time.
This module compiles the plans that do not need any of that: a
single-table scan → filter → group → aggregate pipeline that runs on the
relation's dictionary code arrays end to end.

* **Filter** — every WHERE conjunct must compile to a ``(position,
  allowed code set)`` pair (:func:`compile_filter`): string equality /
  ``IN`` / their negations via :func:`~repro.relational.predicates.equality_code_set`,
  and ``<`` ``<=`` ``>`` ``>=`` (and the parser's desugared ``BETWEEN``)
  via :func:`~repro.relational.predicates.range_code_set` on the column's
  dictionary-order view.  Surviving tuples are selected by integer set
  membership — no row objects, no binding dicts.
* **Group** — GROUP BY columns become schema positions; groups are keyed
  by code tuples straight off the code arrays (codes are assigned by
  value equality, so code keys and value keys partition identically, in
  the same first-occurrence order).
* **Aggregate** — COUNT / COUNT(DISTINCT) run as code counts,
  MIN / MAX compare dense dictionary-order ranks
  (:meth:`~repro.relational.columns.Column.order`), SUM / AVG fold the
  dictionary-decoded values in tuple order (decoding is one list index
  per value — the dictionary holds each distinct value decoded once).
* **Decode boundaries** — values materialise only in the output rows:
  per selected cell for plain scans, per group for representatives and
  aggregate results.

:func:`compile_plan` returns ``None`` whenever the statement needs more
than this pipeline — joins, multiple tables, residual (expression-valued)
WHERE conjuncts, non-column GROUP BY keys, aggregates over expressions —
and the executor falls back to the retained row path, which produces
byte-identical results (the randomized SQL parity suite pins this down).

The compiled plan is deliberately split from its execution: the scan
itself is the picklable ``sql_scan`` worker handler
(:mod:`repro.engine.worker`), run either in-process on the full tid list
or fanned across chunks by :class:`~repro.engine.sql.ChunkedSQLEngine`
with an :class:`~repro.engine.sql.AggregateMerger` stitching per-chunk
partial aggregates.  The helpers here (:func:`query_payload`,
:func:`finalize_aggregate`, :func:`empty_aggregate_state`) are the
parent-side halves of that contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ReproError, SchemaError, SQLExecutionError
from repro.relational.expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Literal,
)
from repro.relational.predicates import (
    RANGE_OPERATORS,
    equality_code_set,
    range_code_set,
)
from repro.relational.sql.ast import (
    AggregateCall,
    SelectStatement,
    TableRef,
)
from repro.relational.sql.parser import AggregateExpr
from repro.relational.types import NULL, AttributeType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.database import Database
    from repro.relational.relation import Relation

#: aggregate functions the code-native pipeline computes on codes.
AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}

_MISSING = object()


# -- shared statement helpers -------------------------------------------------
#
# Item expansion and aggregate collection are identical for the code and
# row paths (the row executor delegates here), so the two cannot drift.


def flatten_conjuncts(expression: Expression | None) -> list[Expression]:
    """The top-level AND conjuncts of *expression* (``[]`` for ``None``)."""
    if expression is None:
        return []
    if isinstance(expression, And):
        result: list[Expression] = []
        for operand in expression.operands:
            result.extend(flatten_conjuncts(operand))
        return result
    return [expression]


def star_columns(database: "Database", statement: SelectStatement,
                 qualifier: str | None) -> list[tuple[str, Expression]]:
    """Expand ``*`` / ``alias.*`` into named column references."""
    columns: list[tuple[str, Expression]] = []
    seen: set[str] = set()
    tables = list(statement.tables) + [join.table for join in statement.joins]
    for table in tables:
        if qualifier is not None and table.binding_name.lower() != qualifier.lower():
            continue
        relation = database.relation(table.relation_name)
        for name in relation.schema.attribute_names:
            output = name if name.lower() not in seen else f"{table.binding_name}_{name}"
            seen.add(name.lower())
            columns.append((output, ColumnRef(name, qualifier=table.binding_name)))
    if not columns:
        raise SQLExecutionError(f"'*' expansion found no columns (qualifier {qualifier!r})")
    return columns


def expanded_items(database: "Database",
                   statement: SelectStatement) -> list[tuple[str, Expression | AggregateCall]]:
    """The select list with '*' and 'alias.*' expanded to concrete columns."""
    expanded: list[tuple[str, Expression | AggregateCall]] = []
    for index, item in enumerate(statement.items):
        if item.is_star:
            expanded.extend(star_columns(database, statement, item.star_qualifier))
        else:
            expanded.append((item.output_name(index), item.expression))
    return expanded


def collect_aggregates(expression: Expression | None) -> list[AggregateCall]:
    """Every aggregate call embedded in *expression*, in walk order."""
    if expression is None:
        return []
    found: list[AggregateCall] = []

    def walk(node: Expression) -> None:
        if isinstance(node, AggregateExpr):
            found.append(node.call)
            return
        for attribute in ("operands", "operand", "left", "right", "arguments", "values"):
            child = getattr(node, attribute, None)
            if isinstance(child, Expression):
                walk(child)
            elif isinstance(child, tuple):
                for element in child:
                    if isinstance(element, Expression):
                        walk(element)

    walk(expression)
    return found


def rewrite_aggregates(expression: Expression,
                       aggregate_values: dict[AggregateCall, Any]) -> Expression:
    """Replace embedded aggregate calls with their computed values."""
    from repro.relational.expressions import (
        Comparison as Cmp, FunctionCall, IsNull, Like, Not, Or,
    )

    if isinstance(expression, AggregateExpr):
        return Literal(aggregate_values[expression.call])
    if isinstance(expression, And):
        return And(tuple(rewrite_aggregates(op, aggregate_values)
                         for op in expression.operands))
    if isinstance(expression, Or):
        return Or(tuple(rewrite_aggregates(op, aggregate_values)
                        for op in expression.operands))
    if isinstance(expression, Not):
        return Not(rewrite_aggregates(expression.operand, aggregate_values))
    if isinstance(expression, Cmp):
        return Cmp(expression.operator,
                   rewrite_aggregates(expression.left, aggregate_values),
                   rewrite_aggregates(expression.right, aggregate_values))
    if isinstance(expression, Arithmetic):
        return Arithmetic(expression.operator,
                          rewrite_aggregates(expression.left, aggregate_values),
                          rewrite_aggregates(expression.right, aggregate_values))
    if isinstance(expression, IsNull):
        return IsNull(rewrite_aggregates(expression.operand, aggregate_values),
                      negated=expression.negated)
    if isinstance(expression, Like):
        return Like(rewrite_aggregates(expression.operand, aggregate_values),
                    expression.pattern, negated=expression.negated)
    if isinstance(expression, InList):
        return InList(rewrite_aggregates(expression.operand, aggregate_values),
                      tuple(rewrite_aggregates(v, aggregate_values)
                            for v in expression.values),
                      negated=expression.negated)
    if isinstance(expression, FunctionCall):
        return FunctionCall(expression.name,
                            tuple(rewrite_aggregates(a, aggregate_values)
                                  for a in expression.arguments))
    return expression


# -- WHERE conjunct compilation ----------------------------------------------


def _resolved_position(ref: ColumnRef, table: TableRef, single_table: bool,
                       relation: "Relation") -> int | None:
    """*ref*'s schema position when it names a column of *table*, else ``None``."""
    if ref.qualifier is not None:
        if ref.qualifier.lower() != table.binding_name.lower():
            return None
    elif not single_table:
        return None  # ambiguous without a qualifier; leave to evaluation
    try:
        return relation.schema.position(ref.name)
    except SchemaError:
        return None  # unknown column: the residual path raises the error


def _literal_value(expression: Expression) -> Any:
    """The constant value of *expression*, or :data:`_MISSING`.

    Folds the parser's unary-minus shape (``Arithmetic('-', 0, number)``)
    so ``WHERE v > -1`` compiles like ``WHERE v > 1`` does.
    """
    if isinstance(expression, Literal):
        return expression.value
    if (isinstance(expression, Arithmetic) and expression.operator == "-"
            and isinstance(expression.left, Literal) and expression.left.value == 0
            and isinstance(expression.right, Literal)
            and isinstance(expression.right.value, (int, float))
            and not isinstance(expression.right.value, bool)):
        return -expression.right.value
    return _MISSING


def _as_string_constants(conjunct: Expression, table: TableRef, single_table: bool,
                         relation: "Relation") -> tuple[int, list[str], bool] | None:
    """``(position, string literals, negated)`` of an equality push-down."""
    if isinstance(conjunct, Comparison) and conjunct.operator in ("=", "!=", "<>"):
        for ref, literal in ((conjunct.left, conjunct.right),
                             (conjunct.right, conjunct.left)):
            if isinstance(ref, ColumnRef) and isinstance(literal, Literal):
                break
        else:
            return None
        if not isinstance(literal.value, str):
            return None
        position = _resolved_position(ref, table, single_table, relation)
        if position is None:
            return None
        if relation.schema.attributes[position].type is not AttributeType.STRING:
            return None  # '=' must keep SQL numeric semantics (1 == 1.0)
        return position, [literal.value], conjunct.operator != "="
    if isinstance(conjunct, InList):
        ref = conjunct.operand
        if not isinstance(ref, ColumnRef):
            return None
        if not all(isinstance(value, Literal) and isinstance(value.value, str)
                   for value in conjunct.values):
            return None  # non-string or non-literal members: residual evaluation
        position = _resolved_position(ref, table, single_table, relation)
        if position is None:
            return None
        if relation.schema.attributes[position].type is not AttributeType.STRING:
            return None
        return position, [value.value for value in conjunct.values], conjunct.negated
    return None


def _as_range(conjunct: Expression, table: TableRef, single_table: bool,
              relation: "Relation") -> tuple[int, str, Any] | None:
    """``(position, operator, bound)`` of a range push-down.

    Any column type qualifies: the row path evaluates ``<`` etc. in the
    ``sort_key`` total order, which is exactly the order the column's
    dictionary-order view bisects.
    """
    if not isinstance(conjunct, Comparison) or conjunct.operator not in RANGE_OPERATORS:
        return None
    for ref, literal, operator in ((conjunct.left, conjunct.right, conjunct.operator),
                                   (conjunct.right, conjunct.left,
                                    _FLIPPED[conjunct.operator])):
        if isinstance(ref, ColumnRef):
            bound = _literal_value(literal)
            if bound is _MISSING:
                return None
            position = _resolved_position(ref, table, single_table, relation)
            if position is None:
                return None
            return position, operator, bound
    return None


def compile_filter(relation: "Relation", table: TableRef, conjunct: Expression,
                   single_table: bool) -> tuple[int, set[int]] | None:
    """Compile one WHERE conjunct to a ``(position, allowed codes)`` filter.

    Returns ``None`` when the conjunct must stay on the residual
    (expression-valued) path.  Results — rows *and* their order — are
    identical either way; only execution changes.
    """
    store = relation.columns
    equality = _as_string_constants(conjunct, table, single_table, relation)
    if equality is not None:
        position, constants, negated = equality
        return position, equality_code_set(store.column_at(position), constants, negated)
    comparison = _as_range(conjunct, table, single_table, relation)
    if comparison is not None:
        position, operator, bound = comparison
        return position, range_code_set(store.column_at(position), operator, bound)
    return None


# -- plan compilation ---------------------------------------------------------


class CodePlan:
    """A compiled code-native plan for one single-table SELECT."""

    __slots__ = ("relation", "table", "filters", "grouped", "group_positions",
                 "agg_calls", "agg_specs", "items", "names", "having",
                 "order_ranks")

    def __init__(self, relation: "Relation", table: TableRef) -> None:
        self.relation = relation
        self.table = table
        #: ``(schema position, allowed codes)`` per WHERE conjunct.
        self.filters: list[tuple[int, set[int]]] = []
        #: whether the grouped (aggregate) pipeline runs.
        self.grouped = False
        #: GROUP BY schema positions (empty = one global group).
        self.group_positions: tuple[int, ...] = ()
        #: unique aggregate calls (lookup key for HAVING/item rewriting).
        self.agg_calls: list[AggregateCall] = []
        #: worker specs aligned with ``agg_calls`` (see ``sql_scan``).
        self.agg_specs: list[tuple] = []
        #: output layout: ("col", position) | ("agg", index) | ("expr", Expression).
        self.items: list[tuple[str, Any]] = []
        self.names: list[str] = []
        self.having: Expression | None = None
        #: plain-scan ORDER BY as (position, descending) rank sorts, or None.
        self.order_ranks: list[tuple[int, bool]] | None = None


def _register_aggregate(plan: CodePlan, registry: dict[AggregateCall, int],
                        call: AggregateCall, table: TableRef,
                        relation: "Relation") -> int | None:
    index = registry.get(call)
    if index is not None:
        return index
    spec = _aggregate_spec(call, table, relation)
    if spec is None:
        return None
    index = len(plan.agg_calls)
    registry[call] = index
    plan.agg_calls.append(call)
    plan.agg_specs.append(spec)
    return index


def _aggregate_spec(call: AggregateCall, table: TableRef,
                    relation: "Relation") -> tuple | None:
    if call.function not in AGGREGATE_FUNCTIONS:
        return None
    if call.argument is None:
        # COUNT(*) — and, like the row path, any aggregate over '*'.
        return ("count_star",)
    if not isinstance(call.argument, ColumnRef):
        return None  # aggregates over expressions: row path
    position = _resolved_position(call.argument, table, True, relation)
    if position is None:
        return None
    if call.function == "count":
        return ("count_distinct", position) if call.distinct else ("count", position)
    if call.function in ("sum", "avg"):
        return (call.function, position, call.distinct)
    return (call.function, position)  # min | max


def compile_plan(database: "Database", statement: SelectStatement) -> CodePlan | None:
    """Compile *statement* to a :class:`CodePlan`, or ``None`` to fall back."""
    if statement.joins or len(statement.tables) != 1:
        return None
    table = statement.tables[0]
    try:
        relation = database.relation(table.relation_name)
    except ReproError:
        return None  # unknown relation: the row path raises the canonical error

    plan = CodePlan(relation, table)
    for conjunct in flatten_conjuncts(statement.where):
        compiled = compile_filter(relation, table, conjunct, single_table=True)
        if compiled is None:
            return None
        plan.filters.append(compiled)

    try:
        items = expanded_items(database, statement)
    except SQLExecutionError:
        return None  # e.g. a bad 'alias.*': the row path raises identically
    plan.names = [name for name, _ in items]

    if statement.has_aggregates():
        plan.grouped = True
        positions: list[int] = []
        for expression in statement.group_by:
            if not isinstance(expression, ColumnRef):
                return None  # GROUP BY on an expression: row path
            position = _resolved_position(expression, table, True, relation)
            if position is None:
                return None
            positions.append(position)
        plan.group_positions = tuple(positions)

        registry: dict[AggregateCall, int] = {}
        for _, expression in items:
            if isinstance(expression, AggregateCall):
                index = _register_aggregate(plan, registry, expression, table, relation)
                if index is None:
                    return None
                plan.items.append(("agg", index))
            else:
                for call in collect_aggregates(expression):
                    if _register_aggregate(plan, registry, call, table, relation) is None:
                        return None
                plan.items.append(("expr", expression))
        plan.having = statement.having
        for call in collect_aggregates(statement.having):
            if _register_aggregate(plan, registry, call, table, relation) is None:
                return None
        return plan

    for _, expression in items:
        position = _resolved_position(expression, table, True, relation) \
            if isinstance(expression, ColumnRef) else None
        if position is None:
            return None  # computed select items: row path
        plan.items.append(("col", position))
    plan.order_ranks = _order_ranks(plan, statement)
    return plan


def _order_ranks(plan: CodePlan, statement: SelectStatement) -> list[tuple[int, bool]] | None:
    """ORDER BY as rank sorts over source columns, when every key allows it.

    Mirrors the row path's name resolution: an ORDER BY key rides the
    dictionary-order index only when it is an unqualified column reference
    naming an output column (last occurrence wins, like the row path's
    name map).  DISTINCT forces the shared value-level path — dedup runs
    before ordering there.
    """
    if not statement.order_by or statement.distinct:
        return None
    name_positions = {name.lower(): index for index, name in enumerate(plan.names)}
    ranks: list[tuple[int, bool]] = []
    for order_item in statement.order_by:
        expression = order_item.expression
        if not isinstance(expression, ColumnRef) or expression.qualifier is not None:
            return None
        output_index = name_positions.get(expression.name.lower())
        if output_index is None:
            return None
        _, position = plan.items[output_index]
        ranks.append((position, order_item.descending))
    return ranks


# -- execution-side helpers ---------------------------------------------------


def query_payload(plan: CodePlan) -> dict[str, Any]:
    """The picklable per-query half of the ``sql_scan`` worker contract.

    The broadcast state carries the relation's code arrays (shipped once
    per relation version); everything query-specific — filters, group
    positions, aggregate specs with the dictionary-order ranks MIN/MAX
    compare — rides in each task payload.
    """
    store = plan.relation.columns
    aggs: list[tuple] = []
    for spec in plan.agg_specs:
        if spec[0] in ("min", "max"):
            ranks = store.column_at(spec[1]).order().ranks
            aggs.append((spec[0], spec[1], ranks))
        else:
            aggs.append(spec)
    return {
        "filters": plan.filters,
        "group": plan.group_positions if plan.grouped else None,
        "aggs": aggs,
    }


def empty_aggregate_state(spec: tuple) -> Any:
    """The partial-aggregate state of a group no tuple reached."""
    from repro.engine.worker import initial_aggregate_state

    return initial_aggregate_state(spec[0])


def finalize_aggregate(spec: tuple, state: Any, relation: "Relation") -> Any:
    """Turn one merged partial-aggregate state into the SQL result value."""
    kind = spec[0]
    if kind in ("count_star", "count"):
        return state
    if kind == "count_distinct":
        return len(state)
    column = relation.columns.column_at(spec[1])
    if kind in ("sum", "avg"):
        codes = state
        if spec[2]:  # DISTINCT: first-occurrence dedup, like the row path
            seen: set[int] = set()
            codes = [code for code in codes if not (code in seen or seen.add(code))]
        if not codes:
            return NULL
        values = column.values
        if kind == "sum":
            return sum(values[code] for code in codes)
        decoded = [values[code] for code in codes]
        return sum(decoded) / len(decoded)
    if state is None:  # min | max over an empty / all-NULL group
        return NULL
    return column.values[state[1]]
