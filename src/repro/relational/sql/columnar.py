"""Code-native (vectorized) plans for single-table SELECT statements.

The classic executor materialises an ``_ExecRow`` binding dict per
surviving row and evaluates WHERE / GROUP BY / aggregates value-at-a-time.
This module compiles the plans that do not need any of that: a
single-table scan → filter → group → aggregate pipeline that runs on the
relation's dictionary code arrays end to end.

* **Filter** — every WHERE conjunct must compile to a ``(position,
  allowed code set)`` pair (:func:`compile_filter`): string equality /
  ``IN`` / their negations via :func:`~repro.relational.predicates.equality_code_set`,
  and ``<`` ``<=`` ``>`` ``>=`` (and the parser's desugared ``BETWEEN``)
  via :func:`~repro.relational.predicates.range_code_set` on the column's
  dictionary-order view.  Surviving tuples are selected by integer set
  membership — no row objects, no binding dicts.
* **Group** — GROUP BY columns become schema positions; groups are keyed
  by code tuples straight off the code arrays (codes are assigned by
  value equality, so code keys and value keys partition identically, in
  the same first-occurrence order).
* **Aggregate** — COUNT / COUNT(DISTINCT) run as code counts,
  MIN / MAX compare dense dictionary-order ranks
  (:meth:`~repro.relational.columns.Column.order`), SUM / AVG fold the
  dictionary-decoded values in tuple order (decoding is one list index
  per value — the dictionary holds each distinct value decoded once).
* **Decode boundaries** — values materialise only in the output rows:
  per selected cell for plain scans, per group for representatives and
  aggregate results.

:func:`compile_plan` returns ``None`` whenever the statement needs more
than this pipeline — joins, multiple tables, residual (expression-valued)
WHERE conjuncts, non-column GROUP BY keys, aggregates over expressions —
and the executor falls back to the retained row path, which produces
byte-identical results (the randomized SQL parity suite pins this down).

The compiled plan is deliberately split from its execution: the scan
itself is the picklable ``sql_scan`` worker handler
(:mod:`repro.engine.worker`), run either in-process on the full tid list
or fanned across chunks by :class:`~repro.engine.sql.ChunkedSQLEngine`
with an :class:`~repro.engine.sql.AggregateMerger` stitching per-chunk
partial aggregates.  The helpers here (:func:`query_payload`,
:func:`finalize_aggregate`, :func:`empty_aggregate_state`) are the
parent-side halves of that contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ReproError, SchemaError, SQLExecutionError
from repro.relational.columns import NULL_CODE
from repro.relational.expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Literal,
)
from repro.relational.predicates import (
    RANGE_OPERATORS,
    equality_code_set,
    range_code_set,
)
from repro.relational.sql.ast import (
    AggregateCall,
    SelectStatement,
    TableRef,
)
from repro.relational.sql.parser import AggregateExpr
from repro.relational.types import NULL, AttributeType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.relational.database import Database
    from repro.relational.relation import Relation

#: aggregate functions the code-native pipeline computes on codes.
AGGREGATE_FUNCTIONS = ("count", "sum", "avg", "min", "max")

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}

_MISSING = object()


# -- shared statement helpers -------------------------------------------------
#
# Item expansion and aggregate collection are identical for the code and
# row paths (the row executor delegates here), so the two cannot drift.


def flatten_conjuncts(expression: Expression | None) -> list[Expression]:
    """The top-level AND conjuncts of *expression* (``[]`` for ``None``)."""
    if expression is None:
        return []
    if isinstance(expression, And):
        result: list[Expression] = []
        for operand in expression.operands:
            result.extend(flatten_conjuncts(operand))
        return result
    return [expression]


def star_columns(database: "Database", statement: SelectStatement,
                 qualifier: str | None) -> list[tuple[str, Expression]]:
    """Expand ``*`` / ``alias.*`` into named column references."""
    columns: list[tuple[str, Expression]] = []
    seen: set[str] = set()
    tables = list(statement.tables) + [join.table for join in statement.joins]
    for table in tables:
        if qualifier is not None and table.binding_name.lower() != qualifier.lower():
            continue
        relation = database.relation(table.relation_name)
        for name in relation.schema.attribute_names:
            output = name if name.lower() not in seen else f"{table.binding_name}_{name}"
            seen.add(name.lower())
            columns.append((output, ColumnRef(name, qualifier=table.binding_name)))
    if not columns:
        raise SQLExecutionError(f"'*' expansion found no columns (qualifier {qualifier!r})")
    return columns


def expanded_items(database: "Database",
                   statement: SelectStatement) -> list[tuple[str, Expression | AggregateCall]]:
    """The select list with '*' and 'alias.*' expanded to concrete columns."""
    expanded: list[tuple[str, Expression | AggregateCall]] = []
    for index, item in enumerate(statement.items):
        if item.is_star:
            expanded.extend(star_columns(database, statement, item.star_qualifier))
        else:
            expanded.append((item.output_name(index), item.expression))
    return expanded


def collect_aggregates(expression: Expression | None) -> list[AggregateCall]:
    """Every aggregate call embedded in *expression*, in walk order."""
    if expression is None:
        return []
    found: list[AggregateCall] = []

    def walk(node: Expression) -> None:
        if isinstance(node, AggregateExpr):
            found.append(node.call)
            return
        for attribute in ("operands", "operand", "left", "right", "arguments", "values"):
            child = getattr(node, attribute, None)
            if isinstance(child, Expression):
                walk(child)
            elif isinstance(child, tuple):
                for element in child:
                    if isinstance(element, Expression):
                        walk(element)

    walk(expression)
    return found


def rewrite_aggregates(expression: Expression,
                       aggregate_values: dict[AggregateCall, Any]) -> Expression:
    """Replace embedded aggregate calls with their computed values."""
    from repro.relational.expressions import (
        Comparison as Cmp, FunctionCall, IsNull, Like, Not, Or,
    )

    if isinstance(expression, AggregateExpr):
        return Literal(aggregate_values[expression.call])
    if isinstance(expression, And):
        return And(tuple(rewrite_aggregates(op, aggregate_values)
                         for op in expression.operands))
    if isinstance(expression, Or):
        return Or(tuple(rewrite_aggregates(op, aggregate_values)
                        for op in expression.operands))
    if isinstance(expression, Not):
        return Not(rewrite_aggregates(expression.operand, aggregate_values))
    if isinstance(expression, Cmp):
        return Cmp(expression.operator,
                   rewrite_aggregates(expression.left, aggregate_values),
                   rewrite_aggregates(expression.right, aggregate_values))
    if isinstance(expression, Arithmetic):
        return Arithmetic(expression.operator,
                          rewrite_aggregates(expression.left, aggregate_values),
                          rewrite_aggregates(expression.right, aggregate_values))
    if isinstance(expression, IsNull):
        return IsNull(rewrite_aggregates(expression.operand, aggregate_values),
                      negated=expression.negated)
    if isinstance(expression, Like):
        return Like(rewrite_aggregates(expression.operand, aggregate_values),
                    expression.pattern, negated=expression.negated)
    if isinstance(expression, InList):
        return InList(rewrite_aggregates(expression.operand, aggregate_values),
                      tuple(rewrite_aggregates(v, aggregate_values)
                            for v in expression.values),
                      negated=expression.negated)
    if isinstance(expression, FunctionCall):
        return FunctionCall(expression.name,
                            tuple(rewrite_aggregates(a, aggregate_values)
                                  for a in expression.arguments))
    return expression


# -- WHERE conjunct compilation ----------------------------------------------


def _resolved_position(ref: ColumnRef, table: TableRef, single_table: bool,
                       relation: "Relation") -> int | None:
    """*ref*'s schema position when it names a column of *table*, else ``None``."""
    if ref.qualifier is not None:
        if ref.qualifier.lower() != table.binding_name.lower():
            return None
    elif not single_table:
        return None  # ambiguous without a qualifier; leave to evaluation
    try:
        return relation.schema.position(ref.name)
    except SchemaError:
        return None  # unknown column: the residual path raises the error


def _literal_value(expression: Expression) -> Any:
    """The constant value of *expression*, or :data:`_MISSING`.

    Folds the parser's unary-minus shape (``Arithmetic('-', 0, number)``)
    so ``WHERE v > -1`` compiles like ``WHERE v > 1`` does.
    """
    if isinstance(expression, Literal):
        return expression.value
    if (isinstance(expression, Arithmetic) and expression.operator == "-"
            and isinstance(expression.left, Literal) and expression.left.value == 0
            and isinstance(expression.right, Literal)
            and isinstance(expression.right.value, (int, float))
            and not isinstance(expression.right.value, bool)):
        return -expression.right.value
    return _MISSING


def _as_string_constants(conjunct: Expression, table: TableRef, single_table: bool,
                         relation: "Relation") -> tuple[int, list[str], bool] | None:
    """``(position, string literals, negated)`` of an equality push-down."""
    if isinstance(conjunct, Comparison) and conjunct.operator in ("=", "!=", "<>"):
        for ref, literal in ((conjunct.left, conjunct.right),
                             (conjunct.right, conjunct.left)):
            if isinstance(ref, ColumnRef) and isinstance(literal, Literal):
                break
        else:
            return None
        if not isinstance(literal.value, str):
            return None
        position = _resolved_position(ref, table, single_table, relation)
        if position is None:
            return None
        if relation.schema.attributes[position].type is not AttributeType.STRING:
            return None  # '=' must keep SQL numeric semantics (1 == 1.0)
        return position, [literal.value], conjunct.operator != "="
    if isinstance(conjunct, InList):
        ref = conjunct.operand
        if not isinstance(ref, ColumnRef):
            return None
        if not all(isinstance(value, Literal) and isinstance(value.value, str)
                   for value in conjunct.values):
            return None  # non-string or non-literal members: residual evaluation
        position = _resolved_position(ref, table, single_table, relation)
        if position is None:
            return None
        if relation.schema.attributes[position].type is not AttributeType.STRING:
            return None
        return position, [value.value for value in conjunct.values], conjunct.negated
    return None


def _as_range(conjunct: Expression, table: TableRef, single_table: bool,
              relation: "Relation") -> tuple[int, str, Any] | None:
    """``(position, operator, bound)`` of a range push-down.

    Any column type qualifies: the row path evaluates ``<`` etc. in the
    ``sort_key`` total order, which is exactly the order the column's
    dictionary-order view bisects.
    """
    if not isinstance(conjunct, Comparison) or conjunct.operator not in RANGE_OPERATORS:
        return None
    for ref, literal, operator in ((conjunct.left, conjunct.right, conjunct.operator),
                                   (conjunct.right, conjunct.left,
                                    _FLIPPED[conjunct.operator])):
        if isinstance(ref, ColumnRef):
            bound = _literal_value(literal)
            if bound is _MISSING:
                return None
            position = _resolved_position(ref, table, single_table, relation)
            if position is None:
                return None
            return position, operator, bound
    return None


def compile_filter(relation: "Relation", table: TableRef, conjunct: Expression,
                   single_table: bool) -> tuple[int, set[int]] | None:
    """Compile one WHERE conjunct to a ``(position, allowed codes)`` filter.

    Returns ``None`` when the conjunct must stay on the residual
    (expression-valued) path.  Results — rows *and* their order — are
    identical either way; only execution changes.
    """
    store = relation.columns
    equality = _as_string_constants(conjunct, table, single_table, relation)
    if equality is not None:
        position, constants, negated = equality
        return position, equality_code_set(store.column_at(position), constants, negated)
    comparison = _as_range(conjunct, table, single_table, relation)
    if comparison is not None:
        position, operator, bound = comparison
        return position, range_code_set(store.column_at(position), operator, bound)
    return None


# -- plan compilation ---------------------------------------------------------


class CodePlan:
    """A compiled code-native plan for one single-table SELECT."""

    __slots__ = ("relation", "table", "filters", "grouped", "group_positions",
                 "agg_calls", "agg_specs", "items", "names", "having",
                 "order_ranks", "limit")

    def __init__(self, relation: "Relation", table: TableRef) -> None:
        self.relation = relation
        self.table = table
        #: ``(schema position, allowed codes)`` per WHERE conjunct.
        self.filters: list[tuple[int, set[int]]] = []
        #: whether the grouped (aggregate) pipeline runs.
        self.grouped = False
        #: GROUP BY schema positions (empty = one global group).
        self.group_positions: tuple[int, ...] = ()
        #: unique aggregate calls (lookup key for HAVING/item rewriting).
        self.agg_calls: list[AggregateCall] = []
        #: worker specs aligned with ``agg_calls`` (see ``sql_scan``).
        self.agg_specs: list[tuple] = []
        #: output layout: ("col", position) | ("agg", index) | ("expr", Expression).
        self.items: list[tuple[str, Any]] = []
        self.names: list[str] = []
        self.having: Expression | None = None
        #: plain-scan ORDER BY as (position, descending) rank sorts, or None.
        self.order_ranks: list[tuple[int, bool]] | None = None
        #: LIMIT of a plain ordered scan — enables top-k rank selection.
        self.limit: int | None = None


def _register_aggregate(plan: CodePlan, registry: dict[AggregateCall, int],
                        call: AggregateCall, table: TableRef,
                        relation: "Relation") -> int | None:
    index = registry.get(call)
    if index is not None:
        return index
    spec = _aggregate_spec(call, table, relation)
    if spec is None:
        return None
    index = len(plan.agg_calls)
    registry[call] = index
    plan.agg_calls.append(call)
    plan.agg_specs.append(spec)
    return index


def _aggregate_spec(call: AggregateCall, table: TableRef,
                    relation: "Relation") -> tuple | None:
    if call.function not in AGGREGATE_FUNCTIONS:
        return None
    if call.argument is None:
        # COUNT(*) — and, like the row path, any aggregate over '*'.
        return ("count_star",)
    if not isinstance(call.argument, ColumnRef):
        return None  # aggregates over expressions: row path
    position = _resolved_position(call.argument, table, True, relation)
    if position is None:
        return None
    if call.function == "count":
        return ("count_distinct", position) if call.distinct else ("count", position)
    if call.function in ("sum", "avg"):
        return (call.function, position, call.distinct)
    return (call.function, position)  # min | max


def _note(reasons: list[str] | None, message: str) -> None:
    """Record a fallback reason for EXPLAIN, then signal fallback (None)."""
    if reasons is not None:
        reasons.append(message)
    return None


def compile_plan(database: "Database", statement: SelectStatement,
                 reasons: list[str] | None = None) -> CodePlan | None:
    """Compile *statement* to a :class:`CodePlan`, or ``None`` to fall back.

    When *reasons* is a list, every fallback appends a human-readable
    explanation of why the code-native plan could not be used — the raw
    material of ``EXPLAIN``.  Passing ``None`` (the default) keeps the hot
    path allocation-free.
    """
    if statement.joins or len(statement.tables) != 1:
        return _note(reasons, "query reads more than one table")
    table = statement.tables[0]
    try:
        relation = database.relation(table.relation_name)
    except ReproError:
        # unknown relation: the row path raises the canonical error
        return _note(reasons, f"unknown relation {table.relation_name!r}")

    plan = CodePlan(relation, table)
    for conjunct in flatten_conjuncts(statement.where):
        compiled = compile_filter(relation, table, conjunct, single_table=True)
        if compiled is None:
            return _note(reasons,
                         f"WHERE conjunct {conjunct} is not a code-set test")
        plan.filters.append(compiled)

    try:
        items = expanded_items(database, statement)
    except SQLExecutionError:
        # e.g. a bad 'alias.*': the row path raises identically
        return _note(reasons, "select items do not expand cleanly")
    plan.names = [name for name, _ in items]

    if statement.has_aggregates():
        plan.grouped = True
        positions: list[int] = []
        for expression in statement.group_by:
            if not isinstance(expression, ColumnRef):
                return _note(reasons, "GROUP BY on an expression")
            position = _resolved_position(expression, table, True, relation)
            if position is None:
                return _note(reasons,
                             f"GROUP BY column {expression} does not resolve")
            positions.append(position)
        plan.group_positions = tuple(positions)

        registry: dict[AggregateCall, int] = {}
        for _, expression in items:
            if isinstance(expression, AggregateCall):
                index = _register_aggregate(plan, registry, expression, table, relation)
                if index is None:
                    return _note(reasons,
                                 f"aggregate {expression} has no code-level spec")
                plan.items.append(("agg", index))
            else:
                for call in collect_aggregates(expression):
                    if _register_aggregate(plan, registry, call, table, relation) is None:
                        return _note(reasons,
                                     f"aggregate {call} has no code-level spec")
                plan.items.append(("expr", expression))
        plan.having = statement.having
        for call in collect_aggregates(statement.having):
            if _register_aggregate(plan, registry, call, table, relation) is None:
                return _note(reasons,
                             f"HAVING aggregate {call} has no code-level spec")
        return plan

    for _, expression in items:
        position = _resolved_position(expression, table, True, relation) \
            if isinstance(expression, ColumnRef) else None
        if position is None:
            return _note(reasons, f"select item {expression} is computed")
        plan.items.append(("col", position))
    plan.order_ranks = _order_ranks(plan, statement)
    plan.limit = statement.limit
    return plan


def _order_ranks(plan: CodePlan, statement: SelectStatement) -> list[tuple[int, bool]] | None:
    """ORDER BY as rank sorts over source columns, when every key allows it.

    Mirrors the row path's name resolution: an ORDER BY key rides the
    dictionary-order index only when it is an unqualified column reference
    naming an output column (last occurrence wins, like the row path's
    name map).  DISTINCT forces the shared value-level path — dedup runs
    before ordering there.
    """
    if not statement.order_by or statement.distinct:
        return None
    name_positions = {name.lower(): index for index, name in enumerate(plan.names)}
    ranks: list[tuple[int, bool]] = []
    for order_item in statement.order_by:
        expression = order_item.expression
        if not isinstance(expression, ColumnRef) or expression.qualifier is not None:
            return None
        output_index = name_positions.get(expression.name.lower())
        if output_index is None:
            return None
        _, position = plan.items[output_index]
        ranks.append((position, order_item.descending))
    return ranks


# -- join plan compilation ----------------------------------------------------
#
# Two-table INNER JOINs compile to integer hash joins on bridged codes:
# build a code-keyed bucket table on one side, translate the other side's
# codes through a :class:`~repro.relational.columns.DictionaryBridge`, and
# probe.  The joined result stays paired tid arrays end to end — WHERE
# push-down, GROUP BY and aggregates all run on the two relations' code
# arrays, and values decode only into the output rows.


class JoinPlan:
    """A compiled code-native plan for one two-table INNER JOIN SELECT.

    ``side`` is 0 for the first (left) table in FROM order and 1 for the
    second; every resolved column is a ``(side, position)`` pair.  The
    row path's name-resolution rules are baked in at compile time: an
    unqualified reference binds to the left table first and is never
    shadowed by the right one.
    """

    __slots__ = ("relations", "tables", "key_pairs", "filters", "grouped",
                 "group_keys", "agg_calls", "agg_specs", "items", "names",
                 "having", "order_ranks")

    def __init__(self, relations: tuple, tables: tuple) -> None:
        self.relations = relations  # (left Relation, right Relation)
        self.tables = tables        # (left TableRef, right TableRef)
        #: equi-join keys as ``(left position, right position)`` pairs.
        self.key_pairs: list[tuple[int, int]] = []
        #: per-side WHERE push-down: ``(position, allowed codes)`` lists.
        self.filters: tuple[list, list] = ([], [])
        self.grouped = False
        #: GROUP BY keys as ``(side, position)`` pairs (empty = one group).
        self.group_keys: tuple[tuple[int, int], ...] = ()
        self.agg_calls: list[AggregateCall] = []
        #: worker specs aligned with ``agg_calls`` (kinds carry the side).
        self.agg_specs: list[tuple] = []
        #: output layout: ("col", side, position) | ("agg", i) | ("expr", e).
        self.items: list[tuple] = []
        self.names: list[str] = []
        self.having: Expression | None = None
        #: plain-scan ORDER BY as (side, position, descending), or None.
        self.order_ranks: list[tuple[int, int, bool]] | None = None


def _join_position(ref: ColumnRef, sides: tuple) -> tuple[int, int] | None:
    """``(side, schema position)`` of *ref* under the row path's binding rules.

    A qualified reference resolves only against the matching binding name;
    an unqualified one binds to the left table first (the row path sets
    the left table's unqualified names first and never lets the right
    table shadow them).  Unknown columns resolve to ``None`` — the caller
    falls back and the row path raises (or NULL-evaluates) identically.
    """
    if ref.qualifier is not None:
        qualifier = ref.qualifier.lower()
        for side, (table, relation) in enumerate(sides):
            if qualifier == table.binding_name.lower():
                try:
                    return side, relation.schema.position(ref.name)
                except SchemaError:
                    return None
        return None
    for side, (_, relation) in enumerate(sides):
        try:
            return side, relation.schema.position(ref.name)
        except SchemaError:
            continue
    return None


def _column_refs(expression: Expression) -> list[ColumnRef]:
    """Every column reference embedded in *expression*, in walk order."""
    found: list[ColumnRef] = []

    def walk(node: Expression) -> None:
        if isinstance(node, ColumnRef):
            found.append(node)
            return
        for attribute in ("operands", "operand", "left", "right", "arguments", "values"):
            child = getattr(node, attribute, None)
            if isinstance(child, Expression):
                walk(child)
            elif isinstance(child, tuple):
                for element in child:
                    if isinstance(element, Expression):
                        walk(element)

    walk(expression)
    return found


def _as_join_key(conjunct: Expression, sides: tuple) -> tuple[int, int] | None:
    """``(left position, right position)`` of a hash-joinable equality.

    Mirrors the row planner's ``_as_equi_pair``: only a ``=`` between two
    *qualified* column references, one per side, becomes a join key.
    """
    if not isinstance(conjunct, Comparison) or conjunct.operator != "=":
        return None
    left, right = conjunct.left, conjunct.right
    if not isinstance(left, ColumnRef) or not isinstance(right, ColumnRef):
        return None
    if left.qualifier is None or right.qualifier is None:
        return None
    a = _join_position(left, sides)
    b = _join_position(right, sides)
    if a is None or b is None or a[0] == b[0]:
        return None
    if a[0] != 0:
        a, b = b, a
    return a[1], b[1]


def _compile_join_filter(conjunct: Expression,
                         sides: tuple) -> tuple[int, int, set[int]] | None:
    """Compile a single-side conjunct to ``(side, position, allowed codes)``.

    The owning side is fixed by name resolution *before* compilation (an
    unqualified name present in both tables belongs to the left one), so
    a conjunct that fails to compile on its owner never silently filters
    the other side.
    """
    refs = _column_refs(conjunct)
    if not refs:
        return None
    owner_sides: set[int] = set()
    for ref in refs:
        resolved = _join_position(ref, sides)
        if resolved is None:
            return None
        owner_sides.add(resolved[0])
    if len(owner_sides) != 1:
        return None
    side = owner_sides.pop()
    table, relation = sides[side]
    compiled = compile_filter(relation, table, conjunct, single_table=True)
    if compiled is None:
        return None
    position, codes = compiled
    return side, position, codes


def _join_aggregate_spec(call: AggregateCall, sides: tuple) -> tuple | None:
    if call.function not in AGGREGATE_FUNCTIONS:
        return None
    if call.argument is None:
        return ("count_star",)
    if not isinstance(call.argument, ColumnRef):
        return None
    resolved = _join_position(call.argument, sides)
    if resolved is None:
        return None
    side, position = resolved
    if call.function == "count":
        return ("count_distinct", side, position) if call.distinct \
            else ("count", side, position)
    if call.function in ("sum", "avg"):
        return (call.function, side, position, call.distinct)
    return (call.function, side, position)  # min | max


def _register_join_aggregate(plan: JoinPlan, registry: dict[AggregateCall, int],
                             call: AggregateCall, sides: tuple) -> int | None:
    index = registry.get(call)
    if index is not None:
        return index
    spec = _join_aggregate_spec(call, sides)
    if spec is None:
        return None
    index = len(plan.agg_calls)
    registry[call] = index
    plan.agg_calls.append(call)
    plan.agg_specs.append(spec)
    return index


def compile_join_plan(database: "Database", statement: SelectStatement,
                      reasons: list[str] | None = None) -> JoinPlan | None:
    """Compile a two-table INNER JOIN to a :class:`JoinPlan`, or ``None``.

    Requirements mirror what the hash join can express exactly: exactly
    two tables (``FROM a, b`` or an explicit inner ``JOIN ... ON``) with
    distinct binding names, at least one both-qualified equi conjunct, and
    every remaining conjunct compiling to a single-side code-set filter.
    Anything else — cross products, residual predicates, expression-valued
    items or group keys — falls back to the row path, which produces
    byte-identical results.  When *reasons* is a list, every fallback
    appends an explanation for ``EXPLAIN``.
    """
    tables = list(statement.tables) + [join.table for join in statement.joins]
    if len(tables) != 2:
        return _note(reasons, "query does not read exactly two tables")
    if any(join.kind != "inner" for join in statement.joins):
        return _note(reasons, "only INNER joins compile to hash joins")
    if tables[0].binding_name.lower() == tables[1].binding_name.lower():
        # ambiguous bindings: leave to the row path
        return _note(reasons, "the two tables share one binding name")
    try:
        relations = tuple(database.relation(table.relation_name) for table in tables)
    except ReproError:
        # unknown relation: the row path raises the canonical error
        return _note(reasons, "unknown relation in FROM")
    sides = tuple(zip(tables, relations))
    plan = JoinPlan(relations, tuple(tables))

    conjuncts = flatten_conjuncts(statement.where)
    for join in statement.joins:
        conjuncts.extend(flatten_conjuncts(join.condition))
    for conjunct in conjuncts:
        key = _as_join_key(conjunct, sides)
        if key is not None:
            plan.key_pairs.append(key)
            continue
        compiled = _compile_join_filter(conjunct, sides)
        if compiled is None:
            return _note(reasons,
                         f"conjunct {conjunct} is neither an equi key "
                         "nor a single-side code-set test")
        side, position, codes = compiled
        plan.filters[side].append((position, codes))
    if not plan.key_pairs:
        # the row path nested-loops this
        return _note(reasons, "no equi-join key between the two tables")

    try:
        items = expanded_items(database, statement)
    except SQLExecutionError:
        # e.g. a bad 'alias.*': the row path raises identically
        return _note(reasons, "select items do not expand cleanly")
    plan.names = [name for name, _ in items]

    if statement.has_aggregates():
        plan.grouped = True
        keys: list[tuple[int, int]] = []
        for expression in statement.group_by:
            if not isinstance(expression, ColumnRef):
                return _note(reasons, "GROUP BY on an expression")
            resolved = _join_position(expression, sides)
            if resolved is None:
                return _note(reasons,
                             f"GROUP BY column {expression} does not resolve")
            keys.append(resolved)
        plan.group_keys = tuple(keys)

        registry: dict[AggregateCall, int] = {}
        for _, expression in items:
            if isinstance(expression, AggregateCall):
                index = _register_join_aggregate(plan, registry, expression, sides)
                if index is None:
                    return _note(reasons,
                                 f"aggregate {expression} has no code-level spec")
                plan.items.append(("agg", index))
            else:
                for call in collect_aggregates(expression):
                    if _register_join_aggregate(plan, registry, call, sides) is None:
                        return _note(reasons,
                                     f"aggregate {call} has no code-level spec")
                plan.items.append(("expr", expression))
        plan.having = statement.having
        for call in collect_aggregates(statement.having):
            if _register_join_aggregate(plan, registry, call, sides) is None:
                return _note(reasons,
                             f"HAVING aggregate {call} has no code-level spec")
        return plan

    for _, expression in items:
        resolved = _join_position(expression, sides) \
            if isinstance(expression, ColumnRef) else None
        if resolved is None:
            return _note(reasons, f"select item {expression} is computed")
        plan.items.append(("col",) + resolved)
    plan.order_ranks = _join_order_ranks(plan, statement)
    return plan


def _join_order_ranks(plan: JoinPlan,
                      statement: SelectStatement) -> list[tuple[int, int, bool]] | None:
    """ORDER BY as rank sorts over joined pairs (see :func:`_order_ranks`)."""
    if not statement.order_by or statement.distinct:
        return None
    name_positions = {name.lower(): index for index, name in enumerate(plan.names)}
    ranks: list[tuple[int, int, bool]] = []
    for order_item in statement.order_by:
        expression = order_item.expression
        if not isinstance(expression, ColumnRef) or expression.qualifier is not None:
            return None
        output_index = name_positions.get(expression.name.lower())
        if output_index is None:
            return None
        _, side, position = plan.items[output_index]
        ranks.append((side, position, order_item.descending))
    return ranks


# -- execution-side helpers ---------------------------------------------------


def query_payload(plan: CodePlan) -> dict[str, Any]:
    """The picklable per-query half of the ``sql_scan`` worker contract.

    The broadcast state carries the relation's code arrays (shipped once
    per relation version); everything query-specific — filters, group
    positions, aggregate specs with the dictionary-order ranks MIN/MAX
    compare — rides in each task payload.
    """
    store = plan.relation.columns
    aggs: list[tuple] = []
    for spec in plan.agg_specs:
        if spec[0] in ("min", "max"):
            ranks = store.column_at(spec[1]).order().ranks
            aggs.append((spec[0], spec[1], ranks))
        else:
            aggs.append(spec)
    return {
        "filters": plan.filters,
        "group": plan.group_positions if plan.grouped else None,
        "aggs": aggs,
    }


def empty_aggregate_state(spec: tuple) -> Any:
    """The partial-aggregate state of a group no tuple reached."""
    from repro.engine.worker import initial_aggregate_state

    return initial_aggregate_state(spec[0])


def finalize_aggregate(spec: tuple, state: Any, relation: "Relation") -> Any:
    """Turn one merged partial-aggregate state into the SQL result value."""
    kind = spec[0]
    if kind in ("count_star", "count"):
        return state
    if kind == "count_distinct":
        return len(state)
    column = relation.columns.column_at(spec[1])
    if kind in ("sum", "avg"):
        codes = state
        if spec[2]:  # DISTINCT: first-occurrence dedup, like the row path
            seen: set[int] = set()
            codes = [code for code in codes if not (code in seen or seen.add(code))]
        if not codes:
            return NULL
        values = column.values
        if kind == "sum":
            return sum(values[code] for code in codes)
        decoded = [values[code] for code in codes]
        return sum(decoded) / len(decoded)
    if state is None:  # min | max over an empty / all-NULL group
        return NULL
    return column.values[state[1]]


def build_join_buckets(plan: JoinPlan, build_side: int) -> dict[Any, list[int]]:
    """The build side's code-keyed hash buckets, in scan order.

    Push-down filters of the build side apply here — before the buckets
    exist, so filtered-out tuples are never probed.  NULL join keys never
    match (SQL semantics, mirrored from the row planner's hash join), so
    tuples carrying one are skipped.  Keys are a bare code for one join
    pair and a code tuple otherwise; each bucket's tids are ascending
    (scan order), which is what keeps the probe output left-major.
    """
    relation = plan.relations[build_side]
    store = relation.columns
    key_arrays = [store.column_at(pair[build_side]).codes for pair in plan.key_pairs]
    filters = [(store.column_at(position).codes, allowed)
               for position, allowed in plan.filters[build_side]]
    single = len(key_arrays) == 1
    buckets: dict[Any, list[int]] = {}
    for tid in relation.tids():
        if any(codes[tid] not in allowed for codes, allowed in filters):
            continue
        if single:
            key: Any = key_arrays[0][tid]
            if key == NULL_CODE:
                continue
        else:
            key_codes = [codes[tid] for codes in key_arrays]
            if NULL_CODE in key_codes:
                continue
            key = tuple(key_codes)
        bucket = buckets.get(key)
        if bucket is None:
            buckets[key] = [tid]
        else:
            bucket.append(tid)
    return buckets


def join_query_payload(plan: JoinPlan, probe_side: int,
                       buckets: dict[Any, list[int]]) -> dict[str, Any]:
    """The picklable per-query half of the ``join_probe`` worker contract.

    The broadcast state carries both relations' code arrays (shipped once
    per version pair); everything query-specific — probe-side filters, the
    probe→build bridge translations, the build-side buckets, group keys
    and aggregate specs — rides in each task payload.  The translations
    are the live arrays of value-mode
    :class:`~repro.relational.columns.DictionaryBridge`\\ s, revalidated
    here on every query, so a dictionary grown on *either* side since the
    last join is re-bridged before any probe runs.
    """
    build_side = 1 - probe_side
    probe_store = plan.relations[probe_side].columns
    build_store = plan.relations[build_side].columns
    keys = []
    for pair in plan.key_pairs:
        probe_column = probe_store.column_at(pair[probe_side])
        build_column = build_store.column_at(pair[build_side])
        keys.append((pair[probe_side],
                     probe_column.bridge_to(build_column).translation))
    aggs: list[tuple] = []
    for spec in plan.agg_specs:
        if spec[0] in ("min", "max"):
            ranks = plan.relations[spec[1]].columns.column_at(spec[2]).order().ranks
            aggs.append((spec[0], spec[1], spec[2], ranks))
        else:
            aggs.append(spec)
    return {
        "probe_side": probe_side,
        "filters": plan.filters[probe_side],
        "keys": keys,
        "buckets": buckets,
        "group": plan.group_keys if plan.grouped else None,
        "aggs": aggs,
    }


def finalize_join_aggregate(spec: tuple, state: Any, relations: tuple) -> Any:
    """Finalize one merged join-aggregate state (specs carry the side)."""
    if spec[0] == "count_star":
        return state
    return finalize_aggregate((spec[0], spec[2]) + tuple(spec[3:]), state,
                              relations[spec[1]])


# -- multiway (3+ table) join plan compilation --------------------------------
#
# Statements joining three or more tables compile to a worst-case-optimal
# (generic/leapfrog) join instead of a cascade of binary hash joins: the
# equi-join graph is resolved into *join variables* (connected components
# of equated columns), every member column is translated into the
# variable's representative dictionary via (possibly composed) bridges,
# and evaluation binds one variable at a time — sorted-intersecting the
# codes present in each participating table, then descending per
# candidate.  The variable order is chosen greedily by estimated
# selectivity (smallest distinct count first) and tightened by functional
# dependencies: a variable functionally determined by already-bound
# attributes binds (nearly) for free, so it is pulled forward, following
# "Computing Join Queries with Functional Dependencies" (Abo Khamis, Ngo
# & Suciu).


class MultiJoinPlan:
    """A compiled code-native plan for an N-table (3+) INNER JOIN SELECT.

    Every resolved column is a ``(side, position)`` pair with ``side`` the
    table's FROM-order index; the row path's name-resolution rules are
    baked in at compile time exactly as in :class:`JoinPlan`.  ``var_order``
    is the chosen variable order: per level the member columns (ascending
    ``(side, position)``, the first member owning the representative
    dictionary), whether the variable is FD-implied by earlier levels, and
    the selectivity estimate that drove the greedy choice.
    """

    __slots__ = ("relations", "tables", "var_order", "filters", "grouped",
                 "group_keys", "agg_calls", "agg_specs", "items", "names",
                 "having", "order_ranks")

    def __init__(self, relations: tuple, tables: tuple) -> None:
        self.relations = relations
        self.tables = tables
        #: ordered join variables: (members, fd_implied, distinct estimate).
        self.var_order: list[tuple[tuple[tuple[int, int], ...], bool, int]] = []
        #: per-side WHERE push-down: ``(position, allowed codes)`` lists.
        self.filters: tuple[list, ...] = ()
        self.grouped = False
        self.group_keys: tuple[tuple[int, int], ...] = ()
        self.agg_calls: list[AggregateCall] = []
        self.agg_specs: list[tuple] = []
        #: output layout: ("col", side, position) | ("agg", i) | ("expr", e).
        self.items: list[tuple] = []
        self.names: list[str] = []
        self.having: Expression | None = None
        #: plain ORDER BY as (side, position, descending) rank sorts, or None.
        self.order_ranks: list[tuple[int, int, bool]] | None = None


def _as_multi_equi(conjunct: Expression,
                   sides: tuple) -> tuple[tuple[int, int], tuple[int, int]] | None:
    """The two ``(side, position)`` ends of a cross-table equi conjunct.

    Same shape rule as :func:`_as_join_key` (a ``=`` between two qualified
    column references on distinct tables), generalised to N sides.
    """
    if not isinstance(conjunct, Comparison) or conjunct.operator != "=":
        return None
    left, right = conjunct.left, conjunct.right
    if not isinstance(left, ColumnRef) or not isinstance(right, ColumnRef):
        return None
    if left.qualifier is None or right.qualifier is None:
        return None
    a = _join_position(left, sides)
    b = _join_position(right, sides)
    if a is None or b is None or a[0] == b[0]:
        return None
    return a, b


def _join_variables(edges: list[tuple[tuple[int, int], tuple[int, int]]]
                    ) -> list[tuple[tuple[int, int], ...]]:
    """Connected components of equated columns, each a sorted member tuple.

    Transitivity is deliberate: ``a.x = b.y AND b.y = c.z`` makes one
    variable over three columns — and ``a.x = b.y AND b.y = a.w`` folds
    two columns of one table into the same variable, which the evaluation
    honours by requiring every member of a table to agree on the code.
    """
    parent: dict[tuple[int, int], tuple[int, int]] = {}

    def find(node: tuple[int, int]) -> tuple[int, int]:
        root = node
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    for a, b in edges:
        parent[find(a)] = find(b)
    components: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for node in parent:
        components.setdefault(find(node), []).append(node)
    return sorted(tuple(sorted(members)) for members in components.values())


def _ordered_variables(variables: list[tuple[tuple[int, int], ...]],
                       relations: tuple, fds: list | None
                       ) -> list[tuple[tuple[tuple[int, int], ...], bool, int]]:
    """Greedy variable order: FD-implied first, then smallest distinct count.

    The estimate of a variable is the smallest live distinct count among
    its member columns (the intersection can only be smaller).  A variable
    with a member inside the Armstrong closure of the attributes its table
    has already bound is functionally determined — at most one candidate
    survives per partial assignment — so it orders ahead of everything
    that still branches.  Ties keep the discovery order, which is
    deterministic (variables arrive sorted by member positions).
    """
    from repro.constraints.fd import closure

    side_fds: list[list] = [[] for _ in relations]
    for fd in fds or ():
        name = fd.relation_name.lower()
        for side, relation in enumerate(relations):
            if relation.name.lower() == name:
                side_fds[side].append(fd)

    def attribute(side: int, position: int) -> str:
        return relations[side].schema.attributes[position].name.lower()

    estimates = [min(relations[side].columns.column_at(position).distinct_count()
                     for side, position in members)
                 for members in variables]
    bound: list[set[str]] = [set() for _ in relations]
    remaining = list(range(len(variables)))
    ordered: list[tuple[tuple[tuple[int, int], ...], bool, int]] = []
    while remaining:
        best_key: tuple | None = None
        best_index = -1
        best_implied = False
        for index in remaining:
            implied = any(
                bound[side] and side_fds[side]
                and attribute(side, position) in closure(bound[side],
                                                         side_fds[side])
                for side, position in variables[index])
            key = (0 if implied else 1, estimates[index], index)
            if best_key is None or key < best_key:
                best_key, best_index, best_implied = key, index, implied
        ordered.append((variables[best_index], best_implied,
                        estimates[best_index]))
        remaining.remove(best_index)
        for side, position in variables[best_index]:
            bound[side].add(attribute(side, position))
    return ordered


def compile_multi_join_plan(database: "Database", statement: SelectStatement,
                            reasons: list[str] | None = None,
                            fds: list | None = None) -> MultiJoinPlan | None:
    """Compile a 3+-table INNER JOIN to a :class:`MultiJoinPlan`, or ``None``.

    Requirements generalise :func:`compile_join_plan`: three or more
    tables with pairwise-distinct binding names, inner joins only, every
    conjunct either a both-qualified cross-table equi key or a single-side
    code-set filter, and the equi-join graph connecting *all* tables (a
    disconnected graph means a cross product, which stays on the row
    path).  When *reasons* is a list, every fallback appends an
    explanation for ``EXPLAIN``.
    """
    tables = list(statement.tables) + [join.table for join in statement.joins]
    if len(tables) < 3:
        return _note(reasons, "query reads fewer than three tables")
    if any(join.kind != "inner" for join in statement.joins):
        return _note(reasons, "only INNER joins compile to multiway joins")
    bindings = [table.binding_name.lower() for table in tables]
    if len(set(bindings)) != len(bindings):
        return _note(reasons, "tables share a binding name")
    try:
        relations = tuple(database.relation(table.relation_name) for table in tables)
    except ReproError:
        # unknown relation: the row path raises the canonical error
        return _note(reasons, "unknown relation in FROM")
    sides = tuple(zip(tables, relations))
    plan = MultiJoinPlan(relations, tuple(tables))
    plan.filters = tuple([] for _ in tables)

    conjuncts = flatten_conjuncts(statement.where)
    for join in statement.joins:
        conjuncts.extend(flatten_conjuncts(join.condition))
    edges: list[tuple[tuple[int, int], tuple[int, int]]] = []
    for conjunct in conjuncts:
        edge = _as_multi_equi(conjunct, sides)
        if edge is not None:
            edges.append(edge)
            continue
        compiled = _compile_join_filter(conjunct, sides)
        if compiled is None:
            return _note(reasons,
                         f"conjunct {conjunct} is neither an equi key "
                         "nor a single-side code-set test")
        side, position, codes = compiled
        plan.filters[side].append((position, codes))
    if not edges:
        return _note(reasons, "no equi-join key between the tables")

    variables = _join_variables(edges)
    linked: dict[int, int] = {}

    def find_table(table_index: int) -> int:
        root = table_index
        while linked.setdefault(root, root) != root:
            root = linked[root]
        return root

    for members in variables:
        first = find_table(members[0][0])
        for side, _ in members[1:]:
            linked[find_table(side)] = first
    if len({find_table(side) for side in range(len(tables))}) != 1:
        return _note(reasons,
                     "equi keys do not connect all tables (cross product)")
    plan.var_order = _ordered_variables(variables, relations, fds)

    try:
        items = expanded_items(database, statement)
    except SQLExecutionError:
        # e.g. a bad 'alias.*': the row path raises identically
        return _note(reasons, "select items do not expand cleanly")
    plan.names = [name for name, _ in items]

    if statement.has_aggregates():
        plan.grouped = True
        keys: list[tuple[int, int]] = []
        for expression in statement.group_by:
            if not isinstance(expression, ColumnRef):
                return _note(reasons, "GROUP BY on an expression")
            resolved = _join_position(expression, sides)
            if resolved is None:
                return _note(reasons,
                             f"GROUP BY column {expression} does not resolve")
            keys.append(resolved)
        plan.group_keys = tuple(keys)

        registry: dict[AggregateCall, int] = {}
        for _, expression in items:
            if isinstance(expression, AggregateCall):
                index = _register_multi_aggregate(plan, registry, expression, sides)
                if index is None:
                    return _note(reasons,
                                 f"aggregate {expression} has no code-level spec")
                plan.items.append(("agg", index))
            else:
                for call in collect_aggregates(expression):
                    if _register_multi_aggregate(plan, registry, call, sides) is None:
                        return _note(reasons,
                                     f"aggregate {call} has no code-level spec")
                plan.items.append(("expr", expression))
        plan.having = statement.having
        for call in collect_aggregates(statement.having):
            if _register_multi_aggregate(plan, registry, call, sides) is None:
                return _note(reasons,
                             f"HAVING aggregate {call} has no code-level spec")
        return plan

    for _, expression in items:
        resolved = _join_position(expression, sides) \
            if isinstance(expression, ColumnRef) else None
        if resolved is None:
            return _note(reasons, f"select item {expression} is computed")
        plan.items.append(("col",) + resolved)
    plan.order_ranks = _join_order_ranks(plan, statement)
    return plan


def _register_multi_aggregate(plan: MultiJoinPlan,
                              registry: dict[AggregateCall, int],
                              call: AggregateCall, sides: tuple) -> int | None:
    index = registry.get(call)
    if index is not None:
        return index
    spec = _join_aggregate_spec(call, sides)  # side-tagged, N-side safe
    if spec is None:
        return None
    index = len(plan.agg_calls)
    registry[call] = index
    plan.agg_calls.append(call)
    plan.agg_specs.append(spec)
    return index


def multiway_base_tids(plan: MultiJoinPlan) -> list[list[int]]:
    """Per-table live tids surviving that table's push-down filters."""
    base: list[list[int]] = []
    for side, relation in enumerate(plan.relations):
        store = relation.columns
        filters = [(store.column_at(position).codes, allowed)
                   for position, allowed in plan.filters[side]]
        if filters:
            base.append([tid for tid in relation.tids()
                         if all(codes[tid] in allowed
                                for codes, allowed in filters)])
        else:
            base.append(list(relation.tids()))
    return base


def multiway_query_payload(plan: MultiJoinPlan
                           ) -> tuple[dict[str, Any], list[int]]:
    """The picklable ``multiway_probe`` query and the first-level candidates.

    Per level the payload carries, for each participating table, the
    member ``(position, translation)`` pairs that map that column's codes
    into the variable's representative dictionary.  The representative is
    the first member; later members bridge to the *previous* member's
    column and compose onward
    (:meth:`~repro.relational.columns.DictionaryBridge.compose`), so every
    hop is revalidated against its dictionaries' generation+size stamps on
    every query.  Chaining through intermediate dictionaries is join-safe:
    a value an intermediate member never saw has no live tuple there, so
    the intersection would drop it regardless.

    The first variable's groups are built here (parent side) so their
    sorted-code intersection — the candidate list the engine chunks — is
    computed once, not per worker.
    """
    from repro.engine.worker import gallop_intersect, multiway_group

    stores = [relation.columns for relation in plan.relations]
    arrays = [store.code_arrays(range(relation.schema.arity))
              for store, relation in zip(stores, plan.relations)]
    levels: list[list[tuple[int, list[tuple[int, Any]]]]] = []
    for members, _, _ in plan.var_order:
        chain = None  # translation of the previous member into the rep space
        previous_column = None
        translations: list[Any] = []
        for side, position in members:
            column = stores[side].column_at(position)
            if previous_column is None:
                translations.append(None)
            else:
                hop = column.bridge_to(previous_column)
                chain = hop if chain is None else hop.compose(chain)
                translations.append(chain.translation)
            previous_column = column
        per_side: dict[int, list[tuple[int, Any]]] = {}
        for (side, position), translation in zip(members, translations):
            per_side.setdefault(side, []).append((position, translation))
        levels.append(sorted(per_side.items()))

    base = multiway_base_tids(plan)
    level_one: dict[int, dict[int, list[int]]] = {}
    code_lists: list[list[int]] = []
    for side, member_list in levels[0]:
        groups = multiway_group(arrays[side], base[side], member_list)
        level_one[side] = groups
        code_lists.append(sorted(groups))
    candidates = gallop_intersect(code_lists)
    query = {
        "levels": levels,
        "base": [None if side in level_one else tids
                 for side, tids in enumerate(base)],
        "level_one": level_one,
    }
    return query, candidates


def multiway_fold_payload(plan: MultiJoinPlan) -> dict[str, Any]:
    """The picklable ``multiway_fold`` query: group keys + side-tagged specs."""
    aggs: list[tuple] = []
    for spec in plan.agg_specs:
        if spec[0] in ("min", "max"):
            ranks = plan.relations[spec[1]].columns.column_at(spec[2]).order().ranks
            aggs.append((spec[0], spec[1], spec[2], ranks))
        else:
            aggs.append(spec)
    return {"group": plan.group_keys, "aggs": aggs}


# -- factorised (semiring) aggregate plans ------------------------------------
#
# A grouped join does not need the tuple product: COUNT / SUM / MIN / MAX
# are semiring folds, so per-table partial aggregates per join-variable
# binding combine by multiplication instead of enumeration (the FAQ
# decomposition over the FDB-style factorised representation the
# tid-group lists already are).  For the two-table hash join, build-side
# partials fold into the buckets before any probe runs; for the multiway
# join, the worker folds each fully bound per-table block without
# expanding the cartesian product.  Results are byte-identical to the
# enumerated path:
#
# * COUNT(*) multiplies block sizes; COUNT(col) scales the per-block
#   non-NULL count by the co-block multiplicity (an exact integer).
# * COUNT(DISTINCT col) and DISTINCT SUM/AVG keep code *sets* —
#   multiplicity-free, so the product never matters.
# * MIN / MAX compare dense dictionary-order ranks; repetition cannot
#   change the best rank, and distinct codes have distinct ranks, so the
#   winning code is order-independent.
# * SUM / AVG fold as an exact (total, count) pair — but only over
#   INTEGER / BOOLEAN columns, where addition is associative bit for bit.
#   FLOAT arguments stay on the enumerated path (recorded as a why-not
#   reason): the factorised product cannot replay the row path's fold
#   order, and float addition is not associative.
# * The group representative (HAVING / expression items evaluate against
#   it) is the enumerated path's first tuple: for the hash join the
#   probe-order first (left tid, block first tid) pair, for the multiway
#   join the per-side minima merged by lexicographic min, with groups
#   re-sorted by representative to restore the ascending first-occurrence
#   order of the sorted enumeration.

#: module switch used by parity tests to force the enumerated reference.
FACTORISE = True

#: column types whose SUM/AVG folds are exact (order-free) integers.
_EXACT_FOLD_TYPES = (AttributeType.INTEGER, AttributeType.BOOLEAN)


class FactorisedPlan:
    """A grouped join plan evaluated by semiring folds, not enumeration."""

    __slots__ = ("plan", "kind")

    def __init__(self, plan: "JoinPlan | MultiJoinPlan", kind: str) -> None:
        self.plan = plan  #: the compiled enumerated plan (shape + specs).
        self.kind = kind  #: ``"join"`` (two tables) or ``"multiway"``.


def factorise_plan(plan: "JoinPlan | MultiJoinPlan",
                   reasons: list[str] | None = None) -> FactorisedPlan | None:
    """Wrap *plan* as a :class:`FactorisedPlan`, or ``None`` to enumerate.

    A plan factorises when it is grouped (plain scans must enumerate
    their output tuples) and every aggregate is semiring-foldable —
    which leaves exactly one gate: SUM / AVG over a non-integer column,
    whose float fold order only the enumerated path can preserve.  When
    *reasons* is a list, every fallback appends an explanation for
    ``EXPLAIN``'s ``why_not_factorised`` block.
    """
    if not FACTORISE:
        return _note(reasons, "factorised aggregates are disabled")
    if not plan.grouped:
        return _note(reasons,
                     "statement has no aggregates (plain scans enumerate tuples)")
    for call, spec in zip(plan.agg_calls, plan.agg_specs):
        if spec[0] in ("sum", "avg"):
            attribute = plan.relations[spec[1]].schema.attributes[spec[2]]
            if attribute.type not in _EXACT_FOLD_TYPES:
                return _note(
                    reasons,
                    f"aggregate {call} folds {attribute.type.value} values, "
                    "whose fold order the factorised product cannot preserve")
    kind = "join" if isinstance(plan, JoinPlan) else "multiway"
    return FactorisedPlan(plan, kind)


def factorised_aggregates(plan: "JoinPlan | MultiJoinPlan") -> list[tuple]:
    """The side-tagged semiring specs of the ``factorised_fold`` worker.

    * ``("count_star",)``
    * ``("count" | "count_distinct", side, position)``
    * ``("min" | "max", side, position, ranks)`` — dense dictionary ranks;
    * ``("sum" | "avg", side, position, distinct, values)`` — the decoded
      value list rides along for the exact ``[total, count]`` fold
      (``None`` when DISTINCT: the code set decodes at finalize).
    """
    aggs: list[tuple] = []
    for spec in plan.agg_specs:
        kind = spec[0]
        if kind in ("min", "max"):
            ranks = plan.relations[spec[1]].columns.column_at(spec[2]).order().ranks
            aggs.append((kind, spec[1], spec[2], ranks))
        elif kind in ("sum", "avg"):
            values = None if spec[3] else \
                plan.relations[spec[1]].columns.column_at(spec[2]).values
            aggs.append((kind, spec[1], spec[2], spec[3], values))
        else:  # count_star | count | count_distinct ride unchanged
            aggs.append(spec)
    return aggs


def build_factorised_buckets(plan: "JoinPlan",
                             aggs: list[tuple]) -> dict[Any, list[list]]:
    """Build-side hash buckets with per-block partial aggregates folded in.

    Same keying as :func:`build_join_buckets` (side 1 builds, push-down
    filters apply first, NULL join keys never match, bare code for one
    key pair), but instead of raw tid lists each bucket holds *blocks* —
    one per distinct build-side group-key projection, in first-occurrence
    (scan) order: ``[part codes, first tid, size, partials]`` with one
    pre-folded partial per spec (``None`` for probe-side specs).  Every
    probe hit then combines a whole block in O(specs), never O(size).
    """
    relation = plan.relations[1]
    store = relation.columns
    key_arrays = [store.column_at(pair[1]).codes for pair in plan.key_pairs]
    filters = [(store.column_at(position).codes, allowed)
               for position, allowed in plan.filters[1]]
    part_arrays = [store.column_at(position).codes
                   for side, position in plan.group_keys if side == 1]
    # build-side fold steps: (spec slot, op, codes, ranks-or-values)
    steps: list[tuple[int, int, Any, Any]] = []
    for index, spec in enumerate(aggs):
        kind = spec[0]
        if kind == "count_star" or spec[1] != 1:
            continue
        codes = store.column_at(spec[2]).codes
        if kind == "count":
            steps.append((index, 0, codes, None))
        elif kind == "count_distinct" or (kind in ("sum", "avg") and spec[3]):
            steps.append((index, 1, codes, None))
        elif kind in ("sum", "avg"):
            steps.append((index, 2, codes, spec[4]))
        else:  # min | max
            steps.append((index, 3 if kind == "min" else 4, codes, spec[3]))
    single = len(key_arrays) == 1
    buckets: dict[Any, dict[Any, list]] = {}
    for tid in relation.tids():
        if any(codes[tid] not in allowed for codes, allowed in filters):
            continue
        if single:
            key: Any = key_arrays[0][tid]
            if key == NULL_CODE:
                continue
        else:
            key_codes = [codes[tid] for codes in key_arrays]
            if NULL_CODE in key_codes:
                continue
            key = tuple(key_codes)
        part = tuple(codes[tid] for codes in part_arrays)
        blocks = buckets.get(key)
        if blocks is None:
            blocks = buckets[key] = {}
        block = blocks.get(part)
        if block is None:
            partials: list[Any] = [None] * len(aggs)
            for index, op, _, _ in steps:
                partials[index] = 0 if op == 0 else set() if op == 1 \
                    else [0, 0] if op == 2 else None
            block = blocks[part] = [part, tid, 0, partials]
        block[2] += 1
        partials = block[3]
        for index, op, codes, aux in steps:
            code = codes[tid]
            if code == NULL_CODE:
                continue
            if op == 0:
                partials[index] += 1
            elif op == 1:
                partials[index].add(code)
            elif op == 2:
                pair_state = partials[index]
                pair_state[0] += aux[code]
                pair_state[1] += 1
            else:
                rank = aux[code]
                best = partials[index]
                if best is None or (rank < best[0] if op == 3 else rank > best[0]):
                    partials[index] = (rank, code)
    return {key: list(blocks.values()) for key, blocks in buckets.items()}


def factorised_join_payload(plan: "JoinPlan", aggs: list[tuple],
                            buckets: dict[Any, list[list]]) -> dict[str, Any]:
    """The picklable ``factorised_fold`` query of a two-table hash join.

    Factorised probes always walk the left side (group first-occurrence
    order is left-major, like enumerated grouped probes); bridges are
    revalidated per query exactly as in :func:`join_query_payload`.
    """
    probe_store = plan.relations[0].columns
    build_store = plan.relations[1].columns
    keys = []
    for pair in plan.key_pairs:
        probe_column = probe_store.column_at(pair[0])
        build_column = build_store.column_at(pair[1])
        keys.append((pair[0], probe_column.bridge_to(build_column).translation))
    return {
        "kind": "join",
        "probe_side": 0,
        "filters": plan.filters[0],
        "keys": keys,
        "buckets": buckets,
        "group": plan.group_keys,
        "aggs": aggs,
    }


def factorised_multi_payload(plan: "MultiJoinPlan"
                             ) -> tuple[dict[str, Any], list[int]]:
    """The picklable ``factorised_fold`` query of a multiway join.

    The probe shape (levels, base tids, first-variable groups) is shared
    verbatim with :func:`multiway_query_payload`; the factorised worker
    descends identically and folds each fully bound block instead of
    emitting its cartesian product.
    """
    query, candidates = multiway_query_payload(plan)
    query = dict(query)
    query["kind"] = "multi"
    query["group"] = plan.group_keys
    query["aggs"] = factorised_aggregates(plan)
    return query, candidates


def empty_factorised_state(spec: tuple) -> Any:
    """The factorised partial state of a group no tuple reached."""
    from repro.engine.worker import initial_factorised_state

    return initial_factorised_state(spec)


def finalize_factorised(spec: tuple, state: Any, relations: tuple) -> Any:
    """Turn one merged factorised partial into the SQL result value.

    Mirrors :func:`finalize_join_aggregate` value for value: counts are
    ints, DISTINCT states are code sets (decoded here; integer sums are
    order-free, so set order never shows), SUM/AVG finalize the exact
    ``[total, count]`` pair (``count == 0`` — an empty or all-NULL group —
    is NULL, and ``total / count`` divides the same two ints the
    enumerated fold produces), MIN/MAX decode the best rank's code.
    """
    kind = spec[0]
    if kind in ("count_star", "count"):
        return state
    if kind == "count_distinct":
        return len(state)
    if kind in ("sum", "avg"):
        if spec[3]:  # DISTINCT: the code set decodes to exact integers
            if not state:
                return NULL
            values = relations[spec[1]].columns.column_at(spec[2]).values
            total = sum(values[code] for code in state)
            return total if kind == "sum" else total / len(state)
        total, count = state
        if not count:
            return NULL
        return total if kind == "sum" else total / count
    if state is None:  # min | max over an empty / all-NULL group
        return NULL
    return relations[spec[1]].columns.column_at(spec[2]).values[state[1]]
