"""The public SQL entry point: parse + execute against a database."""

from __future__ import annotations

from typing import Any

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.sql.executor import SQLExecutor
from repro.relational.sql.explain import format_explain
from repro.relational.sql.parser import parse_sql


class SQLEngine:
    """Executes SQL text against a :class:`~repro.relational.database.Database`.

    Example::

        engine = SQLEngine(database)
        result = engine.query("SELECT zip, COUNT(*) AS n FROM customer GROUP BY zip")

    ``engine=``/``workers=`` select the chunked execution engine
    (:mod:`repro.engine`) for code-native scans: single-table
    scan/filter/group/aggregate plans fan out across column-partition
    chunks, with results identical to the in-process path.  The
    ``REPRO_ENGINE`` / ``REPRO_WORKERS`` environment variables provide the
    same defaults process-wide.  ``use_columns=False`` retains the
    historical row-at-a-time execution for everything (the parity
    reference).
    """

    def __init__(self, database: Database, engine: str | None = None,
                 workers: int | None = None, use_columns: bool = True,
                 fds: Any = None, task_timeout: float | None = None,
                 task_retries: int | None = None) -> None:
        from repro.engine.executor import resolve_pool

        self._database = database
        # fds are variable-ordering hints for multiway joins; they never
        # change results, only the order join variables are bound in.
        self._executor = SQLExecutor(database, use_columns=use_columns,
                                     pool=resolve_pool(engine, workers,
                                                       task_timeout=task_timeout,
                                                       task_retries=task_retries),
                                     fds=fds)

    @property
    def database(self) -> Database:
        return self._database

    @property
    def last_plan(self) -> str | None:
        """The path the last SELECT took: ``"code"``, ``"join"``,
        ``"multiway"``, ``"factorised"`` or ``"row"`` (diagnostics)."""
        return self._executor.last_plan

    @property
    def last_explain(self) -> dict[str, Any] | None:
        """The EXPLAIN info dict of the last ``explain``/``query(explain=True)``."""
        return self._executor.last_explain

    def query(self, sql: str, result_name: str = "result",
              explain: bool = False) -> Relation:
        """Parse and execute *sql*, returning the result relation.

        With ``explain=True`` the executor additionally records plan
        choice, push-down pruning and join shape into ``last_explain``
        (rendered by :meth:`explain`); the result is unchanged.
        """
        statement = parse_sql(sql)
        return self._executor.execute(statement, result_name=result_name,
                                      explain=explain)

    def scalar(self, sql: str):
        """Execute *sql* and return the single value of a 1x1 result."""
        result = self.query(sql)
        rows = result.tuples()
        if not rows or result.schema.arity == 0:
            return None
        return rows[0].at(0)

    def explain(self, sql: str) -> str:
        """Execute *sql* and return the plan report: chosen path (and why
        the code-native paths were rejected when not taken), per-conjunct
        push-down pruning, and hash-join build/probe shape."""
        self.query(sql, explain=True)
        info = self._executor.last_explain
        return format_explain(info) if info is not None else "plan: unknown"
