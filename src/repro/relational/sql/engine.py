"""The public SQL entry point: parse + execute against a database."""

from __future__ import annotations

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.sql.executor import SQLExecutor
from repro.relational.sql.parser import parse_sql


class SQLEngine:
    """Executes SQL text against a :class:`~repro.relational.database.Database`.

    Example::

        engine = SQLEngine(database)
        result = engine.query("SELECT zip, COUNT(*) AS n FROM customer GROUP BY zip")
    """

    def __init__(self, database: Database) -> None:
        self._database = database
        self._executor = SQLExecutor(database)

    @property
    def database(self) -> Database:
        return self._database

    def query(self, sql: str, result_name: str = "result") -> Relation:
        """Parse and execute *sql*, returning the result relation."""
        statement = parse_sql(sql)
        return self._executor.execute(statement, result_name=result_name)

    def scalar(self, sql: str):
        """Execute *sql* and return the single value of a 1x1 result."""
        result = self.query(sql)
        rows = result.tuples()
        if not rows or result.schema.arity == 0:
            return None
        return rows[0].at(0)

    def explain(self, sql: str) -> str:
        """Return a textual description of the parsed statement (for debugging)."""
        statement = parse_sql(sql)
        return repr(statement)
