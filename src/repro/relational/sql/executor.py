"""Executor for the SQL subset.

Execution takes one of two paths, selected per SELECT:

**Code-native path** (the default for single-table statements).  The
statement is compiled by :func:`repro.relational.sql.columnar.compile_plan`
into a scan → filter → group → aggregate pipeline over the relation's
dictionary code arrays: WHERE conjuncts become ``(position, allowed code
set)`` filters (string equality / ``IN`` and their negations, plus ``<``
``<=`` ``>`` ``>=`` and the desugared ``BETWEEN`` via the column's
dictionary-order view), GROUP BY keys are code tuples straight off the
arrays, and COUNT / COUNT(DISTINCT) / MIN / MAX / SUM / AVG are computed
on codes.  No ``_ExecRow`` binding dict is ever built — values decode
only into the output rows.  The scan runs in-process, or fans out across
:mod:`repro.engine` chunks (the ``sql_scan`` worker, stitched by
:class:`~repro.engine.sql.AggregateMerger`) when the executor was built
with a pool.

**Row path** (joins, multiple tables, residual predicates, computed
select items — and everything when ``use_columns=False``).  The FROM
clause is turned into a left-deep sequence of hash equi-joins where
possible and nested-loop filters otherwise (:class:`_FromPlanner`);
push-downable WHERE conjuncts still select tids by code membership before
any binding dict is built (unless ``use_columns=False``); the remaining
conjuncts, GROUP BY, aggregates and HAVING are evaluated row-at-a-time.

Both paths produce identical results — rows, order, names and inferred
types — which the randomized SQL parity suite pins down.  DISTINCT /
ORDER BY / LIMIT and result-relation construction are shared; the
code-native plain scan orders by dictionary ranks instead when every
ORDER BY key allows it.  The result of execution is an ordinary
:class:`~repro.relational.relation.Relation`, so query results compose
with the rest of the engine.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from typing import Any, Callable, Iterable

from repro import obs
from repro.errors import SQLExecutionError
from repro.relational.database import Database
from repro.relational.expressions import (
    ColumnRef,
    Comparison,
    EvaluationContext,
    Expression,
    truth,
)
from repro.relational.relation import Relation, Tuple
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql.ast import (
    AggregateCall,
    SelectStatement,
    Statement,
    TableRef,
    UnionStatement,
)
from repro.relational.sql.columnar import (
    CodePlan,
    FactorisedPlan,
    JoinPlan,
    MultiJoinPlan,
    build_factorised_buckets,
    build_join_buckets,
    collect_aggregates,
    compile_filter,
    compile_join_plan,
    compile_multi_join_plan,
    compile_plan,
    empty_aggregate_state,
    empty_factorised_state,
    expanded_items,
    factorise_plan,
    factorised_aggregates,
    factorised_join_payload,
    factorised_multi_payload,
    finalize_aggregate,
    finalize_factorised,
    finalize_join_aggregate,
    flatten_conjuncts,
    join_query_payload,
    multiway_fold_payload,
    multiway_query_payload,
    query_payload,
    rewrite_aggregates,
)
from repro.relational.types import NULL, AttributeType, is_null, sort_key

#: test hook: called with every _ExecRow built (None disables).  The SQL
#: parity suite points this at a counter to assert the code-native path
#: allocates zero binding rows.
_exec_row_hook: Callable[["_ExecRow"], None] | None = None


class _ExecRow:
    """One intermediate row: bindings for evaluation plus source tuples."""

    __slots__ = ("bindings", "sources")

    def __init__(self, bindings: dict[str, Any], sources: list[tuple[str, Tuple]]) -> None:
        self.bindings = bindings
        self.sources = sources
        if _exec_row_hook is not None:
            _exec_row_hook(self)

    def context(self) -> EvaluationContext:
        return EvaluationContext(self.bindings)

    def merged(self, other: "_ExecRow") -> "_ExecRow":
        bindings = dict(self.bindings)
        for key, value in other.bindings.items():
            # do not let a later table silently shadow an earlier unqualified name
            if "." in key or key not in bindings:
                bindings[key] = value
        return _ExecRow(bindings, self.sources + other.sources)


def _rows_for_table(database: Database, table: TableRef,
                    code_filters: list[tuple[list[int], set[int]]] | None = None) -> list[_ExecRow]:
    relation = database.relation(table.relation_name)
    binding = table.binding_name.lower()
    rows = []
    if code_filters:
        # columnar fast path: select tids by integer code membership first,
        # materialise bindings only for the survivors (same scan order).
        source = (relation.tuple(tid) for tid in relation.tids()
                  if all(codes[tid] in allowed for codes, allowed in code_filters))
    else:
        source = iter(relation)
    for row in source:
        bindings: dict[str, Any] = {}
        for name in relation.schema.attribute_names:
            value = row[name]
            bindings[name.lower()] = value
            bindings[f"{binding}.{name.lower()}"] = value
        rows.append(_ExecRow(bindings, [(table.binding_name, row)]))
    return rows


def _column_binding(ref: ColumnRef) -> str:
    return f"{ref.qualifier.lower()}.{ref.name.lower()}" if ref.qualifier else ref.name.lower()


class _FromPlanner:
    """Builds the joined row stream for a SELECT statement."""

    def __init__(self, database: Database, statement: SelectStatement,
                 use_columns: bool = True,
                 record: list[dict[str, Any]] | None = None) -> None:
        self._database = database
        self._statement = statement
        self._use_columns = use_columns
        #: EXPLAIN sink: per-pushed-conjunct pruning entries land here.
        self._record = record

    def execute(self) -> tuple[list[_ExecRow], list[Expression]]:
        """Return (joined rows, conjuncts not yet applied)."""
        tables = list(self._statement.tables)
        conjuncts = flatten_conjuncts(self._statement.where)
        for join in self._statement.joins:
            tables.append(join.table)
            conjuncts.extend(flatten_conjuncts(join.condition))

        if not tables:
            raise SQLExecutionError("SELECT requires at least one relation in FROM")

        single_table = len(tables) == 1
        remaining = list(conjuncts)
        bound_aliases = {tables[0].binding_name.lower()}
        filters, remaining = self._split_code_filters(tables[0], remaining, single_table)
        current = _rows_for_table(self._database, tables[0], filters)

        for table in tables[1:]:
            alias = table.binding_name.lower()
            filters, remaining = self._split_code_filters(table, remaining, single_table)
            table_rows = _rows_for_table(self._database, table, filters)
            equi, remaining = self._split_equi_conjuncts(remaining, bound_aliases, alias)
            if equi:
                current = self._hash_join(current, table_rows, equi)
            else:
                current = [left.merged(right) for left in current for right in table_rows]
            bound_aliases.add(alias)
        return current, remaining

    def _split_code_filters(self, table: TableRef, conjuncts: list[Expression],
                            single_table: bool) -> tuple[list[tuple[list[int], set[int]]],
                                                         list[Expression]]:
        """Compile push-downable conjuncts on *table* to code-set filters.

        String equality / ``IN`` (and their negations) on STRING columns
        and range comparisons on any column compile to dictionary-code
        sets via :func:`~repro.relational.sql.columnar.compile_filter`;
        everything else stays a residual conjunct, so results — rows
        *and* their order — are identical to the row-at-a-time path.
        With ``use_columns=False`` nothing is pushed down at all: the
        retained reference path evaluates every conjunct on binding rows.
        """
        if not self._use_columns:
            return [], list(conjuncts)
        relation = self._database.relation(table.relation_name)
        filters: list[tuple[list[int], set[int]]] = []
        pushed: list[tuple[Expression, int, set[int]]] = []
        rest: list[Expression] = []
        for conjunct in conjuncts:
            compiled = compile_filter(relation, table, conjunct, single_table)
            if compiled is None:
                rest.append(conjunct)
                continue
            position, codes = compiled
            filters.append((relation.columns.column_at(position).codes, codes))
            pushed.append((conjunct, position, codes))
        if self._record is not None and pushed:
            tids = list(relation.tids())
            for conjunct, position, allowed in pushed:
                codes = relation.columns.column_at(position).codes
                survivors = [tid for tid in tids if codes[tid] in allowed]
                self._record.append({
                    "table": table.binding_name,
                    "attribute": relation.schema.attribute_names[position],
                    "conjunct": str(conjunct),
                    "code_set_size": len(allowed),
                    "rows_in": len(tids),
                    "rows_pruned": len(tids) - len(survivors),
                })
                tids = survivors
        return filters, rest

    def _split_equi_conjuncts(self, conjuncts: list[Expression], bound: set[str],
                              new_alias: str) -> tuple[list[tuple[str, str]], list[Expression]]:
        """Extract ``bound_col = new_col`` equalities usable for a hash join."""
        usable: list[tuple[str, str]] = []
        rest: list[Expression] = []
        for conjunct in conjuncts:
            pair = self._as_equi_pair(conjunct, bound, new_alias)
            if pair is not None:
                usable.append(pair)
            else:
                rest.append(conjunct)
        return usable, rest

    def _as_equi_pair(self, conjunct: Expression, bound: set[str],
                      new_alias: str) -> tuple[str, str] | None:
        if not isinstance(conjunct, Comparison) or conjunct.operator != "=":
            return None
        left, right = conjunct.left, conjunct.right
        if not isinstance(left, ColumnRef) or not isinstance(right, ColumnRef):
            return None
        if left.qualifier is None or right.qualifier is None:
            return None
        left_alias = left.qualifier.lower()
        right_alias = right.qualifier.lower()
        if left_alias in bound and right_alias == new_alias:
            return _column_binding(left), _column_binding(right)
        if right_alias in bound and left_alias == new_alias:
            return _column_binding(right), _column_binding(left)
        return None

    @staticmethod
    def _hash_join(left_rows: list[_ExecRow], right_rows: list[_ExecRow],
                   equi: list[tuple[str, str]]) -> list[_ExecRow]:
        left_keys = [pair[0] for pair in equi]
        right_keys = [pair[1] for pair in equi]
        buckets: dict[tuple[Any, ...], list[_ExecRow]] = defaultdict(list)
        for row in right_rows:
            key = tuple(row.bindings.get(k, NULL) for k in right_keys)
            if any(is_null(v) for v in key):
                continue
            buckets[key].append(row)
        joined: list[_ExecRow] = []
        for row in left_rows:
            key = tuple(row.bindings.get(k, NULL) for k in left_keys)
            if any(is_null(v) for v in key):
                continue
            for right in buckets.get(key, ()):
                joined.append(row.merged(right))
        return joined


def _infer_output_type(values: Iterable[Any]) -> AttributeType:
    for value in values:
        if is_null(value):
            continue
        if isinstance(value, bool):
            return AttributeType.BOOLEAN
        if isinstance(value, int):
            return AttributeType.INTEGER
        if isinstance(value, float):
            return AttributeType.FLOAT
        return AttributeType.STRING
    return AttributeType.STRING


class SQLExecutor:
    """Executes parsed statements against a :class:`Database`.

    ``use_columns=False`` retains the historical row-at-a-time reference
    path for everything (no code-native plans, no code-set push-down).
    *pool* is an :class:`~repro.engine.executor.ExecutorPool`: when given,
    code-native scans fan out across it chunk by chunk (results are
    identical — the engine is an execution detail).  *fds* are
    :class:`~repro.constraints.fd.FunctionalDependency` hints the multiway
    planner uses to tighten its variable order (they never change
    results).
    """

    def __init__(self, database: Database, use_columns: bool = True,
                 pool: Any = None, fds: Any = None) -> None:
        self._database = database
        self._use_columns = use_columns
        self._pool = pool
        self._fds = list(fds) if fds else []
        #: per-relation chunked engines (broadcast state survives queries).
        self._engines: dict[str, Any] = {}
        #: per-relation-pair chunked join engines, keyed by binding pair.
        self._join_engines: dict[tuple[str, str], Any] = {}
        #: per-relation-tuple chunked multiway engines, keyed by name tuple.
        self._multi_engines: dict[tuple[str, ...], Any] = {}
        #: the path the last SELECT took: "code", "join", "multiway",
        #: "factorised" or "row".
        self.last_plan: str | None = None
        #: EXPLAIN info for the last statement run with ``explain=True``.
        self.last_explain: dict[str, Any] | None = None
        #: in-flight EXPLAIN sink (None when not explaining).
        self._explain: dict[str, Any] | None = None

    # -- public ------------------------------------------------------------

    def execute(self, statement: Statement, result_name: str = "result",
                explain: bool = False) -> Relation:
        if isinstance(statement, UnionStatement):
            return self._execute_union(statement, result_name, explain)
        return self._execute_select(statement, result_name, explain)

    # -- UNION ---------------------------------------------------------------

    def _execute_union(self, statement: UnionStatement, result_name: str,
                       explain: bool = False) -> Relation:
        infos: list[dict[str, Any] | None] = []
        parts = []
        for select in statement.selects:
            parts.append(self._execute_select(select, result_name, explain))
            if explain:
                infos.append(self.last_explain)
        if explain:
            self.last_explain = {"plan": "union", "selects": infos}
        first = parts[0]
        schema = first.schema.renamed_relation(result_name)
        result = Relation(schema)
        seen: set[tuple[Any, ...]] = set()
        for part in parts:
            if part.schema.arity != schema.arity:
                raise SQLExecutionError("UNION requires selects of equal arity")
            for row in part:
                key = row.values
                if statement.all or key not in seen:
                    seen.add(key)
                    result.insert(list(key))
        return result

    # -- SELECT ----------------------------------------------------------------

    def _execute_select(self, statement: SelectStatement, result_name: str,
                        explain: bool = False) -> Relation:
        pre_ordered = False
        ran_code = False
        self.last_plan = "row"
        info: dict[str, Any] | None = None
        if explain:
            info = {"plan": "row", "why_not_code": [], "why_not_join": [],
                    "why_not_multiway": [], "why_not_factorised": [],
                    "filters": [], "join": None, "multiway": None,
                    "factorised": None}
            if not self._use_columns:
                info["why_not_code"].append("use_columns=False")
                info["why_not_join"].append("use_columns=False")
                info["why_not_multiway"].append("use_columns=False")
                info["why_not_factorised"].append("use_columns=False")
        self._explain = info
        if self._use_columns:
            plan = compile_plan(self._database, statement,
                                info["why_not_code"] if info is not None else None)
            if plan is not None:
                self.last_plan = "code"
                if obs.enabled:
                    obs.inc("sql.plan.code")
                if info is not None:
                    info["plan"] = "code"
                    info["why_not_join"].append("code-native single-table plan chosen")
                    info["filters"] = self._explain_filters(
                        plan.relation, plan.table.binding_name, plan.filters)
                output_rows, names, pre_ordered = self._execute_code_plan(plan)
                ran_code = True
            else:
                join_plan = compile_join_plan(
                    self._database, statement,
                    info["why_not_join"] if info is not None else None)
                if join_plan is not None:
                    factorised = factorise_plan(
                        join_plan,
                        info["why_not_factorised"] if info is not None else None)
                    if factorised is not None:
                        self.last_plan = "factorised"
                        if obs.enabled:
                            obs.inc("sql.plan.factorised")
                        if info is not None:
                            info["plan"] = "factorised"
                        output_rows, names, pre_ordered = \
                            self._execute_factorised_join(join_plan)
                    else:
                        self.last_plan = "join"
                        if obs.enabled:
                            obs.inc("sql.plan.join")
                        if info is not None:
                            info["plan"] = "join"
                        output_rows, names, pre_ordered = \
                            self._execute_join_plan(join_plan)
                    ran_code = True
                else:
                    multi_plan = compile_multi_join_plan(
                        self._database, statement,
                        info["why_not_multiway"] if info is not None else None,
                        self._fds)
                    if multi_plan is not None:
                        factorised = factorise_plan(
                            multi_plan,
                            info["why_not_factorised"] if info is not None else None)
                        if factorised is not None:
                            self.last_plan = "factorised"
                            if obs.enabled:
                                obs.inc("sql.plan.factorised")
                            if info is not None:
                                info["plan"] = "factorised"
                            output_rows, names, pre_ordered = \
                                self._execute_factorised_multi(multi_plan)
                        else:
                            self.last_plan = "multiway"
                            if obs.enabled:
                                obs.inc("sql.plan.multiway")
                            if info is not None:
                                info["plan"] = "multiway"
                            output_rows, names, pre_ordered = \
                                self._execute_multi_join_plan(multi_plan)
                        ran_code = True
        if obs.enabled and not ran_code:
            obs.inc("sql.plan.row")

        if not ran_code:
            rows, residual = _FromPlanner(
                self._database, statement, use_columns=self._use_columns,
                record=info["filters"] if info is not None else None).execute()

            for conjunct in residual:
                rows = [row for row in rows if truth(conjunct.evaluate(row.context()))]

            if statement.has_aggregates():
                output_rows, names = self._grouped_output(statement, rows)
            else:
                output_rows, names = self._plain_output(statement, rows)

        if statement.distinct:
            deduped = []
            seen: set[tuple[Any, ...]] = set()
            for row in output_rows:
                key = tuple(row)
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            output_rows = deduped

        if statement.order_by and not pre_ordered:
            output_rows = self._order(statement, output_rows, names)

        if statement.limit is not None:
            output_rows = output_rows[: statement.limit]

        columns = list(zip(*output_rows)) if output_rows else [[] for _ in names]
        attributes = [
            Attribute(name, _infer_output_type(column))
            for name, column in zip(names, columns)
        ]
        unique_attributes = _deduplicate_names(attributes)
        schema = RelationSchema(result_name, unique_attributes)
        result = Relation(schema)
        for row in output_rows:
            result.insert(list(row))
        if info is not None:
            self.last_explain = info
            self._explain = None
        return result

    def _explain_filters(self, relation: Relation, table_name: str,
                         filters: list[tuple[int, set[int]]],
                         ) -> list[dict[str, Any]]:
        """Per-filter pruning stats for EXPLAIN: code-set size, rows pruned.

        Filters apply conjunctively, so survivors of one feed the next —
        ``rows_in`` of filter *k* is the survivor count of filter *k - 1*.
        """
        entries: list[dict[str, Any]] = []
        tids = list(relation.tids())
        store = relation.columns
        for position, allowed in filters:
            codes = store.column_at(position).codes
            survivors = [tid for tid in tids if codes[tid] in allowed]
            entries.append({
                "table": table_name,
                "attribute": relation.schema.attribute_names[position],
                "code_set_size": len(allowed),
                "rows_in": len(tids),
                "rows_pruned": len(tids) - len(survivors),
            })
            tids = survivors
        return entries

    # -- code-native execution ----------------------------------------------

    def _execute_code_plan(self, plan: CodePlan) -> tuple[list[list[Any]], list[str], bool]:
        """Run a compiled code-native plan; returns (rows, names, pre-ordered)."""
        relation = plan.relation
        query = query_payload(plan)
        if self._pool is None:
            from repro.engine import worker
            from repro.engine.sql import SQL_SPEC, broadcast_state

            [(seconds, result)] = worker.run_local_timed(
                broadcast_state(relation),
                [("sql_scan", (SQL_SPEC, query, relation.tids()))])
            if obs.enabled:
                obs.observe("engine.task.sql_scan.seconds", seconds)
        else:
            engine = self._chunked_engine(relation)
            result = engine.scan_grouped(query) if plan.grouped else engine.scan(query)

        if plan.grouped:
            return self._code_grouped_output(plan, result), list(plan.names), False
        tids, pre_ordered = self._code_order(plan, result)
        store = relation.columns
        columns = [store.column_at(position) for _, position in plan.items]
        output_rows = [[column.values[column.codes[tid]] for column in columns]
                       for tid in tids]
        return output_rows, list(plan.names), pre_ordered

    def _chunked_engine(self, relation: Relation) -> Any:
        """The per-relation chunked scan engine (broadcast state cached)."""
        from repro.engine.sql import ChunkedSQLEngine

        key = relation.name.lower()
        engine = self._engines.get(key)
        if engine is None or engine.relation is not relation:
            engine = ChunkedSQLEngine(relation, self._pool)
            self._engines[key] = engine
        return engine

    def _code_order(self, plan: CodePlan, tids: list[int]) -> tuple[list[int], bool]:
        """Order surviving tids by dictionary ranks when the plan allows it.

        Replicates :meth:`_order` move for move — ascending sort on the
        dense rank tuple, full reverse when every key is descending, and
        per-key stable re-sorts (last key first) for mixed directions —
        so the decoded rows land in exactly the value-sorted order.
        """
        order = plan.order_ranks
        if not order:
            return tids, False
        store = plan.relation.columns
        keys = [(store.column_at(position).order().ranks,
                 store.column_at(position).codes, descending)
                for position, descending in order]
        flags = [descending for _, _, descending in keys]
        limit = plan.limit
        if limit is not None and 0 <= limit < len(tids):
            return self._code_top_k(tids, keys, flags, limit), True
        if any(flags) and not all(flags):
            # mixed directions: sort stably, last key first
            ordered = list(tids)
            for ranks, codes, descending in reversed(keys):
                ordered = sorted(
                    ordered,
                    key=lambda tid, r=ranks, c=codes: r[c[tid]],
                    reverse=descending)
            return ordered, True
        ordered = sorted(tids, key=lambda tid: tuple(ranks[codes[tid]]
                                                     for ranks, codes, _ in keys))
        if all(flags):
            ordered = list(reversed(ordered))
        return ordered, True

    def _code_top_k(self, tids: list[int], keys: list[tuple],
                    flags: list[bool], limit: int) -> list[int]:
        """``LIMIT k`` pushed into an ordered scan: partial top-k selection.

        ``heapq.nsmallest(k, ..., key)`` is documented equivalent to
        ``sorted(..., key)[:k]`` — a stable selection — so each direction
        shape maps to a rank-tuple key that replays :meth:`_code_order`'s
        full sort (then truncation) exactly:

        * all ascending — the plain rank tuple (ties keep scan order,
          like the stable full sort);
        * all descending — negated ranks with a negated-tid tiebreak
          (the full path reverses an ascending sort, which also reverses
          tie order);
        * mixed — per-key sign flips (a cascade of stable single-key
          sorts, last key first, equals one lexicographic sort on the
          signed ranks, ties in scan order).

        Ranks are dense integers, so every negation is exact.
        """
        if all(flags):
            def key(tid: int) -> tuple:
                return tuple(-ranks[codes[tid]]
                             for ranks, codes, _ in keys) + (-tid,)
        elif any(flags):
            def key(tid: int) -> tuple:
                return tuple(-ranks[codes[tid]] if descending
                             else ranks[codes[tid]]
                             for ranks, codes, descending in keys)
        else:
            def key(tid: int) -> tuple:
                return tuple(ranks[codes[tid]] for ranks, codes, _ in keys)
        selected = heapq.nsmallest(limit, tids, key=key)
        info = self._explain
        if info is not None:
            info["order"] = {"top_k": limit, "rows_in": len(tids)}
        return selected

    def _code_grouped_output(self, plan: CodePlan,
                             merged: dict[Any, list]) -> list[list[Any]]:
        """Assemble grouped output rows from merged partial-aggregate states."""
        relation = plan.relation
        if not merged and not plan.group_positions:
            # aggregates without GROUP BY over no rows still emit one row
            merged = {(): None}
        output: list[list[Any]] = []
        for entry in merged.values():
            if entry is None:
                representative = None
                states = [empty_aggregate_state(spec) for spec in plan.agg_specs]
            else:
                representative = entry[0]
                states = entry[1:]
            finalized = [finalize_aggregate(spec, state, relation)
                         for spec, state in zip(plan.agg_specs, states)]
            aggregate_values = dict(zip(plan.agg_calls, finalized))
            context: list[EvaluationContext] = []

            def group_context() -> EvaluationContext:
                if not context:
                    context.append(self._representative_context(plan, representative))
                return context[0]

            if plan.having is not None:
                having_value = rewrite_aggregates(
                    plan.having, aggregate_values).evaluate(group_context())
                if not truth(having_value):
                    continue
            values = []
            for kind, ref in plan.items:
                if kind == "agg":
                    values.append(finalized[ref])
                else:
                    values.append(rewrite_aggregates(
                        ref, aggregate_values).evaluate(group_context()))
            output.append(values)
        return output

    def _representative_context(self, plan: CodePlan,
                                tid: int | None) -> EvaluationContext:
        """The binding context of a group's first row (decoded once per group)."""
        if tid is None:
            return EvaluationContext({})
        relation = plan.relation
        store = relation.columns
        binding = plan.table.binding_name.lower()
        bindings: dict[str, Any] = {}
        for position, name in enumerate(relation.schema.attribute_names):
            column = store.column_at(position)
            value = column.values[column.codes[tid]]
            bindings[name.lower()] = value
            bindings[f"{binding}.{name.lower()}"] = value
        return EvaluationContext(bindings)

    # -- code-native join execution ------------------------------------------

    def _execute_join_plan(self, plan: JoinPlan) -> tuple[list[list[Any]], list[str], bool]:
        """Run a compiled hash-join plan; returns (rows, names, pre-ordered)."""
        left, right = plan.relations
        # Grouped probes must walk the pairs left-major (SUM/AVG fold order
        # and group first-occurrence order); plain scans build on the
        # smaller side and restore left-major order from the match lists.
        probe_side = 0 if plan.grouped or len(right) <= len(left) else 1
        buckets = build_join_buckets(plan, 1 - probe_side)
        query = join_query_payload(plan, probe_side, buckets)
        probe = plan.relations[probe_side]

        info = self._explain
        if info is not None:
            bindings = (plan.tables[0].binding_name, plan.tables[1].binding_name)
            for side in (0, 1):
                info["filters"].extend(self._explain_filters(
                    plan.relations[side], bindings[side], plan.filters[side]))
            info["join"] = {
                "build_side": bindings[1 - probe_side],
                "probe_side": bindings[probe_side],
                "build_rows": len(plan.relations[1 - probe_side]),
                "probe_rows": len(probe),
                "buckets": len(buckets),
                "key_pairs": len(plan.key_pairs),
            }
        if obs.enabled:
            obs.observe("sql.join.buckets", len(buckets))

        if self._pool is None:
            from repro.engine import worker
            from repro.engine.join import JOIN_SPEC, join_state

            [(seconds, result)] = worker.run_local_timed(
                join_state(left, right),
                [("join_probe", (JOIN_SPEC, query, probe.tids()))])
            if obs.enabled:
                obs.observe("engine.task.join_probe.seconds", seconds)
        else:
            engine = self._join_engine(left, right)
            if plan.grouped:
                result = engine.probe_grouped(query)
            elif probe_side == 0:
                result = engine.probe_pairs(query)
            else:
                result = engine.probe_matches(query)

        if plan.grouped:
            return self._join_grouped_output(plan, result), list(plan.names), False
        if probe_side == 1:
            # matches are keyed by left (build) tid; left scan order is
            # ascending tids and each right-tid list is already ascending,
            # so sorted re-emission restores the exact left-major order
            pairs = [(left_tid, right_tid)
                     for left_tid in sorted(result)
                     for right_tid in result[left_tid]]
        else:
            pairs = result
        pairs, pre_ordered = self._join_order(plan, pairs)
        stores = (left.columns, right.columns)
        columns = [(side, stores[side].column_at(position))
                   for _, side, position in plan.items]
        output_rows = [[column.values[column.codes[pair[side]]]
                        for side, column in columns]
                       for pair in pairs]
        return output_rows, list(plan.names), pre_ordered

    def _join_engine(self, left: Relation, right: Relation) -> Any:
        """The per-pair chunked join engine (broadcast state cached)."""
        from repro.engine.join import ChunkedJoinEngine

        key = (left.name.lower(), right.name.lower())
        engine = self._join_engines.get(key)
        if engine is None or engine.relations[0] is not left \
                or engine.relations[1] is not right:
            engine = ChunkedJoinEngine(left, right, self._pool)
            self._join_engines[key] = engine
        return engine

    # -- factorised (semiring) aggregate execution ---------------------------

    def _execute_factorised_join(self, plan: JoinPlan
                                 ) -> tuple[list[list[Any]], list[str], bool]:
        """Run a grouped hash join by semiring folds, not enumeration.

        Build-side partials fold into the buckets before any probe runs
        (:func:`build_factorised_buckets`); every probe hit then combines
        a whole block in O(specs).  Results are byte-identical to
        :meth:`_execute_join_plan`'s grouped branch.
        """
        left, right = plan.relations
        aggs = factorised_aggregates(plan)
        buckets = build_factorised_buckets(plan, aggs)
        query = factorised_join_payload(plan, aggs, buckets)

        info = self._explain
        if info is not None:
            bindings = (plan.tables[0].binding_name, plan.tables[1].binding_name)
            for side in (0, 1):
                info["filters"].extend(self._explain_filters(
                    plan.relations[side], bindings[side], plan.filters[side]))
            info["join"] = {
                "build_side": bindings[1],
                "probe_side": bindings[0],
                "build_rows": len(right),
                "probe_rows": len(left),
                "buckets": len(buckets),
                "key_pairs": len(plan.key_pairs),
            }
        if obs.enabled:
            obs.observe("sql.join.buckets", len(buckets))

        if self._pool is None:
            from repro.engine import worker
            from repro.engine.join import JOIN_SPEC, join_state

            [(seconds, (merged, partials, tuples, _))] = worker.run_local_timed(
                join_state(left, right),
                [("factorised_fold", (JOIN_SPEC, query, left.tids()))])
            if obs.enabled:
                obs.observe("engine.task.factorised_fold.seconds", seconds)
        else:
            engine = self._join_engine(left, right)
            merged, partials, tuples = engine.probe_factorised(query)

        self._note_factorised("join", merged, partials, tuples)
        return (self._join_grouped_output(plan, merged, factorised=True),
                list(plan.names), False)

    def _execute_factorised_multi(self, plan: MultiJoinPlan
                                  ) -> tuple[list[list[Any]], list[str], bool]:
        """Run a grouped multiway join by semiring folds, not enumeration.

        One fan-out instead of probe + fold: workers descend the leapfrog
        levels and fold each fully bound block without expanding its
        cartesian product.  Group representatives are min-merged, and the
        merged groups are re-sorted by representative — the sorted
        enumeration's first-occurrence order — so results are
        byte-identical to :meth:`_execute_multi_join_plan`'s grouped
        branch.
        """
        relations = plan.relations
        query, candidates = factorised_multi_payload(plan)
        info = self._explain
        if info is not None:
            for side, table in enumerate(plan.tables):
                info["filters"].extend(self._explain_filters(
                    relations[side], table.binding_name, plan.filters[side]))

        if self._pool is None:
            from repro.engine import worker
            from repro.engine.multijoin import MULTI_SPEC, multi_join_state

            [(seconds, (merged, partials, tuples, counts))] = \
                worker.run_local_timed(
                    multi_join_state(relations),
                    [("factorised_fold", (MULTI_SPEC, query, candidates))])
            if obs.enabled:
                obs.observe("engine.task.factorised_fold.seconds", seconds)
            merged = dict(sorted(merged.items(), key=lambda item: item[1][0]))
        else:
            engine = self._multi_engine(relations)
            merged, partials, tuples, counts = \
                engine.probe_factorised(query, candidates)
            merged = dict(sorted(merged.items(), key=lambda item: item[1][0]))

        if obs.enabled:
            for count in counts:
                obs.observe("sql.multiway.candidates", count)
        if info is not None:
            info["multiway"] = {
                "tables": [table.binding_name for table in plan.tables],
                "order": [{
                    "members": [
                        f"{plan.tables[side].binding_name}."
                        f"{relations[side].schema.attribute_names[position]}"
                        for side, position in members],
                    "fd_implied": fd_implied,
                    "estimate": estimate,
                    "candidates": counts[level],
                } for level, (members, fd_implied, estimate)
                    in enumerate(plan.var_order)],
                "tuples": tuples,
            }
        self._note_factorised("multiway", merged, partials, tuples)
        return (self._join_grouped_output(plan, merged, factorised=True),
                list(plan.names), False)

    def _note_factorised(self, kind: str, merged: dict[Any, list],
                         partials: int, tuples: int) -> None:
        """Record a factorised run's shape into obs and EXPLAIN."""
        if obs.enabled:
            obs.observe("sql.factorised.partials", partials)
        info = self._explain
        if info is not None:
            info["factorised"] = {
                "kind": kind,
                "partials": partials,
                "tuples": tuples,
                "groups": len(merged),
            }

    # -- code-native multiway (3+ table) join execution ----------------------

    def _execute_multi_join_plan(self, plan: MultiJoinPlan
                                 ) -> tuple[list[list[Any]], list[str], bool]:
        """Run a compiled multiway plan; returns (rows, names, pre-ordered).

        Two phases.  The probe enumerates the join — first variable
        intersected parent-side, candidates chunked across
        ``multiway_probe`` workers, per-chunk sorted runs merged into the
        global ascending tid-tuple order the row path emits.  Grouped
        statements then fold aggregates over contiguous slices of that
        sorted enumeration (``multiway_fold``), so chunk-order merging
        preserves group first-occurrence order and float fold order
        exactly.
        """
        relations = plan.relations
        query, candidates = multiway_query_payload(plan)
        info = self._explain
        if info is not None:
            for side, table in enumerate(plan.tables):
                info["filters"].extend(self._explain_filters(
                    relations[side], table.binding_name, plan.filters[side]))

        engine = None
        if self._pool is None:
            from repro.engine import worker
            from repro.engine.multijoin import MULTI_SPEC, multi_join_state

            state = multi_join_state(relations)
            [(seconds, (combos, counts))] = worker.run_local_timed(
                state, [("multiway_probe", (MULTI_SPEC, query, candidates))])
            if obs.enabled:
                obs.observe("engine.task.multiway_probe.seconds", seconds)
        else:
            engine = self._multi_engine(relations)
            combos, counts = engine.probe(query, candidates)

        if obs.enabled:
            for count in counts:
                obs.observe("sql.multiway.candidates", count)
        if info is not None:
            info["multiway"] = {
                "tables": [table.binding_name for table in plan.tables],
                "order": [{
                    "members": [
                        f"{plan.tables[side].binding_name}."
                        f"{relations[side].schema.attribute_names[position]}"
                        for side, position in members],
                    "fd_implied": fd_implied,
                    "estimate": estimate,
                    "candidates": counts[level],
                } for level, (members, fd_implied, estimate)
                    in enumerate(plan.var_order)],
                "tuples": len(combos),
            }

        if plan.grouped:
            fold_query = multiway_fold_payload(plan)
            if engine is None:
                from repro.engine import worker
                from repro.engine.multijoin import MULTI_SPEC

                [(seconds, result)] = worker.run_local_timed(
                    state, [("multiway_fold", (MULTI_SPEC, fold_query, combos))])
                if obs.enabled:
                    obs.observe("engine.task.multiway_fold.seconds", seconds)
            else:
                result = engine.fold(fold_query, combos)
            return self._join_grouped_output(plan, result), list(plan.names), False

        combos, pre_ordered = self._join_order(plan, combos)
        stores = [relation.columns for relation in relations]
        columns = [(side, stores[side].column_at(position))
                   for _, side, position in plan.items]
        output_rows = [[column.values[column.codes[combo[side]]]
                        for side, column in columns]
                       for combo in combos]
        return output_rows, list(plan.names), pre_ordered

    def _multi_engine(self, relations: tuple) -> Any:
        """The per-relation-tuple multiway engine (broadcast state cached)."""
        from repro.engine.multijoin import ChunkedMultiJoinEngine

        key = tuple(relation.name.lower() for relation in relations)
        engine = self._multi_engines.get(key)
        if engine is None or any(cached is not relation for cached, relation
                                 in zip(engine.relations, relations)):
            engine = ChunkedMultiJoinEngine(relations, self._pool)
            self._multi_engines[key] = engine
        return engine

    def _join_order(self, plan: JoinPlan | MultiJoinPlan,
                    pairs: list[tuple[int, ...]]) -> tuple[list[tuple[int, ...]], bool]:
        """Order joined tid tuples by dictionary ranks when the plan allows it.

        The tuple-level twin of :meth:`_code_order` — same ascending rank
        tuples, full reverse when every key is descending, stable per-key
        re-sorts for mixed directions.  Works on pairs and on N-tuples
        alike (every ``order_ranks`` entry carries its side).
        """
        order = plan.order_ranks
        if not order:
            return pairs, False
        stores = tuple(relation.columns for relation in plan.relations)
        keys = [(stores[side].column_at(position).order().ranks,
                 stores[side].column_at(position).codes, side, descending)
                for side, position, descending in order]
        flags = [descending for _, _, _, descending in keys]
        if any(flags) and not all(flags):
            # mixed directions: sort stably, last key first
            ordered = list(pairs)
            for ranks, codes, side, descending in reversed(keys):
                ordered = sorted(
                    ordered,
                    key=lambda pair, r=ranks, c=codes, s=side: r[c[pair[s]]],
                    reverse=descending)
            return ordered, True
        ordered = sorted(pairs, key=lambda pair: tuple(ranks[codes[pair[side]]]
                                                       for ranks, codes, side, _ in keys))
        if all(flags):
            ordered = list(reversed(ordered))
        return ordered, True

    def _join_grouped_output(self, plan: JoinPlan | MultiJoinPlan,
                             merged: dict[Any, list],
                             factorised: bool = False) -> list[list[Any]]:
        """Assemble grouped join output from merged partial-aggregate states.

        ``factorised=True`` selects the semiring finalizers — the states
        are :func:`empty_factorised_state`-shaped then — but the group
        walk, HAVING, representatives and item evaluation are shared, so
        the two paths cannot drift.
        """
        relations = plan.relations
        if not merged and not plan.group_keys:
            # aggregates without GROUP BY over no joined rows still emit one
            merged = {(): None}
        empty_state = empty_factorised_state if factorised else empty_aggregate_state
        finalize = finalize_factorised if factorised else finalize_join_aggregate
        output: list[list[Any]] = []
        for entry in merged.values():
            if entry is None:
                representative = None
                states = [empty_state(spec) for spec in plan.agg_specs]
            else:
                representative = entry[0]
                states = entry[1:]
            finalized = [finalize(spec, state, relations)
                         for spec, state in zip(plan.agg_specs, states)]
            aggregate_values = dict(zip(plan.agg_calls, finalized))
            context: list[EvaluationContext] = []

            def group_context() -> EvaluationContext:
                if not context:
                    context.append(self._join_representative_context(plan, representative))
                return context[0]

            if plan.having is not None:
                having_value = rewrite_aggregates(
                    plan.having, aggregate_values).evaluate(group_context())
                if not truth(having_value):
                    continue
            values = []
            for kind, ref in plan.items:
                if kind == "agg":
                    values.append(finalized[ref])
                else:
                    values.append(rewrite_aggregates(
                        ref, aggregate_values).evaluate(group_context()))
            output.append(values)
        return output

    def _join_representative_context(self, plan: JoinPlan | MultiJoinPlan,
                                     pair: tuple[int, ...] | None) -> EvaluationContext:
        """The binding context of a group's first joined tuple.

        Bindings mirror :meth:`_ExecRow.merged`: earlier tables' unqualified
        names are set first and later tables never shadow them; qualified
        names always bind to their own table.
        """
        if pair is None:
            return EvaluationContext({})
        bindings: dict[str, Any] = {}
        for side in range(len(plan.relations)):
            relation = plan.relations[side]
            store = relation.columns
            binding = plan.tables[side].binding_name.lower()
            tid = pair[side]
            for position, name in enumerate(relation.schema.attribute_names):
                column = store.column_at(position)
                value = column.values[column.codes[tid]]
                key = name.lower()
                if side == 0 or key not in bindings:
                    bindings[key] = value
                bindings[f"{binding}.{key}"] = value
        return EvaluationContext(bindings)

    # -- projection without aggregation ----------------------------------------

    def _expanded_items(self, statement: SelectStatement,
                        ) -> list[tuple[str, Expression | AggregateCall]]:
        """Expand '*' and 'alias.*' into concrete column references."""
        return expanded_items(self._database, statement)

    def _plain_output(self, statement: SelectStatement,
                      rows: list[_ExecRow]) -> tuple[list[list[Any]], list[str]]:
        items = self._expanded_items(statement)
        names = [name for name, _ in items]
        output: list[list[Any]] = []
        for row in rows:
            context = row.context()
            values = []
            for _, expression in items:
                if isinstance(expression, AggregateCall):
                    raise SQLExecutionError("aggregate without GROUP BY mixed with plain columns")
                values.append(expression.evaluate(context))
            output.append(values)
        return output, names

    # -- grouped output -----------------------------------------------------------

    def _grouped_output(self, statement: SelectStatement,
                        rows: list[_ExecRow]) -> tuple[list[list[Any]], list[str]]:
        group_exprs = statement.group_by
        groups: dict[tuple[Any, ...], list[_ExecRow]] = defaultdict(list)
        if group_exprs:
            for row in rows:
                context = row.context()
                key = tuple(expr.evaluate(context) for expr in group_exprs)
                groups[key].append(row)
        else:
            groups[()] = list(rows)

        items = self._expanded_items(statement)
        names = [name for name, _ in items]

        having_aggregates = self._collect_aggregates(statement.having)
        item_aggregates: list[AggregateCall] = []
        for _, expr in items:
            if isinstance(expr, AggregateCall):
                item_aggregates.append(expr)
            else:
                # aggregates embedded in a computed item (COUNT(*) + 1, ...)
                item_aggregates.extend(self._collect_aggregates(expr))
        all_aggregates = list({**{a: None for a in item_aggregates},
                               **{a: None for a in having_aggregates}}.keys())

        output: list[list[Any]] = []
        for key, group_rows in groups.items():
            if not group_rows and group_exprs:
                continue
            aggregate_values = {
                aggregate: self._compute_aggregate(aggregate, group_rows)
                for aggregate in all_aggregates
            }
            representative = group_rows[0] if group_rows else None

            if statement.having is not None:
                having_value = self._evaluate_with_aggregates(
                    statement.having, representative, aggregate_values)
                if not truth(having_value):
                    continue

            values = []
            for _, expression in items:
                if isinstance(expression, AggregateCall):
                    values.append(aggregate_values[expression])
                else:
                    values.append(self._evaluate_with_aggregates(
                        expression, representative, aggregate_values))
            output.append(values)
        return output, names

    def _collect_aggregates(self, expression: Expression | None) -> list[AggregateCall]:
        return collect_aggregates(expression)

    def _compute_aggregate(self, aggregate: AggregateCall, rows: list[_ExecRow]) -> Any:
        if aggregate.argument is None:
            return len(rows)
        values = []
        for row in rows:
            value = aggregate.argument.evaluate(row.context())
            if not is_null(value):
                values.append(value)
        if aggregate.distinct:
            unique: list[Any] = []
            seen: set[Any] = set()
            for value in values:
                if value not in seen:
                    seen.add(value)
                    unique.append(value)
            values = unique
        function = aggregate.function
        if function == "count":
            return len(values)
        if not values:
            return NULL
        if function == "sum":
            return sum(values)
        if function == "avg":
            return sum(values) / len(values)
        if function == "min":
            return min(values, key=sort_key)
        if function == "max":
            return max(values, key=sort_key)
        raise SQLExecutionError(f"unsupported aggregate {function!r}")

    def _evaluate_with_aggregates(self, expression: Expression, representative: _ExecRow | None,
                                  aggregate_values: dict[AggregateCall, Any]) -> Any:
        rewritten = rewrite_aggregates(expression, aggregate_values)
        context = representative.context() if representative is not None else EvaluationContext({})
        return rewritten.evaluate(context)

    # -- ordering -------------------------------------------------------------

    def _order(self, statement: SelectStatement, output_rows: list[list[Any]],
               names: list[str]) -> list[list[Any]]:
        name_positions = {name.lower(): index for index, name in enumerate(names)}

        def key_function(row: list[Any]) -> tuple:
            keys = []
            for order_item in statement.order_by:
                value = self._order_value(order_item.expression, row, name_positions)
                keys.append(sort_key(value))
            return tuple(keys)

        ordered = sorted(output_rows, key=key_function)
        if any(item.descending for item in statement.order_by):
            if all(item.descending for item in statement.order_by):
                ordered = list(reversed(ordered))
            else:
                # mixed directions: sort stably, last key first
                ordered = output_rows
                for order_item in reversed(statement.order_by):
                    ordered = sorted(
                        ordered,
                        key=lambda row: sort_key(
                            self._order_value(order_item.expression, row, name_positions)),
                        reverse=order_item.descending,
                    )
        return ordered

    def _order_value(self, expression: Expression, row: list[Any],
                     name_positions: dict[str, int]) -> Any:
        if isinstance(expression, ColumnRef) and expression.qualifier is None:
            position = name_positions.get(expression.name.lower())
            if position is not None:
                return row[position]
        context = EvaluationContext({name: row[pos] for name, pos in name_positions.items()})
        try:
            return expression.evaluate(context)
        except Exception as exc:  # noqa: BLE001 - surface as SQL error
            raise SQLExecutionError(f"cannot evaluate ORDER BY expression {expression}") from exc


def _deduplicate_names(attributes: list[Attribute]) -> list[Attribute]:
    """Ensure output attribute names are unique (suffix _2, _3, ...)."""
    seen: dict[str, int] = {}
    result: list[Attribute] = []
    for attribute in attributes:
        key = attribute.name.lower()
        if key not in seen:
            seen[key] = 1
            result.append(attribute)
        else:
            seen[key] += 1
            result.append(Attribute(f"{attribute.name}_{seen[key]}", attribute.type))
    return result
