"""Executor for the SQL subset.

Execution strategy:

1. The FROM clause (tables, explicit joins and the WHERE conjuncts) is
   turned into a left-deep sequence of hash equi-joins where possible and
   nested-loop filters otherwise (:class:`_FromPlanner`).  String-constant
   conjuncts on STRING columns (``t.col = 'lit'``, ``t.col != 'lit'``,
   ``t.col [NOT] IN ('a', 'b')``) are compiled to dictionary-code sets
   against the relation's column store — the same mechanism CFD pattern
   constants use (:func:`repro.detection.columnar.constant_code_set`) —
   so matching tuples are selected by integer membership before any row
   object or binding dict is built.
2. Remaining WHERE conjuncts filter the joined rows.
3. GROUP BY / aggregates / HAVING are evaluated per group.
4. The select list is projected, then DISTINCT / ORDER BY / LIMIT apply.

The result of execution is an ordinary
:class:`~repro.relational.relation.Relation`, so query results compose
with the rest of the engine.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable

from repro.errors import SchemaError, SQLExecutionError
from repro.relational.database import Database
from repro.relational.expressions import (
    And,
    ColumnRef,
    Comparison,
    EvaluationContext,
    Expression,
    InList,
    Literal,
    truth,
)
from repro.relational.relation import Relation, Tuple
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql.ast import (
    AggregateCall,
    SelectItem,
    SelectStatement,
    Statement,
    TableRef,
    UnionStatement,
)
from repro.relational.sql.parser import AggregateExpr
from repro.relational.types import NULL, AttributeType, is_null, sort_key


class _ExecRow:
    """One intermediate row: bindings for evaluation plus source tuples."""

    __slots__ = ("bindings", "sources")

    def __init__(self, bindings: dict[str, Any], sources: list[tuple[str, Tuple]]) -> None:
        self.bindings = bindings
        self.sources = sources

    def context(self) -> EvaluationContext:
        return EvaluationContext(self.bindings)

    def merged(self, other: "_ExecRow") -> "_ExecRow":
        bindings = dict(self.bindings)
        for key, value in other.bindings.items():
            # do not let a later table silently shadow an earlier unqualified name
            if "." in key or key not in bindings:
                bindings[key] = value
        return _ExecRow(bindings, self.sources + other.sources)


def _rows_for_table(database: Database, table: TableRef,
                    code_filters: list[tuple[list[int], set[int]]] | None = None) -> list[_ExecRow]:
    relation = database.relation(table.relation_name)
    binding = table.binding_name.lower()
    rows = []
    if code_filters:
        # columnar fast path: select tids by integer code membership first,
        # materialise bindings only for the survivors (same scan order).
        source = (relation.tuple(tid) for tid in relation.tids()
                  if all(codes[tid] in allowed for codes, allowed in code_filters))
    else:
        source = iter(relation)
    for row in source:
        bindings: dict[str, Any] = {}
        for name in relation.schema.attribute_names:
            value = row[name]
            bindings[name.lower()] = value
            bindings[f"{binding}.{name.lower()}"] = value
        rows.append(_ExecRow(bindings, [(table.binding_name, row)]))
    return rows


def _flatten_conjuncts(expression: Expression | None) -> list[Expression]:
    if expression is None:
        return []
    if isinstance(expression, And):
        result: list[Expression] = []
        for operand in expression.operands:
            result.extend(_flatten_conjuncts(operand))
        return result
    return [expression]


def _column_binding(ref: ColumnRef) -> str:
    return f"{ref.qualifier.lower()}.{ref.name.lower()}" if ref.qualifier else ref.name.lower()


class _FromPlanner:
    """Builds the joined row stream for a SELECT statement."""

    def __init__(self, database: Database, statement: SelectStatement) -> None:
        self._database = database
        self._statement = statement

    def execute(self) -> tuple[list[_ExecRow], list[Expression]]:
        """Return (joined rows, conjuncts not yet applied)."""
        tables = list(self._statement.tables)
        conjuncts = _flatten_conjuncts(self._statement.where)
        for join in self._statement.joins:
            tables.append(join.table)
            conjuncts.extend(_flatten_conjuncts(join.condition))

        if not tables:
            raise SQLExecutionError("SELECT requires at least one relation in FROM")

        single_table = len(tables) == 1
        remaining = list(conjuncts)
        bound_aliases = {tables[0].binding_name.lower()}
        filters, remaining = self._split_code_filters(tables[0], remaining, single_table)
        current = _rows_for_table(self._database, tables[0], filters)

        for table in tables[1:]:
            alias = table.binding_name.lower()
            filters, remaining = self._split_code_filters(table, remaining, single_table)
            table_rows = _rows_for_table(self._database, table, filters)
            equi, remaining = self._split_equi_conjuncts(remaining, bound_aliases, alias)
            if equi:
                current = self._hash_join(current, table_rows, equi)
            else:
                current = [left.merged(right) for left in current for right in table_rows]
            bound_aliases.add(alias)
        return current, remaining

    def _split_code_filters(self, table: TableRef, conjuncts: list[Expression],
                            single_table: bool) -> tuple[list[tuple[list[int], set[int]]],
                                                         list[Expression]]:
        """Compile string-constant conjuncts on *table* to code-set filters.

        ``col = 'lit'``, ``col != 'lit'`` (and ``<>``), ``col IN (...)``
        and ``col NOT IN (...)`` qualify when the column is STRING-typed
        and every constant is a string literal: there the constant code
        set CFD patterns build via
        :func:`~repro.detection.columnar.constant_code_set` degenerates to
        the dictionary codes of the literals (string equality is exact and
        NULL never matches), so membership is decided by ``code_of``
        lookups — no matcher registration, nothing retained on the column
        after the query.  The negated forms take the complement of the
        literal codes over the current dictionary; NULL stays excluded
        either way, matching SQL's three-valued logic (``NULL != 'x'`` is
        UNKNOWN).  Everything else stays a residual conjunct, so results —
        rows *and* their order — are identical to the row-at-a-time path.
        """
        relation = self._database.relation(table.relation_name)
        filters: list[tuple[list[int], set[int]]] = []
        rest: list[Expression] = []
        for conjunct in conjuncts:
            extracted = self._as_string_constants(conjunct, table, single_table, relation)
            if extracted is None:
                rest.append(conjunct)
                continue
            name, constants, negated = extracted
            column = relation.columns.column(name)
            codes = {column.code_of(constant) for constant in constants}
            codes.discard(None)
            if negated:
                codes = set(range(1, len(column.values))) - codes
            filters.append((column.codes, codes))
        return filters, rest

    @classmethod
    def _as_string_constants(cls, conjunct: Expression, table: TableRef, single_table: bool,
                             relation) -> tuple[str, list[str], bool] | None:
        """``(column, string literals, negated)`` of a push-downable conjunct."""
        if isinstance(conjunct, Comparison) and conjunct.operator in ("=", "!=", "<>"):
            for ref, literal in ((conjunct.left, conjunct.right),
                                 (conjunct.right, conjunct.left)):
                if isinstance(ref, ColumnRef) and isinstance(literal, Literal):
                    break
            else:
                return None
            if not isinstance(literal.value, str):
                return None
            name = cls._string_column_on_table(ref, table, single_table, relation)
            if name is None:
                return None
            return name, [literal.value], conjunct.operator != "="
        if isinstance(conjunct, InList):
            ref = conjunct.operand
            if not isinstance(ref, ColumnRef):
                return None
            if not all(isinstance(value, Literal) and isinstance(value.value, str)
                       for value in conjunct.values):
                return None  # non-string or non-literal members: residual evaluation
            name = cls._string_column_on_table(ref, table, single_table, relation)
            if name is None:
                return None
            return name, [value.value for value in conjunct.values], conjunct.negated
        return None

    @staticmethod
    def _string_column_on_table(ref: ColumnRef, table: TableRef, single_table: bool,
                                relation) -> str | None:
        """*ref*'s name when it is a STRING column of *table*, else ``None``."""
        if ref.qualifier is not None:
            if ref.qualifier.lower() != table.binding_name.lower():
                return None
        elif not single_table:
            return None  # ambiguous without a qualifier; leave to evaluation
        try:
            position = relation.schema.position(ref.name)
        except SchemaError:
            return None  # unknown column: the residual path raises the error
        if relation.schema.attributes[position].type is not AttributeType.STRING:
            return None
        return ref.name

    def _split_equi_conjuncts(self, conjuncts: list[Expression], bound: set[str],
                              new_alias: str) -> tuple[list[tuple[str, str]], list[Expression]]:
        """Extract ``bound_col = new_col`` equalities usable for a hash join."""
        usable: list[tuple[str, str]] = []
        rest: list[Expression] = []
        for conjunct in conjuncts:
            pair = self._as_equi_pair(conjunct, bound, new_alias)
            if pair is not None:
                usable.append(pair)
            else:
                rest.append(conjunct)
        return usable, rest

    def _as_equi_pair(self, conjunct: Expression, bound: set[str],
                      new_alias: str) -> tuple[str, str] | None:
        if not isinstance(conjunct, Comparison) or conjunct.operator != "=":
            return None
        left, right = conjunct.left, conjunct.right
        if not isinstance(left, ColumnRef) or not isinstance(right, ColumnRef):
            return None
        if left.qualifier is None or right.qualifier is None:
            return None
        left_alias = left.qualifier.lower()
        right_alias = right.qualifier.lower()
        if left_alias in bound and right_alias == new_alias:
            return _column_binding(left), _column_binding(right)
        if right_alias in bound and left_alias == new_alias:
            return _column_binding(right), _column_binding(left)
        return None

    @staticmethod
    def _hash_join(left_rows: list[_ExecRow], right_rows: list[_ExecRow],
                   equi: list[tuple[str, str]]) -> list[_ExecRow]:
        left_keys = [pair[0] for pair in equi]
        right_keys = [pair[1] for pair in equi]
        buckets: dict[tuple[Any, ...], list[_ExecRow]] = defaultdict(list)
        for row in right_rows:
            key = tuple(row.bindings.get(k, NULL) for k in right_keys)
            if any(is_null(v) for v in key):
                continue
            buckets[key].append(row)
        joined: list[_ExecRow] = []
        for row in left_rows:
            key = tuple(row.bindings.get(k, NULL) for k in left_keys)
            if any(is_null(v) for v in key):
                continue
            for right in buckets.get(key, ()):
                joined.append(row.merged(right))
        return joined


def _infer_output_type(values: Iterable[Any]) -> AttributeType:
    for value in values:
        if is_null(value):
            continue
        if isinstance(value, bool):
            return AttributeType.BOOLEAN
        if isinstance(value, int):
            return AttributeType.INTEGER
        if isinstance(value, float):
            return AttributeType.FLOAT
        return AttributeType.STRING
    return AttributeType.STRING


class SQLExecutor:
    """Executes parsed statements against a :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self._database = database

    # -- public ------------------------------------------------------------

    def execute(self, statement: Statement, result_name: str = "result") -> Relation:
        if isinstance(statement, UnionStatement):
            return self._execute_union(statement, result_name)
        return self._execute_select(statement, result_name)

    # -- UNION ---------------------------------------------------------------

    def _execute_union(self, statement: UnionStatement, result_name: str) -> Relation:
        parts = [self._execute_select(select, result_name) for select in statement.selects]
        first = parts[0]
        schema = first.schema.renamed_relation(result_name)
        result = Relation(schema)
        seen: set[tuple[Any, ...]] = set()
        for part in parts:
            if part.schema.arity != schema.arity:
                raise SQLExecutionError("UNION requires selects of equal arity")
            for row in part:
                key = row.values
                if statement.all or key not in seen:
                    seen.add(key)
                    result.insert(list(key))
        return result

    # -- SELECT ----------------------------------------------------------------

    def _execute_select(self, statement: SelectStatement, result_name: str) -> Relation:
        rows, residual = _FromPlanner(self._database, statement).execute()

        for conjunct in residual:
            rows = [row for row in rows if truth(conjunct.evaluate(row.context()))]

        if statement.has_aggregates():
            output_rows, names = self._grouped_output(statement, rows)
        else:
            output_rows, names = self._plain_output(statement, rows)

        if statement.distinct:
            deduped = []
            seen: set[tuple[Any, ...]] = set()
            for row in output_rows:
                key = tuple(row)
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            output_rows = deduped

        if statement.order_by:
            output_rows = self._order(statement, output_rows, names)

        if statement.limit is not None:
            output_rows = output_rows[: statement.limit]

        columns = list(zip(*output_rows)) if output_rows else [[] for _ in names]
        attributes = [
            Attribute(name, _infer_output_type(column))
            for name, column in zip(names, columns)
        ]
        unique_attributes = _deduplicate_names(attributes)
        schema = RelationSchema(result_name, unique_attributes)
        result = Relation(schema)
        for row in output_rows:
            result.insert(list(row))
        return result

    # -- projection without aggregation ----------------------------------------

    def _expanded_items(self, statement: SelectStatement,
                        rows: list[_ExecRow]) -> list[tuple[str, Expression | AggregateCall]]:
        """Expand '*' and 'alias.*' into concrete column references."""
        expanded: list[tuple[str, Expression | AggregateCall]] = []
        for index, item in enumerate(statement.items):
            if item.is_star:
                expanded.extend(self._star_columns(statement, item.star_qualifier))
            else:
                expanded.append((item.output_name(index), item.expression))
        return expanded

    def _star_columns(self, statement: SelectStatement,
                      qualifier: str | None) -> list[tuple[str, Expression]]:
        columns: list[tuple[str, Expression]] = []
        seen: set[str] = set()
        tables = list(statement.tables) + [join.table for join in statement.joins]
        for table in tables:
            if qualifier is not None and table.binding_name.lower() != qualifier.lower():
                continue
            relation = self._database.relation(table.relation_name)
            for name in relation.schema.attribute_names:
                output = name if name.lower() not in seen else f"{table.binding_name}_{name}"
                seen.add(name.lower())
                columns.append((output, ColumnRef(name, qualifier=table.binding_name)))
        if not columns:
            raise SQLExecutionError(f"'*' expansion found no columns (qualifier {qualifier!r})")
        return columns

    def _plain_output(self, statement: SelectStatement,
                      rows: list[_ExecRow]) -> tuple[list[list[Any]], list[str]]:
        items = self._expanded_items(statement, rows)
        names = [name for name, _ in items]
        output: list[list[Any]] = []
        for row in rows:
            context = row.context()
            values = []
            for _, expression in items:
                if isinstance(expression, AggregateCall):
                    raise SQLExecutionError("aggregate without GROUP BY mixed with plain columns")
                values.append(expression.evaluate(context))
            output.append(values)
        return output, names

    # -- grouped output -----------------------------------------------------------

    def _grouped_output(self, statement: SelectStatement,
                        rows: list[_ExecRow]) -> tuple[list[list[Any]], list[str]]:
        group_exprs = statement.group_by
        groups: dict[tuple[Any, ...], list[_ExecRow]] = defaultdict(list)
        if group_exprs:
            for row in rows:
                context = row.context()
                key = tuple(expr.evaluate(context) for expr in group_exprs)
                groups[key].append(row)
        else:
            groups[()] = list(rows)

        items = self._expanded_items(statement, rows)
        names = [name for name, _ in items]

        having_aggregates = self._collect_aggregates(statement.having)
        item_aggregates = [expr for _, expr in items if isinstance(expr, AggregateCall)]
        all_aggregates = list({**{a: None for a in item_aggregates},
                               **{a: None for a in having_aggregates}}.keys())

        output: list[list[Any]] = []
        for key, group_rows in groups.items():
            if not group_rows and group_exprs:
                continue
            aggregate_values = {
                aggregate: self._compute_aggregate(aggregate, group_rows)
                for aggregate in all_aggregates
            }
            representative = group_rows[0] if group_rows else None

            if statement.having is not None:
                having_value = self._evaluate_with_aggregates(
                    statement.having, representative, aggregate_values)
                if not truth(having_value):
                    continue

            values = []
            for _, expression in items:
                if isinstance(expression, AggregateCall):
                    values.append(aggregate_values[expression])
                else:
                    values.append(self._evaluate_with_aggregates(
                        expression, representative, aggregate_values))
            output.append(values)
        return output, names

    def _collect_aggregates(self, expression: Expression | None) -> list[AggregateCall]:
        if expression is None:
            return []
        found: list[AggregateCall] = []

        def walk(node: Expression) -> None:
            if isinstance(node, AggregateExpr):
                found.append(node.call)
                return
            for attribute in ("operands", "operand", "left", "right", "arguments", "values"):
                child = getattr(node, attribute, None)
                if isinstance(child, Expression):
                    walk(child)
                elif isinstance(child, tuple):
                    for element in child:
                        if isinstance(element, Expression):
                            walk(element)

        walk(expression)
        return found

    def _compute_aggregate(self, aggregate: AggregateCall, rows: list[_ExecRow]) -> Any:
        if aggregate.argument is None:
            return len(rows)
        values = []
        for row in rows:
            value = aggregate.argument.evaluate(row.context())
            if not is_null(value):
                values.append(value)
        if aggregate.distinct:
            unique: list[Any] = []
            seen: set[Any] = set()
            for value in values:
                if value not in seen:
                    seen.add(value)
                    unique.append(value)
            values = unique
        function = aggregate.function
        if function == "count":
            return len(values)
        if not values:
            return NULL
        if function == "sum":
            return sum(values)
        if function == "avg":
            return sum(values) / len(values)
        if function == "min":
            return min(values, key=sort_key)
        if function == "max":
            return max(values, key=sort_key)
        raise SQLExecutionError(f"unsupported aggregate {function!r}")

    def _evaluate_with_aggregates(self, expression: Expression, representative: _ExecRow | None,
                                  aggregate_values: dict[AggregateCall, Any]) -> Any:
        rewritten = self._rewrite_aggregates(expression, aggregate_values)
        context = representative.context() if representative is not None else EvaluationContext({})
        return rewritten.evaluate(context)

    def _rewrite_aggregates(self, expression: Expression,
                            aggregate_values: dict[AggregateCall, Any]) -> Expression:
        from repro.relational.expressions import Literal

        if isinstance(expression, AggregateExpr):
            return Literal(aggregate_values[expression.call])

        if isinstance(expression, (And,)):
            return And(tuple(self._rewrite_aggregates(op, aggregate_values)
                             for op in expression.operands))
        from repro.relational.expressions import (
            Arithmetic, Comparison as Cmp, FunctionCall, InList, IsNull, Like, Not, Or,
        )
        if isinstance(expression, Or):
            return Or(tuple(self._rewrite_aggregates(op, aggregate_values)
                            for op in expression.operands))
        if isinstance(expression, Not):
            return Not(self._rewrite_aggregates(expression.operand, aggregate_values))
        if isinstance(expression, Cmp):
            return Cmp(expression.operator,
                       self._rewrite_aggregates(expression.left, aggregate_values),
                       self._rewrite_aggregates(expression.right, aggregate_values))
        if isinstance(expression, Arithmetic):
            return Arithmetic(expression.operator,
                              self._rewrite_aggregates(expression.left, aggregate_values),
                              self._rewrite_aggregates(expression.right, aggregate_values))
        if isinstance(expression, IsNull):
            return IsNull(self._rewrite_aggregates(expression.operand, aggregate_values),
                          negated=expression.negated)
        if isinstance(expression, Like):
            return Like(self._rewrite_aggregates(expression.operand, aggregate_values),
                        expression.pattern, negated=expression.negated)
        if isinstance(expression, InList):
            return InList(self._rewrite_aggregates(expression.operand, aggregate_values),
                          tuple(self._rewrite_aggregates(v, aggregate_values)
                                for v in expression.values),
                          negated=expression.negated)
        if isinstance(expression, FunctionCall):
            return FunctionCall(expression.name,
                                tuple(self._rewrite_aggregates(a, aggregate_values)
                                      for a in expression.arguments))
        return expression

    # -- ordering -------------------------------------------------------------

    def _order(self, statement: SelectStatement, output_rows: list[list[Any]],
               names: list[str]) -> list[list[Any]]:
        name_positions = {name.lower(): index for index, name in enumerate(names)}

        def key_function(row: list[Any]) -> tuple:
            keys = []
            for order_item in statement.order_by:
                value = self._order_value(order_item.expression, row, name_positions)
                keys.append(sort_key(value))
            return tuple(keys)

        ordered = sorted(output_rows, key=key_function)
        if any(item.descending for item in statement.order_by):
            if all(item.descending for item in statement.order_by):
                ordered = list(reversed(ordered))
            else:
                # mixed directions: sort stably, last key first
                ordered = output_rows
                for order_item in reversed(statement.order_by):
                    ordered = sorted(
                        ordered,
                        key=lambda row: sort_key(
                            self._order_value(order_item.expression, row, name_positions)),
                        reverse=order_item.descending,
                    )
        return ordered

    def _order_value(self, expression: Expression, row: list[Any],
                     name_positions: dict[str, int]) -> Any:
        if isinstance(expression, ColumnRef) and expression.qualifier is None:
            position = name_positions.get(expression.name.lower())
            if position is not None:
                return row[position]
        context = EvaluationContext({name: row[pos] for name, pos in name_positions.items()})
        try:
            return expression.evaluate(context)
        except Exception as exc:  # noqa: BLE001 - surface as SQL error
            raise SQLExecutionError(f"cannot evaluate ORDER BY expression {expression}") from exc


def _deduplicate_names(attributes: list[Attribute]) -> list[Attribute]:
    """Ensure output attribute names are unique (suffix _2, _3, ...)."""
    seen: dict[str, int] = {}
    result: list[Attribute] = []
    for attribute in attributes:
        key = attribute.name.lower()
        if key not in seen:
            seen[key] = 1
            result.append(attribute)
        else:
            seen[key] += 1
            result.append(Attribute(f"{attribute.name}_{seen[key]}", attribute.type))
    return result
