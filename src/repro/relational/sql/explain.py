"""Human-readable rendering of SQL EXPLAIN info.

The executor collects a plain dict per statement when asked to explain
(:meth:`~repro.relational.sql.executor.SQLExecutor.execute` with
``explain=True``): the chosen plan (``code`` / ``join`` / ``multiway`` /
``factorised`` / ``row`` / ``union``), the reasons the faster paths were
rejected,
per-conjunct push-down pruning stats, and hash-join / multiway-join
shape (variable order with per-level candidate counts).  :func:`format_explain`
turns that dict into the text the CLI ``--explain`` flag and
``SQLEngine.explain`` print.  The dict itself stays available for
programmatic use (``SQLEngine.last_explain``).
"""

from __future__ import annotations

from typing import Any

_PLAN_DESCRIPTIONS = {
    "code": "code-native single-table scan on dictionary codes",
    "join": "code-native hash join on dictionary codes",
    "multiway": "code-native leapfrog multiway join on rank arrays",
    "factorised": "code-native join with factorised (semiring) aggregates",
    "row": "row-at-a-time reference path",
}


def _format_filter(entry: dict[str, Any]) -> str:
    survivors = entry["rows_in"] - entry["rows_pruned"]
    detail = f" [{entry['conjunct']}]" if entry.get("conjunct") else ""
    return (f"{entry['table']}.{entry['attribute']}{detail}: "
            f"code set of {entry['code_set_size']}, "
            f"{entry['rows_in']} rows in, {entry['rows_pruned']} pruned, "
            f"{survivors} out")


def format_explain(info: dict[str, Any]) -> str:
    """Render one statement's EXPLAIN info dict as indented text."""
    plan = info.get("plan")
    lines: list[str] = []
    if plan == "union":
        lines.append("plan: union")
        for index, sub in enumerate(info.get("selects") or []):
            lines.append(f"select {index + 1}:")
            if sub:
                lines.extend("  " + line
                             for line in format_explain(sub).splitlines())
        return "\n".join(lines)

    description = _PLAN_DESCRIPTIONS.get(plan, "")
    lines.append(f"plan: {plan} ({description})" if description else f"plan: {plan}")

    filters = info.get("filters") or []
    if filters:
        lines.append("push-down filters:")
        lines.extend("  - " + _format_filter(entry) for entry in filters)
    elif plan != "row":
        lines.append("push-down filters: none")

    order = info.get("order")
    if order:
        lines.append(
            f"order by: top-{order['top_k']} heap selection on rank tuples "
            f"over {order['rows_in']} rows (LIMIT push-down)")

    join = info.get("join")
    if join:
        lines.append(
            f"hash join: build {join['build_side']} "
            f"({join['build_rows']} rows, {join['buckets']} buckets), "
            f"probe {join['probe_side']} ({join['probe_rows']} rows), "
            f"{join['key_pairs']} equi key(s)")

    multiway = info.get("multiway")
    if multiway:
        lines.append(
            f"multiway join: {' ⋈ '.join(multiway['tables'])}, "
            f"{len(multiway['order'])} join variable(s), "
            f"{multiway['tuples']} tuple(s)")
        lines.append("variable order:")
        for level, entry in enumerate(multiway["order"]):
            tag = ", fd-implied" if entry["fd_implied"] else ""
            lines.append(
                f"  {level + 1}. {' = '.join(entry['members'])} "
                f"(estimate {entry['estimate']}{tag}): "
                f"{entry['candidates']} candidate(s)")

    factorised = info.get("factorised")
    if factorised:
        lines.append(
            f"factorised aggregates: {factorised['partials']} semiring "
            f"fold(s) over {factorised['groups']} group(s) instead of "
            f"{factorised['tuples']} enumerated tuple(s)")

    if plan != "code":
        _append_reasons(lines, "why not code-native scan:",
                        info.get("why_not_code") or [])
    if plan in ("join", "multiway"):
        _append_reasons(lines, "why not factorised aggregates:",
                        info.get("why_not_factorised") or [])
    if plan == "row":
        _append_reasons(lines, "why not code-native join:",
                        info.get("why_not_join") or [])
        _append_reasons(lines, "why not code-native multiway join:",
                        info.get("why_not_multiway") or [])
    return "\n".join(lines)


def _append_reasons(lines: list[str], heading: str, reasons: list[str]) -> None:
    lines.append(heading)
    if reasons:
        lines.extend("  - " + reason for reason in reasons)
    else:
        lines.append("  - (no reason recorded)")
