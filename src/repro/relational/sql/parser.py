"""Recursive-descent parser for the SQL subset.

``parse_sql`` turns SQL text into a
:class:`~repro.relational.sql.ast.SelectStatement` or
:class:`~repro.relational.sql.ast.UnionStatement`.  Scalar expressions are
parsed into the shared :mod:`repro.relational.expressions` AST; aggregate
calls appearing inside expressions (e.g. in ``HAVING COUNT(*) > 1``) are
wrapped in :class:`AggregateExpr` and resolved by the executor.
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.relational.expressions import (
    And,
    Arithmetic,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from repro.relational.sql.ast import (
    AggregateCall,
    Join,
    OrderItem,
    SelectItem,
    SelectStatement,
    Statement,
    TableRef,
    UnionStatement,
)
from repro.relational.sql.tokenizer import Token, tokenize
from repro.relational.types import NULL

AGGREGATE_KEYWORDS = ("count", "sum", "avg", "min", "max")


class AggregateExpr(Expression):
    """An aggregate call used where a scalar expression is expected (HAVING).

    The executor replaces these with references to pre-computed aggregate
    columns; direct evaluation is a logic error.
    """

    __slots__ = ("call",)

    def __init__(self, call: AggregateCall) -> None:
        self.call = call

    def evaluate(self, context):  # pragma: no cover - defensive
        raise SQLSyntaxError("aggregate used outside GROUP BY/HAVING context")

    def references(self) -> set[str]:
        if self.call.argument is None:
            return set()
        return self.call.argument.references()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AggregateExpr) and self.call == other.call

    def __hash__(self) -> int:
        return hash(self.call)

    def __str__(self) -> str:
        return str(self.call)


class _Parser:
    """Token-stream cursor with the grammar's parsing methods."""

    def __init__(self, tokens: list[Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token | None:
        index = self._index + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of SQL input")
        self._index += 1
        return token

    def _expect_keyword(self, *names: str) -> Token:
        token = self._peek()
        if token is None or not token.is_keyword(*names):
            raise SQLSyntaxError(
                f"expected {'/'.join(names).upper()} near {self._context()}"
            )
        return self._advance()

    def _expect_operator(self, symbol: str) -> Token:
        token = self._peek()
        if token is None or not token.is_operator(symbol):
            raise SQLSyntaxError(f"expected {symbol!r} near {self._context()}")
        return self._advance()

    def _match_keyword(self, *names: str) -> bool:
        token = self._peek()
        if token is not None and token.is_keyword(*names):
            self._advance()
            return True
        return False

    def _match_operator(self, symbol: str) -> bool:
        token = self._peek()
        if token is not None and token.is_operator(symbol):
            self._advance()
            return True
        return False

    def _context(self) -> str:
        token = self._peek()
        if token is None:
            return "end of input"
        return f"{token.value!r} (position {token.position})"

    # -- statements --------------------------------------------------------

    def parse_statement(self) -> Statement:
        first = self._parse_select()
        selects = [first]
        union_all = False
        while self._match_keyword("union"):
            union_all = self._match_keyword("all") or union_all
            selects.append(self._parse_select())
        self._match_operator(";")
        if self._peek() is not None:
            raise SQLSyntaxError(f"unexpected trailing input near {self._context()}")
        if len(selects) == 1:
            return first
        return UnionStatement(selects=selects, all=union_all)

    def _parse_select(self) -> SelectStatement:
        self._expect_keyword("select")
        distinct = self._match_keyword("distinct")
        if self._match_keyword("all"):
            distinct = False
        items = [self._parse_select_item()]
        while self._match_operator(","):
            items.append(self._parse_select_item())

        self._expect_keyword("from")
        tables = [self._parse_table_ref()]
        joins: list[Join] = []
        while True:
            if self._match_operator(","):
                tables.append(self._parse_table_ref())
                continue
            token = self._peek()
            if token is not None and token.is_keyword("join", "inner", "left"):
                joins.append(self._parse_join())
                continue
            break

        where = None
        if self._match_keyword("where"):
            where = self._parse_expression()

        group_by: list[Expression] = []
        having = None
        if self._match_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self._parse_expression())
            while self._match_operator(","):
                group_by.append(self._parse_expression())
        if self._match_keyword("having"):
            having = self._parse_expression()

        order_by: list[OrderItem] = []
        if self._match_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._match_operator(","):
                order_by.append(self._parse_order_item())

        limit = None
        if self._match_keyword("limit"):
            token = self._advance()
            if token.kind != "number":
                raise SQLSyntaxError(f"LIMIT expects a number, got {token.value!r}")
            limit = int(float(token.value))

        return SelectStatement(
            items=items, tables=tables, joins=joins, where=where,
            group_by=group_by, having=having, order_by=order_by,
            limit=limit, distinct=distinct,
        )

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token is not None and token.is_operator("*"):
            self._advance()
            return SelectItem(expression=None)
        # alias.* form
        if (
            token is not None and token.kind == "identifier"
            and self._peek(1) is not None and self._peek(1).is_operator(".")
            and self._peek(2) is not None and self._peek(2).is_operator("*")
        ):
            qualifier = self._advance().value
            self._advance()
            self._advance()
            return SelectItem(expression=None, star_qualifier=qualifier)

        expression = self._parse_expression()
        alias = None
        if self._match_keyword("as"):
            alias_token = self._advance()
            if alias_token.kind not in ("identifier", "keyword"):
                raise SQLSyntaxError(f"bad alias {alias_token.value!r}")
            alias = alias_token.value
        else:
            next_token = self._peek()
            if next_token is not None and next_token.kind == "identifier":
                alias = self._advance().value
        if isinstance(expression, AggregateExpr):
            return SelectItem(expression=expression.call, alias=alias)
        return SelectItem(expression=expression, alias=alias)

    def _parse_table_ref(self) -> TableRef:
        token = self._advance()
        if token.kind not in ("identifier", "keyword"):
            raise SQLSyntaxError(f"expected relation name, got {token.value!r}")
        alias = None
        if self._match_keyword("as"):
            alias = self._advance().value
        else:
            next_token = self._peek()
            if next_token is not None and next_token.kind == "identifier":
                alias = self._advance().value
        return TableRef(relation_name=token.value, alias=alias)

    def _parse_join(self) -> Join:
        kind = "inner"
        if self._match_keyword("inner"):
            kind = "inner"
        elif self._match_keyword("left"):
            kind = "left"
        self._expect_keyword("join")
        table = self._parse_table_ref()
        self._expect_keyword("on")
        condition = self._parse_expression()
        if kind != "inner":
            raise SQLSyntaxError("only INNER JOIN is supported")
        return Join(table=table, condition=condition, kind=kind)

    def _parse_order_item(self) -> OrderItem:
        expression = self._parse_expression()
        descending = False
        if self._match_keyword("desc"):
            descending = True
        elif self._match_keyword("asc"):
            descending = False
        return OrderItem(expression=expression, descending=descending)

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        operands = [self._parse_and()]
        while self._match_keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def _parse_and(self) -> Expression:
        operands = [self._parse_not()]
        while self._match_keyword("and"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def _parse_not(self) -> Expression:
        if self._match_keyword("not"):
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        left = self._parse_additive()

        token = self._peek()
        if token is None:
            return left

        if token.is_keyword("is"):
            self._advance()
            negated = self._match_keyword("not")
            self._expect_keyword("null")
            return IsNull(left, negated=negated)

        negated = False
        if token.is_keyword("not"):
            nxt = self._peek(1)
            if nxt is not None and nxt.is_keyword("in", "like", "between"):
                self._advance()
                negated = True
                token = self._peek()

        if token is not None and token.is_keyword("in"):
            self._advance()
            self._expect_operator("(")
            values = [self._parse_additive()]
            while self._match_operator(","):
                values.append(self._parse_additive())
            self._expect_operator(")")
            return InList(left, tuple(values), negated=negated)

        if token is not None and token.is_keyword("like"):
            self._advance()
            pattern_token = self._advance()
            if pattern_token.kind != "string":
                raise SQLSyntaxError("LIKE expects a string pattern")
            return Like(left, pattern_token.value, negated=negated)

        if token is not None and token.is_keyword("between"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            between = And((Comparison(">=", left, low), Comparison("<=", left, high)))
            return Not(between) if negated else between

        if token is not None and token.is_operator("=", "!=", "<>", "<", "<=", ">", ">="):
            operator = self._advance().value
            right = self._parse_additive()
            return Comparison(operator, left, right)

        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token is not None and token.is_operator("+", "-"):
                operator = self._advance().value
                right = self._parse_multiplicative()
                left = Arithmetic(operator, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_primary()
        while True:
            token = self._peek()
            if token is not None and token.is_operator("*", "/", "%"):
                operator = self._advance().value
                right = self._parse_primary()
                left = Arithmetic(operator, left, right)
            else:
                return left

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of expression")

        if token.is_operator("("):
            self._advance()
            expression = self._parse_expression()
            self._expect_operator(")")
            return expression

        if token.is_operator("-"):
            self._advance()
            operand = self._parse_primary()
            return Arithmetic("-", Literal(0), operand)

        if token.kind == "number":
            self._advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)

        if token.kind == "string":
            self._advance()
            return Literal(token.value)

        if token.is_keyword("null"):
            self._advance()
            return Literal(NULL)

        if token.is_keyword(*AGGREGATE_KEYWORDS):
            return self._parse_aggregate()

        if token.kind in ("identifier", "keyword"):
            return self._parse_name_or_function()

        raise SQLSyntaxError(f"unexpected token {token.value!r} in expression")

    def _parse_aggregate(self) -> Expression:
        function_token = self._advance()
        function = function_token.value
        self._expect_operator("(")
        distinct = self._match_keyword("distinct")
        token = self._peek()
        argument: Expression | None
        if token is not None and token.is_operator("*"):
            self._advance()
            argument = None
        else:
            argument = self._parse_expression()
        self._expect_operator(")")
        return AggregateExpr(AggregateCall(function=function, argument=argument, distinct=distinct))

    def _parse_name_or_function(self) -> Expression:
        token = self._advance()
        name = token.value
        next_token = self._peek()

        if next_token is not None and next_token.is_operator("("):
            self._advance()
            arguments: list[Expression] = []
            if not self._match_operator(")"):
                arguments.append(self._parse_expression())
                while self._match_operator(","):
                    arguments.append(self._parse_expression())
                self._expect_operator(")")
            return FunctionCall(name, tuple(arguments))

        if next_token is not None and next_token.is_operator("."):
            self._advance()
            column_token = self._advance()
            if column_token.kind not in ("identifier", "keyword"):
                raise SQLSyntaxError(f"expected column name after {name!r}.")
            return ColumnRef(column_token.value, qualifier=name)

        return ColumnRef(name)


def parse_sql(text: str) -> Statement:
    """Parse SQL *text* into a statement AST."""
    tokens = tokenize(text)
    if not tokens:
        raise SQLSyntaxError("empty SQL statement")
    return _Parser(tokens, text).parse_statement()
