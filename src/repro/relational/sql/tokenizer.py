"""SQL tokenizer.

Splits SQL text into a list of :class:`Token` objects.  Keywords are
case-insensitive; string literals use single quotes with ``''`` escaping;
identifiers may be double-quoted to preserve case or include spaces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLSyntaxError

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "order",
    "limit", "as", "and", "or", "not", "in", "like", "is", "null", "join",
    "inner", "left", "on", "union", "all", "asc", "desc", "between", "exists",
    "count", "sum", "avg", "min", "max", "case", "when", "then", "else", "end",
}

OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%",
             "(", ")", ",", ".", ";")


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # 'keyword' | 'identifier' | 'string' | 'number' | 'operator'
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind == "keyword" and self.value in names

    def is_operator(self, *symbols: str) -> bool:
        return self.kind == "operator" and self.value in symbols


def tokenize(text: str) -> list[Token]:
    """Tokenize *text*; raises :class:`~repro.errors.SQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    length = len(text)
    while i < length:
        char = text[i]

        if char.isspace():
            i += 1
            continue

        # comments: -- to end of line
        if char == "-" and i + 1 < length and text[i + 1] == "-":
            newline = text.find("\n", i)
            i = length if newline < 0 else newline + 1
            continue

        # string literal
        if char == "'":
            value, i = _read_string(text, i)
            tokens.append(Token("string", value, i))
            continue

        # quoted identifier
        if char == '"':
            end = text.find('"', i + 1)
            if end < 0:
                raise SQLSyntaxError("unterminated quoted identifier", i)
            tokens.append(Token("identifier", text[i + 1:end], i))
            i = end + 1
            continue

        # number
        if char.isdigit() or (char == "." and i + 1 < length and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < length and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    seen_dot = True
                i += 1
            tokens.append(Token("number", text[start:i], start))
            continue

        # identifier or keyword
        if char.isalpha() or char == "_":
            start = i
            while i < length and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, start))
            else:
                tokens.append(Token("identifier", word, start))
            continue

        # operator
        matched = False
        for operator in OPERATORS:
            if text.startswith(operator, i):
                tokens.append(Token("operator", operator, i))
                i += len(operator)
                matched = True
                break
        if matched:
            continue

        raise SQLSyntaxError(f"unexpected character {char!r} at position {i}", i)
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string starting at *start*; returns (value, next_index)."""
    parts: list[str] = []
    i = start + 1
    length = len(text)
    while i < length:
        char = text[i]
        if char == "'":
            if i + 1 < length and text[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(char)
        i += 1
    raise SQLSyntaxError("unterminated string literal", start)
