"""Simple per-relation statistics used by reports and the discovery module.

Statistics are read off the relation's dictionary-encoded column store:
the store maintains live occurrence counts per code, so null counts,
distinct counts and the most common value fall out of one pass over each
column's (small) dictionary instead of a scan over all tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.relational.relation import Relation


@dataclass
class ColumnStats:
    """Summary statistics of one attribute."""

    attribute: str
    total: int
    nulls: int
    distinct: int
    most_common: Any = None
    most_common_count: int = 0

    @property
    def null_fraction(self) -> float:
        return self.nulls / self.total if self.total else 0.0

    @property
    def distinct_fraction(self) -> float:
        return self.distinct / self.total if self.total else 0.0


@dataclass
class RelationStats:
    """Summary statistics of a whole relation."""

    relation_name: str
    tuple_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, attribute: str) -> ColumnStats:
        return self.columns[attribute.lower()]


def collect_stats(relation: Relation) -> RelationStats:
    """Compute :class:`RelationStats` for *relation* from its column store."""
    stats = RelationStats(relation.name, len(relation))
    store = relation.columns
    total = len(relation)
    for attribute in relation.schema.attribute_names:
        column = store.column(attribute)
        most_common, most_common_count = column.most_common()
        stats.columns[attribute.lower()] = ColumnStats(
            attribute=attribute,
            total=total,
            nulls=column.null_count(),
            distinct=column.distinct_count(),
            most_common=most_common,
            most_common_count=most_common_count,
        )
    return stats
