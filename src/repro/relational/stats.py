"""Simple per-relation statistics used by reports and the discovery module."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.relational.relation import Relation
from repro.relational.types import is_null


@dataclass
class ColumnStats:
    """Summary statistics of one attribute."""

    attribute: str
    total: int
    nulls: int
    distinct: int
    most_common: Any = None
    most_common_count: int = 0

    @property
    def null_fraction(self) -> float:
        return self.nulls / self.total if self.total else 0.0

    @property
    def distinct_fraction(self) -> float:
        return self.distinct / self.total if self.total else 0.0


@dataclass
class RelationStats:
    """Summary statistics of a whole relation."""

    relation_name: str
    tuple_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, attribute: str) -> ColumnStats:
        return self.columns[attribute.lower()]


def collect_stats(relation: Relation) -> RelationStats:
    """Compute :class:`RelationStats` for *relation* in one pass per column."""
    stats = RelationStats(relation.name, len(relation))
    for attribute in relation.schema.attribute_names:
        values = relation.column(attribute)
        non_null = [v for v in values if not is_null(v)]
        counts: dict[Any, int] = {}
        for value in non_null:
            counts[value] = counts.get(value, 0) + 1
        most_common, most_common_count = None, 0
        if counts:
            most_common = max(counts, key=counts.get)
            most_common_count = counts[most_common]
        stats.columns[attribute.lower()] = ColumnStats(
            attribute=attribute,
            total=len(values),
            nulls=len(values) - len(non_null),
            distinct=len(counts),
            most_common=most_common,
            most_common_count=most_common_count,
        )
    return stats
