"""Value types and NULL semantics for the relational engine.

The engine supports four scalar attribute types (strings, integers,
floats and booleans) plus SQL-style NULLs.  NULL is represented by the
singleton :data:`NULL` rather than ``None`` so that accidental use of
``None`` by callers is caught early by :func:`coerce_value`.

Comparisons involving NULL follow three-valued logic and are implemented
in :mod:`repro.relational.expressions`; this module only provides the
value-level primitives (coercion, equality, ordering keys, display).
"""

from __future__ import annotations

import enum
import math
from typing import Any

from repro.errors import TypeMismatchError


class _NullType:
    """Singleton marker for SQL NULL values."""

    _instance: "_NullType | None" = None

    def __new__(cls) -> "_NullType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __hash__(self) -> int:
        return hash("__repro_null__")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _NullType)

    def __lt__(self, other: object) -> bool:
        # NULLs sort first; needed only for deterministic ordering of rows.
        return not isinstance(other, _NullType)

    def __gt__(self, other: object) -> bool:
        return False


NULL = _NullType()
"""The SQL NULL marker used throughout the engine."""


def is_null(value: Any) -> bool:
    """Return ``True`` when *value* is the engine's NULL marker (or ``None``)."""
    return value is None or isinstance(value, _NullType)


class AttributeType(enum.Enum):
    """Declared type of a relation attribute."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"

    def python_types(self) -> tuple[type, ...]:
        """Python types accepted (after coercion) for this attribute type."""
        if self is AttributeType.STRING:
            return (str,)
        if self is AttributeType.INTEGER:
            return (int,)
        if self is AttributeType.FLOAT:
            return (float, int)
        return (bool,)


_TRUE_STRINGS = {"true", "t", "yes", "y", "1"}
_FALSE_STRINGS = {"false", "f", "no", "n", "0"}


def coerce_value(value: Any, attr_type: AttributeType) -> Any:
    """Coerce *value* to the Python representation of *attr_type*.

    ``None``, the :data:`NULL` marker and the empty string all coerce to
    NULL.  Strings are parsed for numeric and boolean attributes; numbers
    are stringified for string attributes.  Raises
    :class:`~repro.errors.TypeMismatchError` when the value cannot be
    represented in the declared type.
    """
    if is_null(value):
        return NULL
    if isinstance(value, str) and value == "" and attr_type is not AttributeType.STRING:
        return NULL

    if attr_type is AttributeType.STRING:
        if isinstance(value, str):
            return value
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, (int, float)):
            return _number_to_string(value)
        raise TypeMismatchError(f"cannot represent {value!r} as STRING")

    if attr_type is AttributeType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            if not value.is_integer():
                raise TypeMismatchError(f"cannot represent {value!r} as INTEGER")
            return int(value)
        if isinstance(value, str):
            try:
                return int(value.strip())
            except ValueError as exc:
                raise TypeMismatchError(f"cannot parse {value!r} as INTEGER") from exc
        raise TypeMismatchError(f"cannot represent {value!r} as INTEGER")

    if attr_type is AttributeType.FLOAT:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            result = float(value)
            if math.isnan(result):
                return NULL
            return result
        if isinstance(value, str):
            try:
                result = float(value.strip())
            except ValueError as exc:
                raise TypeMismatchError(f"cannot parse {value!r} as FLOAT") from exc
            if math.isnan(result):
                return NULL
            return result
        raise TypeMismatchError(f"cannot represent {value!r} as FLOAT")

    # BOOLEAN
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in _TRUE_STRINGS:
            return True
        if lowered in _FALSE_STRINGS:
            return False
    raise TypeMismatchError(f"cannot parse {value!r} as BOOLEAN")


def _number_to_string(value: int | float) -> str:
    """Render a number the way CSV import/export expects it."""
    if isinstance(value, int):
        return str(value)
    if value.is_integer():
        return str(int(value))
    return repr(value)


def value_repr(value: Any) -> str:
    """Human-readable rendering of a value (used in reports and errors)."""
    if is_null(value):
        return "NULL"
    if isinstance(value, str):
        return f"'{value}'"
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def infer_type(values: list[Any]) -> AttributeType:
    """Infer the narrowest :class:`AttributeType` that fits all *values*.

    Used by CSV import when no schema is supplied.  NULLs and empty
    strings are ignored during inference; an all-NULL column defaults to
    STRING.
    """
    non_null = [v for v in values if not is_null(v) and v != ""]
    if not non_null:
        return AttributeType.STRING

    def fits(attr_type: AttributeType) -> bool:
        for value in non_null:
            try:
                coerce_value(value, attr_type)
            except TypeMismatchError:
                return False
        return True

    for candidate in (AttributeType.INTEGER, AttributeType.FLOAT, AttributeType.BOOLEAN):
        if fits(candidate):
            return candidate
    return AttributeType.STRING


def sort_key(value: Any) -> tuple[int, Any]:
    """Total-order key over heterogeneous values (NULLs first)."""
    if is_null(value):
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, float(value))
    return (3, str(value))


def constants_equal(left: Any, right: Any) -> bool:
    """Compare a data value with a pattern constant, tolerating int/str mismatches.

    This is the ``≍`` equality of CFD pattern matching (historically
    defined next to :class:`~repro.constraints.tableau.PatternTuple`, now
    a value-level primitive shared with the dictionary-code predicate
    compilers in :mod:`repro.relational.predicates`).
    """
    if left == right:
        return True
    return str(left) == str(right)
