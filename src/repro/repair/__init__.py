"""Constraint-based data repairing, following Cong et al. (VLDB 2007).

Given a dirty relation and a set of CFDs, *repairing* produces another
relation that satisfies the CFDs and minimally differs from the original
(§5 of the tutorial, the Semandaq repair engine).  The package provides:

* a cell-level cost model (:mod:`repro.repair.cost`),
* equivalence classes of cells (:mod:`repro.repair.eqclass`) — the central
  data structure of the algorithm: cells in one class must receive the
  same value in the repair,
* :class:`~repro.repair.batch_repair.BatchRepair` — repair a whole dirty
  relation,
* :class:`~repro.repair.inc_repair.IncRepair` — repair only a batch of
  newly inserted tuples against an already-clean base, and
* repair-quality metrics (precision / recall against a known clean
  relation, :mod:`repro.repair.quality`).
"""

from repro.repair.cost import CostModel
from repro.repair.eqclass import EquivalenceClasses
from repro.repair.batch_repair import BatchRepair, Repair, CellChange
from repro.repair.inc_repair import IncRepair
from repro.repair.quality import RepairQuality, evaluate_repair

__all__ = [
    "CostModel",
    "EquivalenceClasses",
    "BatchRepair",
    "IncRepair",
    "Repair",
    "CellChange",
    "RepairQuality",
    "evaluate_repair",
]
