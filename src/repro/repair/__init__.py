"""Constraint-based data repairing, following Cong et al. (VLDB 2007).

Given a dirty relation and a set of CFDs, *repairing* produces another
relation that satisfies the CFDs and minimally differs from the original
(§5 of the tutorial, the Semandaq repair engine).  The package provides:

* a cell-level cost model (:mod:`repro.repair.cost`) with a value face
  and a dictionary-code face (per-column ``(code, code)`` distance memo),
* equivalence classes of cells (:mod:`repro.repair.eqclass`) — the central
  data structure of the algorithm: cells in one class must receive the
  same value in the repair; :class:`~repro.repair.eqclass.
  CodeEquivalenceClasses` is the ``(tid, column position)`` variant the
  columnar path pins dictionary codes into,
* :class:`~repro.repair.batch_repair.BatchRepair` — repair a whole dirty
  relation (on codes by default; ``use_columns=False`` keeps the
  byte-identical row/string path),
* :class:`~repro.repair.inc_repair.IncRepair` — repair only a batch of
  newly inserted tuples against an already-clean base, and
* repair-quality metrics (precision / recall against a known clean
  relation, :mod:`repro.repair.quality`).
"""

from repro.repair.cost import CostModel
from repro.repair.eqclass import CodeEquivalenceClasses, EquivalenceClasses
from repro.repair.batch_repair import BatchRepair, Repair, CellChange, RepairPlan
from repro.repair.inc_repair import IncRepair
from repro.repair.quality import RepairQuality, evaluate_repair

__all__ = [
    "CostModel",
    "CodeEquivalenceClasses",
    "EquivalenceClasses",
    "BatchRepair",
    "IncRepair",
    "Repair",
    "RepairPlan",
    "CellChange",
    "RepairQuality",
    "evaluate_repair",
]
