"""BatchRepair: repair a dirty relation against a set of CFDs.

The algorithm follows Cong et al. (VLDB 2007):

1. detect all CFD violations of the current relation;
2. resolve each violation at minimum cost —
   * a **constant** violation (a tuple disagreeing with a pattern's RHS
     constant) is resolved by writing the constant into the offending
     cell;
   * a **variable** (group) violation is resolved by moving the RHS cells
     of the group to a common target value, chosen by the cost model
     (weighted majority), unless one of the cells was already pinned by a
     constant resolution — then the pinned value wins;
   * if a group contains cells pinned to *different* constants, no common
     RHS value exists; the conflicting tuples are split off the group by
     setting one of their LHS attributes to a fresh value outside the
     active domain (the "cannot resolve by equalization" case of the
     paper);
3. repeat until no violation remains (or ``max_passes`` is reached —
   oscillation between interacting CFDs is theoretically possible, and the
   result records whether the fixpoint was reached).

The repair never touches the input relation: it works on a copy and
returns a :class:`Repair` carrying the repaired relation, the list of cell
changes, their total cost and convergence information.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.constraints.cfd import CFD, merge_cfds
from repro.constraints.violations import CFDViolation
from repro.detection.batch import BatchCFDDetector
from repro.errors import RepairError
from repro.relational.relation import Relation
from repro.repair.cost import CostModel


@dataclass(frozen=True)
class CellChange:
    """One cell modified by the repair."""

    tid: int
    attribute: str
    old_value: Any
    new_value: Any


@dataclass
class Repair:
    """The outcome of a repair run."""

    relation: Relation
    changes: list[CellChange] = field(default_factory=list)
    cost: float = 0.0
    passes: int = 0
    converged: bool = True

    @property
    def changed_cells(self) -> set[tuple[int, str]]:
        """The (tid, attribute) cells the repair modified."""
        return {(change.tid, change.attribute) for change in self.changes}

    def changes_for(self, tid: int) -> list[CellChange]:
        """All changes applied to one tuple."""
        return [change for change in self.changes if change.tid == tid]

    def summary(self) -> str:
        status = "converged" if self.converged else "did NOT converge"
        return (f"repair of {self.relation.name!r}: {len(self.changes)} cells changed, "
                f"cost {self.cost:.3f}, {self.passes} pass(es), {status}")


class BatchRepair:
    """Repairs a whole relation against a set of CFDs."""

    #: resolution orderings available for the ablation benchmark (E5):
    #: "largest_first" resolves the biggest violating groups first,
    #: "arbitrary" keeps detection order.
    ORDERINGS = ("largest_first", "arbitrary")

    def __init__(self, relation: Relation, cfds: Sequence[CFD],
                 cost_model: CostModel | None = None,
                 ordering: str = "largest_first",
                 max_passes: int = 25) -> None:
        if ordering not in self.ORDERINGS:
            raise RepairError(f"unknown ordering {ordering!r}; known: {self.ORDERINGS}")
        for cfd in cfds:
            cfd.validate_against(relation)
        self._original = relation
        self._cfds = merge_cfds(cfds)
        self._cost_model = cost_model or CostModel()
        self._ordering = ordering
        self._max_passes = max_passes
        self._fresh_counter = itertools.count()

    # -- public ----------------------------------------------------------------

    def repair(self) -> Repair:
        """Run the repair and return the result (the input relation is untouched)."""
        working = self._original.copy()
        passes = 0
        converged = False

        for _ in range(self._max_passes):
            passes += 1
            report = BatchCFDDetector(working, self._cfds).detect()
            if report.is_clean():
                converged = True
                break
            pinned: dict[tuple[int, str], Any] = {}
            violations = self._ordered(list(report.violations))
            for violation in violations:
                if violation.is_single_tuple:
                    self._resolve_constant(working, violation, pinned)
            for violation in violations:
                if not violation.is_single_tuple:
                    self._resolve_group(working, violation, pinned)
        else:
            # loop ended without break: check once more
            converged = BatchCFDDetector(working, self._cfds).detect().is_clean()

        if not converged:
            report = BatchCFDDetector(working, self._cfds).detect()
            if report.is_clean():
                converged = True

        changes = self._collect_changes(working)
        cost = sum(
            self._cost_model.change_cost(c.tid, c.attribute, c.old_value, c.new_value)
            for c in changes
        )
        return Repair(relation=working, changes=changes, cost=cost,
                      passes=passes, converged=converged)

    # -- resolution steps ----------------------------------------------------------

    def _ordered(self, violations: list[CFDViolation]) -> list[CFDViolation]:
        if self._ordering == "largest_first":
            return sorted(violations, key=lambda v: -len(v.tids))
        return violations

    def _resolve_constant(self, working: Relation, violation: CFDViolation,
                          pinned: dict[tuple[int, str], Any]) -> None:
        """Write the pattern's RHS constants into the offending tuple."""
        cfd, pattern = violation.cfd, violation.pattern
        tid = violation.tids[0]
        if tid not in working:
            return
        row = working.tuple(tid)
        if not pattern.matches(row, cfd.lhs):
            return  # an earlier resolution already moved this tuple out of scope
        for attribute in cfd.rhs:
            if not pattern.is_constant_on(attribute):
                continue
            target = pattern.constant(attribute)
            current = row[attribute]
            if str(current) == str(target):
                continue
            existing_pin = pinned.get((tid, attribute))
            if existing_pin is not None and str(existing_pin) != str(target):
                # two constant CFDs demand different values for the same cell:
                # the CFD set is inconsistent on this tuple; move it out of the
                # second pattern's scope instead of flip-flopping.
                self._break_lhs(working, cfd, tid)
                return
            working.update(tid, attribute, target)
            pinned[(tid, attribute)] = target

    def _resolve_group(self, working: Relation, violation: CFDViolation,
                       pinned: dict[tuple[int, str], Any]) -> None:
        """Equalize the variable RHS attributes of a violating group."""
        cfd, pattern = violation.cfd, violation.pattern
        tids = [tid for tid in violation.tids if tid in working]
        if len(tids) < 2:
            return
        rows = {tid: working.tuple(tid) for tid in tids}
        # the group may have drifted apart due to earlier resolutions
        live = [tid for tid in tids
                if pattern.matches(rows[tid], cfd.lhs)]
        if len(live) < 2:
            return
        key_values = {tid: rows[tid].project(list(cfd.lhs)) for tid in live}
        anchor = key_values[live[0]]
        live = [tid for tid in live if key_values[tid] == anchor]
        if len(live) < 2:
            return

        for attribute in cfd.rhs:
            if pattern.is_constant_on(attribute):
                continue
            cells = [(tid, attribute, working.value(tid, attribute)) for tid in live]
            current_values = {str(value) for _, _, value in cells}
            if len(current_values) <= 1:
                continue
            pins = {str(pinned[(tid, attribute)])
                    for tid in live if (tid, attribute) in pinned}
            if len(pins) > 1:
                # irreconcilable constants: split the group on the LHS
                for tid in live[1:]:
                    self._break_lhs(working, cfd, tid)
                return
            if pins:
                target = next(iter(pins))
            else:
                target, _ = self._cost_model.cheapest_target(cells)
            for tid, _, current in cells:
                if str(current) != str(target):
                    working.update(tid, attribute, target)

    def _break_lhs(self, working: Relation, cfd: CFD, tid: int) -> None:
        """Move a tuple out of a pattern's scope by refreshing one LHS attribute."""
        attribute = cfd.lhs[-1]
        fresh = f"__repair_fresh_{next(self._fresh_counter)}"
        working.update(tid, attribute, fresh)

    # -- bookkeeping -------------------------------------------------------------------

    def _collect_changes(self, working: Relation) -> list[CellChange]:
        changes: list[CellChange] = []
        for tid in self._original.tids():
            if tid not in working:
                continue
            original_row = self._original.tuple(tid)
            repaired_row = working.tuple(tid)
            for attribute in self._original.schema.attribute_names:
                old_value, new_value = original_row[attribute], repaired_row[attribute]
                if str(old_value) != str(new_value):
                    changes.append(CellChange(tid, attribute.lower(), old_value, new_value))
        return changes


def repair_relation(relation: Relation, cfds: Sequence[CFD],
                    cost_model: CostModel | None = None, **kwargs) -> Repair:
    """Convenience wrapper around :class:`BatchRepair`."""
    return BatchRepair(relation, cfds, cost_model=cost_model, **kwargs).repair()
