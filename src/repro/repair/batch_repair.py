"""BatchRepair: repair a dirty relation against a set of CFDs.

The algorithm follows Cong et al. (VLDB 2007):

1. detect all CFD violations of the current relation;
2. resolve each violation at minimum cost —
   * a **constant** violation (a tuple disagreeing with a pattern's RHS
     constant) is resolved by writing the constant into the offending
     cell;
   * a **variable** (group) violation is resolved by moving the RHS cells
     of the group to a common target value, chosen by the cost model
     (weighted majority), unless one of the cells was already pinned by a
     constant resolution — then the pinned value wins;
   * if a group contains cells pinned to *different* constants, no common
     RHS value exists; the conflicting tuples are split off the group by
     setting one of their LHS attributes to a fresh value outside the
     active domain (the "cannot resolve by equalization" case of the
     paper);
3. repeat until no violation remains (or ``max_passes`` is reached —
   oscillation between interacting CFDs is theoretically possible, and the
   result records whether the fixpoint was reached).

By default the whole loop runs on the relation's dictionary-encoded
columns: pattern scope checks are compiled code tests
(:class:`~repro.detection.columnar.CompiledPattern`), value agreement is
decided through the per-code string caches, pinned targets live in a
:class:`~repro.repair.eqclass.CodeEquivalenceClasses` keyed by ``(tid,
column position)``, and cheapest targets come from the cost model's
code-level face with its per-column distance memo.  Values are decoded
only at the write-back and :class:`CellChange` boundaries.  The per-pass
detection reuses one :class:`~repro.detection.batch.BatchCFDDetector`, so
``engine=``/``workers=`` route every inner detection pass through the
chunked execution engine (:mod:`repro.engine`).  ``use_columns=False``
restores the original row/string path; both paths produce byte-identical
:class:`Repair` results (same changes, cost, passes and convergence).

The repair never touches the input relation: it works on a copy and
returns a :class:`Repair` carrying the repaired relation, the list of cell
changes, their total cost and convergence information.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro import obs
from repro.constraints.cfd import CFD, merge_cfds
from repro.constraints.tableau import PatternTuple
from repro.constraints.violations import CFDViolation
from repro.detection.batch import BatchCFDDetector
from repro.detection.columnar import CompiledPattern
from repro.errors import RepairError
from repro.relational.columns import Column
from repro.relational.relation import Relation
from repro.repair.cost import CostModel
from repro.repair.eqclass import CodeEquivalenceClasses


@dataclass(frozen=True)
class CellChange:
    """One cell modified by the repair."""

    tid: int
    attribute: str
    old_value: Any
    new_value: Any


@dataclass
class Repair:
    """The outcome of a repair run."""

    relation: Relation
    changes: list[CellChange] = field(default_factory=list)
    cost: float = 0.0
    passes: int = 0
    converged: bool = True

    @property
    def changed_cells(self) -> set[tuple[int, str]]:
        """The (tid, attribute) cells the repair modified."""
        return {(change.tid, change.attribute) for change in self.changes}

    def changes_for(self, tid: int) -> list[CellChange]:
        """All changes applied to one tuple."""
        return [change for change in self.changes if change.tid == tid]

    def summary(self) -> str:
        status = "converged" if self.converged else "did NOT converge"
        return (f"repair of {self.relation.name!r}: {len(self.changes)} cells changed, "
                f"cost {self.cost:.3f}, {self.passes} pass(es), {status}")


class RepairPlan:
    """One (CFD, pattern) pair compiled against a relation's column store.

    Bundles everything the code-level resolution steps need: the compiled
    LHS tests, the LHS code arrays (for group-key snapshots) and, per RHS
    attribute, its schema position and column — plus, for constant RHS
    attributes, the raw pattern constant, its string form and its
    dictionary code (interned once; codes pinned in the equivalence
    classes refer to it).  The referenced arrays and matcher sets are
    maintained in place by the column store, so a plan stays valid across
    the repair's own updates.
    """

    __slots__ = ("compiled", "key_arrays", "constant_rhs", "variable_rhs")

    def __init__(self, cfd: CFD, pattern: PatternTuple, relation: Relation) -> None:
        store = relation.columns
        self.compiled = CompiledPattern(cfd, pattern, relation)
        positions = relation.schema.positions(list(cfd.lhs))
        self.key_arrays = store.code_arrays(positions)
        self.constant_rhs: list[tuple[str, int, Column, Any, str, int]] = []
        self.variable_rhs: list[tuple[str, int, Column]] = []
        for attribute in cfd.rhs:
            position = relation.schema.position(attribute)
            column = store.column_at(position)
            if pattern.is_constant_on(attribute):
                target = pattern.constant(attribute)
                self.constant_rhs.append((attribute, position, column, target,
                                          str(target), column.intern(target)))
            else:
                self.variable_rhs.append((attribute, position, column))

    def lhs_matches(self, tid: int) -> bool:
        return self.compiled.lhs_matches(tid)

    def key_codes(self, tid: int) -> tuple[int, ...]:
        return tuple(codes[tid] for codes in self.key_arrays)


class BatchRepair:
    """Repairs a whole relation against a set of CFDs."""

    #: resolution orderings available for the ablation benchmark (E5):
    #: "largest_first" resolves the biggest violating groups first,
    #: "arbitrary" keeps detection order.
    ORDERINGS = ("largest_first", "arbitrary")

    def __init__(self, relation: Relation, cfds: Sequence[CFD],
                 cost_model: CostModel | None = None,
                 ordering: str = "largest_first",
                 max_passes: int = 25,
                 use_columns: bool = True,
                 engine: str | None = None, workers: int | None = None,
                 task_timeout: float | None = None,
                 task_retries: int | None = None) -> None:
        if ordering not in self.ORDERINGS:
            raise RepairError(f"unknown ordering {ordering!r}; known: {self.ORDERINGS}")
        for cfd in cfds:
            cfd.validate_against(relation)
        self._original = relation
        self._cfds = merge_cfds(cfds)
        self._cost_model = cost_model or CostModel()
        self._ordering = ordering
        self._max_passes = max_passes
        self._use_columns = use_columns
        self._engine_name = engine
        self._workers = workers
        self._task_timeout = task_timeout
        self._task_retries = task_retries
        self._fresh_counter = itertools.count()

    # -- public ----------------------------------------------------------------

    def repair(self) -> Repair:
        """Run the repair and return the result (the input relation is untouched)."""
        working = self._original.copy()
        detector = BatchCFDDetector(working, self._cfds,
                                    use_columns=self._use_columns,
                                    engine=self._engine_name, workers=self._workers,
                                    task_timeout=self._task_timeout,
                                    task_retries=self._task_retries)
        plans: dict[tuple[CFD, PatternTuple], RepairPlan] = {}
        passes = 0
        converged = False

        for _ in range(self._max_passes):
            with obs.span("repair.pass", relation=self._original.name):
                passes += 1
                if obs.enabled:
                    obs.inc("repair.passes")
                report = detector.detect()
                if report.is_clean():
                    converged = True
                    break
                violations = self._ordered(list(report.violations))
                if obs.enabled:
                    obs.inc("repair.violations", len(violations))
                if self._use_columns:
                    pinned_codes = CodeEquivalenceClasses()
                    for violation in violations:
                        if violation.is_single_tuple:
                            self._resolve_constant_codes(working, violation, pinned_codes, plans)
                    for violation in violations:
                        if not violation.is_single_tuple:
                            self._resolve_group_codes(working, violation, pinned_codes, plans)
                else:
                    pinned: dict[tuple[int, str], Any] = {}
                    for violation in violations:
                        if violation.is_single_tuple:
                            self._resolve_constant(working, violation, pinned)
                    for violation in violations:
                        if not violation.is_single_tuple:
                            self._resolve_group(working, violation, pinned)
        else:
            # loop ended without break: check once more
            converged = detector.detect().is_clean()

        changes = self._collect_changes(working)
        if obs.enabled:
            obs.inc("repair.changes", len(changes))
        cost = sum(
            self._cost_model.change_cost(c.tid, c.attribute, c.old_value, c.new_value)
            for c in changes
        )
        return Repair(relation=working, changes=changes, cost=cost,
                      passes=passes, converged=converged)

    # -- code-level resolution ---------------------------------------------------

    def _plan_for(self, working: Relation, violation: CFDViolation,
                  plans: dict[tuple[CFD, PatternTuple], RepairPlan]) -> RepairPlan:
        key = (violation.cfd, violation.pattern)
        plan = plans.get(key)
        if plan is None:
            plan = RepairPlan(violation.cfd, violation.pattern, working)
            plans[key] = plan
        return plan

    def _resolve_constant_codes(self, working: Relation, violation: CFDViolation,
                                pinned: CodeEquivalenceClasses,
                                plans: dict[tuple[CFD, PatternTuple], RepairPlan]) -> None:
        """Code-level twin of :meth:`_resolve_constant`."""
        tid = violation.tids[0]
        if tid not in working:
            return
        plan = self._plan_for(working, violation, plans)
        if not plan.lhs_matches(tid):
            return  # an earlier resolution already moved this tuple out of scope
        for attribute, position, column, target, target_str, target_code in plan.constant_rhs:
            strings = column.strings
            if strings[column.codes[tid]] == target_str:
                continue
            cell = (tid, position)
            existing = pinned.pinned_value(cell)
            if existing is not None and strings[existing] != target_str:
                # two constant CFDs demand different values for the same cell:
                # the CFD set is inconsistent on this tuple; move it out of the
                # second pattern's scope instead of flip-flopping.
                self._break_lhs(working, violation.cfd, tid)
                return
            working.update(tid, attribute, target)
            if existing is None:
                pinned.pin(cell, target_code)

    def _resolve_group_codes(self, working: Relation, violation: CFDViolation,
                             pinned: CodeEquivalenceClasses,
                             plans: dict[tuple[CFD, PatternTuple], RepairPlan]) -> None:
        """Code-level twin of :meth:`_resolve_group`."""
        tids = [tid for tid in violation.tids if tid in working]
        if len(tids) < 2:
            return
        plan = self._plan_for(working, violation, plans)
        # the group may have drifted apart due to earlier resolutions
        live = [tid for tid in tids if plan.lhs_matches(tid)]
        if len(live) < 2:
            return
        key_codes = {tid: plan.key_codes(tid) for tid in live}
        anchor = key_codes[live[0]]
        live = [tid for tid in live if key_codes[tid] == anchor]
        if len(live) < 2:
            return

        for attribute, position, column in plan.variable_rhs:
            codes = column.codes
            strings = column.strings
            cells = [(tid, codes[tid]) for tid in live]
            if len({strings[code] for _, code in cells}) <= 1:
                continue
            pins = {strings[pinned.pinned_value((tid, position))]
                    for tid in live if pinned.is_pinned((tid, position))}
            if len(pins) > 1:
                # irreconcilable constants: split the group on the LHS
                for tid in live[1:]:
                    self._break_lhs(working, violation.cfd, tid)
                return
            if pins:
                # the string path writes str(pinned constant); mirror that
                target_str = next(iter(pins))
                target_value: Any = target_str
            else:
                target_code, _ = self._cost_model.cheapest_target_code(
                    attribute, column, cells)
                target_str = strings[target_code]
                target_value = column.value_of(target_code)
            for tid, code in cells:
                if strings[code] != target_str:
                    working.update(tid, attribute, target_value)

    # -- row/string resolution (the retained legacy path) -------------------------

    def _ordered(self, violations: list[CFDViolation]) -> list[CFDViolation]:
        if self._ordering == "largest_first":
            return sorted(violations, key=lambda v: -len(v.tids))
        return violations

    def _resolve_constant(self, working: Relation, violation: CFDViolation,
                          pinned: dict[tuple[int, str], Any]) -> None:
        """Write the pattern's RHS constants into the offending tuple."""
        cfd, pattern = violation.cfd, violation.pattern
        tid = violation.tids[0]
        if tid not in working:
            return
        row = working.tuple(tid)
        if not pattern.matches(row, cfd.lhs):
            return  # an earlier resolution already moved this tuple out of scope
        for attribute in cfd.rhs:
            if not pattern.is_constant_on(attribute):
                continue
            target = pattern.constant(attribute)
            current = row[attribute]
            if str(current) == str(target):
                continue
            existing_pin = pinned.get((tid, attribute))
            if existing_pin is not None and str(existing_pin) != str(target):
                # two constant CFDs demand different values for the same cell:
                # the CFD set is inconsistent on this tuple; move it out of the
                # second pattern's scope instead of flip-flopping.
                self._break_lhs(working, cfd, tid)
                return
            working.update(tid, attribute, target)
            pinned[(tid, attribute)] = target

    def _resolve_group(self, working: Relation, violation: CFDViolation,
                       pinned: dict[tuple[int, str], Any]) -> None:
        """Equalize the variable RHS attributes of a violating group."""
        cfd, pattern = violation.cfd, violation.pattern
        tids = [tid for tid in violation.tids if tid in working]
        if len(tids) < 2:
            return
        rows = {tid: working.tuple(tid) for tid in tids}
        # the group may have drifted apart due to earlier resolutions
        live = [tid for tid in tids
                if pattern.matches(rows[tid], cfd.lhs)]
        if len(live) < 2:
            return
        key_values = {tid: rows[tid].project(list(cfd.lhs)) for tid in live}
        anchor = key_values[live[0]]
        live = [tid for tid in live if key_values[tid] == anchor]
        if len(live) < 2:
            return

        for attribute in cfd.rhs:
            if pattern.is_constant_on(attribute):
                continue
            cells = [(tid, attribute, working.value(tid, attribute)) for tid in live]
            current_values = {str(value) for _, _, value in cells}
            if len(current_values) <= 1:
                continue
            pins = {str(pinned[(tid, attribute)])
                    for tid in live if (tid, attribute) in pinned}
            if len(pins) > 1:
                # irreconcilable constants: split the group on the LHS
                for tid in live[1:]:
                    self._break_lhs(working, cfd, tid)
                return
            if pins:
                target = next(iter(pins))
            else:
                target, _ = self._cost_model.cheapest_target(cells)
            for tid, _, current in cells:
                if str(current) != str(target):
                    working.update(tid, attribute, target)

    def _break_lhs(self, working: Relation, cfd: CFD, tid: int) -> None:
        """Move a tuple out of a pattern's scope by refreshing one LHS attribute."""
        attribute = cfd.lhs[-1]
        fresh = f"__repair_fresh_{next(self._fresh_counter)}"
        working.update(tid, attribute, fresh)

    # -- bookkeeping -------------------------------------------------------------------

    def _collect_changes(self, working: Relation) -> list[CellChange]:
        if self._use_columns:
            return self._collect_changes_codes(working)
        changes: list[CellChange] = []
        for tid in self._original.tids():
            if tid not in working:
                continue
            original_row = self._original.tuple(tid)
            repaired_row = working.tuple(tid)
            for attribute in self._original.schema.attribute_names:
                old_value, new_value = original_row[attribute], repaired_row[attribute]
                if str(old_value) != str(new_value):
                    changes.append(CellChange(tid, attribute.lower(), old_value, new_value))
        return changes

    def _collect_changes_codes(self, working: Relation) -> list[CellChange]:
        """Change sweep on codes: per-code string compares, decode only changed cells."""
        changes: list[CellChange] = []
        names = [name.lower() for name in self._original.schema.attribute_names]
        original_columns = self._original.columns.columns()
        working_columns = working.columns.columns()
        pairs = [(o.codes, o.strings, o.values, w.codes, w.strings, w.values)
                 for o, w in zip(original_columns, working_columns)]
        for tid in self._original.tids():
            if tid not in working:
                continue
            for name, (o_codes, o_strings, o_values, w_codes, w_strings, w_values) \
                    in zip(names, pairs):
                o_code, w_code = o_codes[tid], w_codes[tid]
                if o_strings[o_code] != w_strings[w_code]:
                    changes.append(CellChange(tid, name, o_values[o_code], w_values[w_code]))
        return changes


def repair_relation(relation: Relation, cfds: Sequence[CFD],
                    cost_model: CostModel | None = None, **kwargs) -> Repair:
    """Convenience wrapper around :class:`BatchRepair`."""
    return BatchRepair(relation, cfds, cost_model=cost_model, **kwargs).repair()
