"""The repair cost model.

Following Cong et al., the cost of changing the value of cell ``(t, A)``
from ``v`` to ``v'`` is ``w(t, A) · dist(v, v')`` where ``w`` is a
per-cell confidence weight (1.0 by default — the user trusts every cell
equally) and ``dist`` is a normalized distance in ``[0, 1]`` (here:
normalized edit distance).  The cost of a repair is the sum over all
changed cells; BatchRepair picks target values that minimize this sum.

The model has two equivalent faces.  The value-level one
(:meth:`CostModel.change_cost`, :meth:`CostModel.cheapest_target`) takes
raw values; the code-level one (:meth:`CostModel.code_distance`,
:meth:`CostModel.cheapest_target_code`) takes dictionary codes of one
:class:`~repro.relational.columns.Column` and memoises every
``(code, code)`` distance on the column itself — codes are decoded only
on a cache miss, so repeated repair passes over the same groups never
recompute a pair.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Mapping

from repro import obs
from repro.matching.similarity import normalized_edit_distance
from repro.relational.columns import Column, NULL_CODE
from repro.relational.types import is_null


class CostModel:
    """Per-cell weights plus a value-distance function."""

    def __init__(self, default_weight: float = 1.0,
                 distance: Callable[[Any, Any], float] | None = None) -> None:
        if default_weight < 0:
            raise ValueError("default_weight must be non-negative")
        self._default_weight = default_weight
        self._weights: dict[tuple[int, str], float] = {}
        self._distance = distance or normalized_edit_distance
        # Column-level memos are shared between models with the same
        # distance *behaviour*: the concrete class participates so a
        # subclass overriding distance() can never poison the memo of a
        # plain model (and vice versa), while models passing the same
        # function reuse one memo instead of growing a fresh one each.
        self._distance_key: Hashable = (type(self), self._distance)

    # -- weights ------------------------------------------------------------

    def set_weight(self, tid: int, attribute: str, weight: float) -> None:
        """Set the confidence weight of one cell (higher = more trusted)."""
        if weight < 0:
            raise ValueError("weights must be non-negative")
        self._weights[(tid, attribute.lower())] = weight

    def set_weights(self, weights: Mapping[tuple[int, str], float]) -> None:
        """Bulk version of :meth:`set_weight`."""
        for (tid, attribute), weight in weights.items():
            self.set_weight(tid, attribute, weight)

    def weight(self, tid: int, attribute: str) -> float:
        """Confidence weight of cell ``(tid, attribute)``."""
        return self._weights.get((tid, attribute.lower()), self._default_weight)

    # -- costs ---------------------------------------------------------------

    def distance(self, old_value: Any, new_value: Any) -> float:
        """Distance in [0, 1] between two values (0 when equal)."""
        if is_null(old_value) and is_null(new_value):
            return 0.0
        return self._distance(old_value, new_value)

    def change_cost(self, tid: int, attribute: str, old_value: Any, new_value: Any) -> float:
        """Cost of changing one cell."""
        return self.weight(tid, attribute) * self.distance(old_value, new_value)

    def target_cost(self, cells: Iterable[tuple[int, str, Any]], target: Any) -> float:
        """Cost of moving every cell ``(tid, attribute, current)`` to *target*."""
        return sum(self.change_cost(tid, attribute, current, target)
                   for tid, attribute, current in cells)

    def cheapest_target(self, cells: list[tuple[int, str, Any]],
                        candidates: Iterable[Any] | None = None) -> tuple[Any, float]:
        """The value minimizing :meth:`target_cost` over *candidates*.

        When *candidates* is omitted the current values of the cells are
        used (the optimal target of the weighted-majority resolution).
        """
        if not cells:
            raise ValueError("cheapest_target needs at least one cell")
        pool = list(candidates) if candidates is not None else []
        if not pool:
            seen = set()
            for _, _, value in cells:
                key = str(value) if not is_null(value) else None
                if key not in seen:
                    seen.add(key)
                    pool.append(value)
        best_value, best_cost = None, float("inf")
        for candidate in pool:
            cost = self.target_cost(cells, candidate)
            if cost < best_cost:
                best_value, best_cost = candidate, cost
        return best_value, best_cost

    # -- code-level costs ----------------------------------------------------

    def code_distance(self, column: Column, code: int, target_code: int) -> float:
        """:meth:`distance` between two dictionary codes of one column.

        Memoised in the column's :meth:`~repro.relational.columns.Column.
        distance_cache` under this model's distance identity; the pair is
        decoded (and the distance computed) only on the first encounter.
        Equal codes short-circuit to ``0.0`` — which also covers the
        NULL/NULL case, since NULL is one shared code.
        """
        if code == target_code:
            return 0.0
        cache = column.distance_cache(self._distance_key)
        key = (code, target_code)
        value = cache.get(key)
        if value is None:
            if obs.enabled:
                obs.inc("cache.distance.miss")
            value = self.distance(column.value_of(code), column.value_of(target_code))
            cache[key] = value
        elif obs.enabled:
            obs.inc("cache.distance.hit")
        return value

    def code_target_cost(self, attribute: str, column: Column,
                         cells: Iterable[tuple[int, int]], target_code: int) -> float:
        """:meth:`target_cost` on codes: cells are ``(tid, code)`` pairs."""
        return sum(self.weight(tid, attribute) * self.code_distance(column, code, target_code)
                   for tid, code in cells)

    def cheapest_target_code(self, attribute: str, column: Column,
                             cells: list[tuple[int, int]],
                             candidates: Iterable[int] | None = None) -> tuple[int, float]:
        """Code-level :meth:`cheapest_target` over one column's cells.

        The default candidate pool is the distinct current codes of the
        cells, deduplicated by their per-code string form in first
        occurrence order — exactly the pool (and tie-break order) the
        value-level path builds, so both faces of the model pick the same
        target at the same cost.
        """
        if not cells:
            raise ValueError("cheapest_target_code needs at least one cell")
        pool = list(candidates) if candidates is not None else []
        if not pool:
            strings = column.strings
            seen: set[str | None] = set()
            for _, code in cells:
                key = strings[code] if code != NULL_CODE else None
                if key not in seen:
                    seen.add(key)
                    pool.append(code)
        best_code, best_cost = NULL_CODE, float("inf")
        for candidate in pool:
            cost = self.code_target_cost(attribute, column, cells, candidate)
            if cost < best_cost:
                best_code, best_cost = candidate, cost
        return best_code, best_cost
