"""The repair cost model.

Following Cong et al., the cost of changing the value of cell ``(t, A)``
from ``v`` to ``v'`` is ``w(t, A) · dist(v, v')`` where ``w`` is a
per-cell confidence weight (1.0 by default — the user trusts every cell
equally) and ``dist`` is a normalized distance in ``[0, 1]`` (here:
normalized edit distance).  The cost of a repair is the sum over all
changed cells; BatchRepair picks target values that minimize this sum.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

from repro.matching.similarity import normalized_edit_distance
from repro.relational.types import is_null


class CostModel:
    """Per-cell weights plus a value-distance function."""

    def __init__(self, default_weight: float = 1.0,
                 distance: Callable[[Any, Any], float] | None = None) -> None:
        if default_weight < 0:
            raise ValueError("default_weight must be non-negative")
        self._default_weight = default_weight
        self._weights: dict[tuple[int, str], float] = {}
        self._distance = distance or normalized_edit_distance

    # -- weights ------------------------------------------------------------

    def set_weight(self, tid: int, attribute: str, weight: float) -> None:
        """Set the confidence weight of one cell (higher = more trusted)."""
        if weight < 0:
            raise ValueError("weights must be non-negative")
        self._weights[(tid, attribute.lower())] = weight

    def set_weights(self, weights: Mapping[tuple[int, str], float]) -> None:
        """Bulk version of :meth:`set_weight`."""
        for (tid, attribute), weight in weights.items():
            self.set_weight(tid, attribute, weight)

    def weight(self, tid: int, attribute: str) -> float:
        """Confidence weight of cell ``(tid, attribute)``."""
        return self._weights.get((tid, attribute.lower()), self._default_weight)

    # -- costs ---------------------------------------------------------------

    def distance(self, old_value: Any, new_value: Any) -> float:
        """Distance in [0, 1] between two values (0 when equal)."""
        if is_null(old_value) and is_null(new_value):
            return 0.0
        return self._distance(old_value, new_value)

    def change_cost(self, tid: int, attribute: str, old_value: Any, new_value: Any) -> float:
        """Cost of changing one cell."""
        return self.weight(tid, attribute) * self.distance(old_value, new_value)

    def target_cost(self, cells: Iterable[tuple[int, str, Any]], target: Any) -> float:
        """Cost of moving every cell ``(tid, attribute, current)`` to *target*."""
        return sum(self.change_cost(tid, attribute, current, target)
                   for tid, attribute, current in cells)

    def cheapest_target(self, cells: list[tuple[int, str, Any]],
                        candidates: Iterable[Any] | None = None) -> tuple[Any, float]:
        """The value minimizing :meth:`target_cost` over *candidates*.

        When *candidates* is omitted the current values of the cells are
        used (the optimal target of the weighted-majority resolution).
        """
        if not cells:
            raise ValueError("cheapest_target needs at least one cell")
        pool = list(candidates) if candidates is not None else []
        if not pool:
            seen = set()
            for _, _, value in cells:
                key = str(value) if not is_null(value) else None
                if key not in seen:
                    seen.add(key)
                    pool.append(value)
        best_value, best_cost = None, float("inf")
        for candidate in pool:
            cost = self.target_cost(cells, candidate)
            if cost < best_cost:
                best_value, best_cost = candidate, cost
        return best_value, best_cost
