"""Equivalence classes of cells — the core data structure of BatchRepair.

Cong et al.'s repair algorithm never assigns values to individual cells
directly.  Instead it maintains *equivalence classes* of cells; all cells
in one class must receive the same value in the final repair.  Resolving a
variable-CFD violation merges the RHS cells of the conflicting tuples into
one class; resolving a constant-CFD violation pins the class of the
offending cell to the pattern's constant.  Only at the end is each class
assigned its cheapest target value and written back to the relation.

The structure is a union–find with per-class metadata (a pinned target, if
any).  Two concrete variants share the machinery:

* :class:`EquivalenceClasses` — the historical value-level structure over
  ``(tid, attribute name)`` cells with constants as pinned targets.
  Attribute names are normalised (lower-cased) **once at the API
  boundary**; every cell stored internally is already canonical, so the
  union–find loops never re-normalise.
* :class:`CodeEquivalenceClasses` — the dictionary-coded structure the
  columnar repair path uses: cells are ``(tid, column position)`` pairs
  and pinned targets are dictionary *codes* of the owning column.  No
  normalisation is needed at all; comparisons are integer comparisons.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.errors import RepairError


Cell = tuple[int, str]

CodeCell = tuple[int, int]
"""A cell addressed by ``(tid, column position)`` in the columnar path."""


class _UnionFind:
    """Union–find over canonical cells with an optional pinned target per class."""

    def __init__(self) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._rank: dict[Hashable, int] = {}
        self._pinned: dict[Hashable, Any] = {}  # root -> pinned target

    # -- subclass hooks -----------------------------------------------------

    @staticmethod
    def _canonical(cell: Hashable) -> Hashable:
        """Normalise a caller-supplied cell (identity by default)."""
        return cell

    @staticmethod
    def _targets_conflict(existing: Any, new: Any) -> bool:
        """Whether two pinned targets demand different repair values."""
        return existing != new

    # -- union-find ---------------------------------------------------------

    def add(self, cell: Hashable) -> Hashable:
        """Register a cell (idempotent); returns its representative."""
        return self._find(self._canonical(cell))

    def find(self, cell: Hashable) -> Hashable:
        """Representative of the class containing *cell* (with path compression)."""
        return self._find(self._canonical(cell))

    def _find(self, cell: Hashable) -> Hashable:
        """:meth:`find` for cells that are already canonical (internal loops)."""
        parent = self._parent
        if cell not in parent:
            parent[cell] = cell
            self._rank[cell] = 0
            return cell
        root = cell
        while parent[root] != root:
            root = parent[root]
        while parent[cell] != root:
            parent[cell], cell = root, parent[cell]
        return root

    def union(self, first: Hashable, second: Hashable) -> Hashable:
        """Merge the classes of the two cells; returns the new representative.

        Raises :class:`~repro.errors.RepairError` if both classes are pinned
        to conflicting targets (the conflict the repair algorithm must then
        resolve by editing an LHS attribute instead).
        """
        root_a, root_b = self.find(first), self.find(second)
        if root_a == root_b:
            return root_a
        pin_a, pin_b = self._pinned.get(root_a), self._pinned.get(root_b)
        if pin_a is not None and pin_b is not None and self._targets_conflict(pin_a, pin_b):
            raise RepairError(
                f"cannot merge classes pinned to different targets "
                f"({pin_a!r} vs {pin_b!r})")
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        surviving_pin = pin_a if pin_a is not None else pin_b
        self._pinned.pop(root_b, None)
        if surviving_pin is not None:
            self._pinned[root_a] = surviving_pin
        return root_a

    def same_class(self, first: Hashable, second: Hashable) -> bool:
        """Whether the two cells are in the same class."""
        return self.find(first) == self.find(second)

    # -- pinning --------------------------------------------------------------

    def pin(self, cell: Hashable, value: Any) -> None:
        """Pin the class of *cell* to a target value.

        Pinning an already-pinned class to a conflicting target raises
        :class:`~repro.errors.RepairError`.
        """
        root = self.find(cell)
        existing = self._pinned.get(root)
        if existing is not None and self._targets_conflict(existing, value):
            raise RepairError(
                f"class of {cell} already pinned to {existing!r}, cannot repin to {value!r}")
        self._pinned[root] = value

    def pinned_value(self, cell: Hashable) -> Any | None:
        """The target the class of *cell* is pinned to, if any."""
        return self._pinned.get(self.find(cell))

    def is_pinned(self, cell: Hashable) -> bool:
        return self.pinned_value(cell) is not None

    # -- enumeration -------------------------------------------------------------

    def cells(self) -> list[Hashable]:
        """All registered cells (canonical form)."""
        return list(self._parent.keys())

    def members(self, cell: Hashable) -> list[Hashable]:
        """All cells in the same class as *cell*."""
        root = self.find(cell)
        return [c for c in self._parent if self._find(c) == root]

    def classes(self) -> dict[Hashable, list[Hashable]]:
        """Mapping representative → member cells."""
        result: dict[Hashable, list[Hashable]] = {}
        for cell in self._parent:
            result.setdefault(self._find(cell), []).append(cell)
        return result

    def class_count(self) -> int:
        """Number of distinct classes."""
        return len({self._find(cell) for cell in self._parent})

    def __len__(self) -> int:
        return len(self._parent)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({len(self._parent)} cells, "
                f"{self.class_count()} classes)")


class EquivalenceClasses(_UnionFind):
    """Union–find over ``(tid, attribute)`` cells pinned to constant values.

    Attribute names are case-insensitive: they are lower-cased once when a
    cell enters through the public API and kept canonical internally.
    Pinned constants conflict when their string forms differ (the same
    ``str``-level equality the repair algorithm applies to cell values).
    """

    @staticmethod
    def _canonical(cell: Cell) -> Cell:
        return (cell[0], cell[1].lower())

    @staticmethod
    def _targets_conflict(existing: Any, new: Any) -> bool:
        return str(existing) != str(new)


class CodeEquivalenceClasses(_UnionFind):
    """Union–find over ``(tid, column position)`` cells pinned to dictionary codes.

    The columnar repair path registers cells by schema position and pins
    classes to *codes* of the owning column's dictionary — candidate
    targets stay encoded until a repair value is actually written back.
    Cells are canonical by construction (two small ints), so no
    normalisation happens anywhere.  Distinct codes are treated as
    conflicting targets; callers that consider two codes equivalent (e.g.
    equal under the column's per-code string cache) must compare through
    that cache before pinning.
    """
