"""Equivalence classes of cells — the core data structure of BatchRepair.

Cong et al.'s repair algorithm never assigns values to individual cells
directly.  Instead it maintains *equivalence classes* of cells ``(tid,
attribute)``; all cells in one class must receive the same value in the
final repair.  Resolving a variable-CFD violation merges the RHS cells of
the conflicting tuples into one class; resolving a constant-CFD violation
pins the class of the offending cell to the pattern's constant.  Only at
the end is each class assigned its cheapest target value and written back
to the relation.

The structure is a union–find with per-class metadata (a pinned constant,
if any).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import RepairError


Cell = tuple[int, str]


class EquivalenceClasses:
    """Union–find over cells with an optional pinned target per class."""

    def __init__(self) -> None:
        self._parent: dict[Cell, Cell] = {}
        self._rank: dict[Cell, int] = {}
        self._pinned: dict[Cell, Any] = {}  # root -> pinned constant

    # -- union-find ---------------------------------------------------------

    def add(self, cell: Cell) -> Cell:
        """Register a cell (idempotent); returns its representative."""
        cell = (cell[0], cell[1].lower())
        if cell not in self._parent:
            self._parent[cell] = cell
            self._rank[cell] = 0
        return self.find(cell)

    def find(self, cell: Cell) -> Cell:
        """Representative of the class containing *cell* (with path compression)."""
        cell = (cell[0], cell[1].lower())
        if cell not in self._parent:
            return self.add(cell)
        root = cell
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[cell] != root:
            self._parent[cell], cell = root, self._parent[cell]
        return root

    def union(self, first: Cell, second: Cell) -> Cell:
        """Merge the classes of the two cells; returns the new representative.

        Raises :class:`~repro.errors.RepairError` if both classes are pinned
        to different constants (the conflict the repair algorithm must then
        resolve by editing an LHS attribute instead).
        """
        root_a, root_b = self.find(first), self.find(second)
        if root_a == root_b:
            return root_a
        pin_a, pin_b = self._pinned.get(root_a), self._pinned.get(root_b)
        if pin_a is not None and pin_b is not None and str(pin_a) != str(pin_b):
            raise RepairError(
                f"cannot merge classes pinned to different constants "
                f"({pin_a!r} vs {pin_b!r})")
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        surviving_pin = pin_a if pin_a is not None else pin_b
        self._pinned.pop(root_b, None)
        if surviving_pin is not None:
            self._pinned[root_a] = surviving_pin
        return root_a

    def same_class(self, first: Cell, second: Cell) -> bool:
        """Whether the two cells are in the same class."""
        return self.find(first) == self.find(second)

    # -- pinning --------------------------------------------------------------

    def pin(self, cell: Cell, value: Any) -> None:
        """Pin the class of *cell* to a constant target value.

        Pinning an already-pinned class to a different constant raises
        :class:`~repro.errors.RepairError`.
        """
        root = self.find(cell)
        existing = self._pinned.get(root)
        if existing is not None and str(existing) != str(value):
            raise RepairError(
                f"class of {cell} already pinned to {existing!r}, cannot repin to {value!r}")
        self._pinned[root] = value

    def pinned_value(self, cell: Cell) -> Any | None:
        """The constant the class of *cell* is pinned to, if any."""
        return self._pinned.get(self.find(cell))

    def is_pinned(self, cell: Cell) -> bool:
        return self.pinned_value(cell) is not None

    # -- enumeration -------------------------------------------------------------

    def cells(self) -> list[Cell]:
        """All registered cells."""
        return list(self._parent.keys())

    def members(self, cell: Cell) -> list[Cell]:
        """All cells in the same class as *cell*."""
        root = self.find(cell)
        return [c for c in self._parent if self.find(c) == root]

    def classes(self) -> dict[Cell, list[Cell]]:
        """Mapping representative → member cells."""
        result: dict[Cell, list[Cell]] = {}
        for cell in self._parent:
            result.setdefault(self.find(cell), []).append(cell)
        return result

    def class_count(self) -> int:
        """Number of distinct classes."""
        return len({self.find(cell) for cell in self._parent})

    def __len__(self) -> int:
        return len(self._parent)

    def __repr__(self) -> str:
        return f"EquivalenceClasses({len(self._parent)} cells, {self.class_count()} classes)"
