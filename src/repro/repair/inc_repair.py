"""IncRepair: repair newly inserted tuples against an already-clean base.

Cong et al. observe that in practice a database is cleaned once and then
receives batches of new tuples; re-running BatchRepair on the whole
database for every batch is wasteful.  IncRepair instead repairs *only the
delta*: the base relation is trusted (assumed to satisfy the CFDs) and
only the new tuples may be modified.

For each new tuple and each CFD:

* if the tuple violates a constant pattern, the pattern's RHS constants
  are written into it;
* if the tuple disagrees with the base group sharing its LHS values, its
  variable RHS attributes are overwritten with the base group's values;
* if several new tuples form a violating group of their own (no base
  tuple with that LHS key), they are equalized to the cost-minimal value
  among themselves.

A small number of passes handles cascades (a repaired RHS attribute can be
another CFD's LHS attribute).  Experiment E7 compares IncRepair with
running BatchRepair from scratch as the delta grows.

Like :class:`~repro.repair.batch_repair.BatchRepair`, the default path
runs on dictionary codes: pattern scope checks are compiled code tests,
agreement with pattern constants and base-group values is decided through
the per-code string caches, and delta-group equalization uses the cost
model's code-level face.  ``use_columns=False`` keeps the original
row/string path (value-keyed index, per-row ``str`` compares) with
byte-identical results; ``engine=``/``workers=`` route the final
delta-cleanliness detection through the chunked execution engine.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.constraints.cfd import CFD, merge_cfds
from repro.constraints.tableau import PatternTuple
from repro.detection.batch import BatchCFDDetector
from repro.relational.columns import NULL_CODE
from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.types import is_null
from repro.repair.batch_repair import CellChange, Repair, RepairPlan
from repro.repair.cost import CostModel


class IncRepair:
    """Repairs a batch of new tuples against a clean base relation."""

    def __init__(self, relation: Relation, cfds: Sequence[CFD],
                 cost_model: CostModel | None = None, max_passes: int = 5,
                 use_columns: bool = True,
                 engine: str | None = None, workers: int | None = None) -> None:
        for cfd in cfds:
            cfd.validate_against(relation)
        self._relation = relation
        self._cfds = merge_cfds(cfds)
        self._cost_model = cost_model or CostModel()
        self._max_passes = max_passes
        self._use_columns = use_columns
        self._engine_name = engine
        self._workers = workers

    def repair_delta(self, delta_tids: Iterable[int]) -> Repair:
        """Repair the tuples *delta_tids* in place (only those may change)."""
        delta = [tid for tid in delta_tids if tid in self._relation]
        delta_set = set(delta)
        originals = {tid: dict(self._relation.tuple(tid).as_dict()) for tid in delta}

        converged = False
        passes = 0
        plans: dict[tuple[CFD, PatternTuple], RepairPlan] = {}
        for _ in range(self._max_passes):
            passes += 1
            changed = False
            for cfd in self._cfds:
                if self._use_columns:
                    changed |= self._repair_cfd_codes(cfd, delta, delta_set, plans)
                else:
                    changed |= self._repair_cfd(cfd, delta, delta_set)
            if not changed:
                converged = True
                break

        changes = self._collect_changes(originals)
        cost = sum(self._cost_model.change_cost(c.tid, c.attribute, c.old_value, c.new_value)
                   for c in changes)
        if not converged:
            converged = self._delta_clean(delta_set)
        return Repair(relation=self._relation, changes=changes, cost=cost,
                      passes=passes, converged=converged)

    # -- per-CFD repair on codes ------------------------------------------------

    def _repair_cfd_codes(self, cfd: CFD, delta: list[int], delta_set: set[int],
                          plans: dict[tuple[CFD, PatternTuple], RepairPlan]) -> bool:
        changed = False
        relation = self._relation
        index = HashIndex(relation, list(cfd.lhs))
        for pattern in cfd.tableau:
            key = (cfd, pattern)
            plan = plans.get(key)
            if plan is None:
                plan = RepairPlan(cfd, pattern, relation)
                plans[key] = plan

            for tid in delta:
                if not plan.lhs_matches(tid):
                    continue

                # constant part: write the pattern's RHS constants
                for attribute, _position, column, target, target_str, _code in plan.constant_rhs:
                    if column.strings[column.codes[tid]] != target_str:
                        relation.update(tid, attribute, target)
                        changed = True

                if not plan.variable_rhs:
                    continue

                key_codes = plan.key_codes(tid)
                if NULL_CODE in key_codes:
                    continue
                group = index.bucket_view(key_codes)
                base_tids = sorted(t for t in group if t not in delta_set)
                if base_tids:
                    # the base is clean: adopt its RHS values
                    base_tid = base_tids[0]
                    if not plan.lhs_matches(base_tid):
                        continue
                    for attribute, _position, column in plan.variable_rhs:
                        codes, strings = column.codes, column.strings
                        if strings[codes[tid]] != strings[codes[base_tid]]:
                            relation.update(tid, attribute, column.value_of(codes[base_tid]))
                            changed = True
                else:
                    changed |= self._equalize_delta_group_codes(
                        plan, sorted(t for t in group if t != tid) + [tid])
        return changed

    def _equalize_delta_group_codes(self, plan: RepairPlan, tids: list[int]) -> bool:
        relation = self._relation
        live = [tid for tid in tids
                if tid in relation and plan.lhs_matches(tid)]
        if len(live) < 2:
            return False
        changed = False
        for attribute, _position, column in plan.variable_rhs:
            codes, strings = column.codes, column.strings
            cells = [(tid, codes[tid]) for tid in live]
            if len({strings[code] for _, code in cells}) <= 1:
                continue
            target_code, _ = self._cost_model.cheapest_target_code(attribute, column, cells)
            target_str = strings[target_code]
            target_value = column.value_of(target_code)
            for tid, code in cells:
                if strings[code] != target_str:
                    relation.update(tid, attribute, target_value)
                    changed = True
        return changed

    # -- per-CFD repair on rows (the retained legacy path) -----------------------

    def _repair_cfd(self, cfd: CFD, delta: list[int], delta_set: set[int]) -> bool:
        changed = False
        index = HashIndex(self._relation, list(cfd.lhs), use_columns=False)
        for pattern in cfd.tableau:
            constant_rhs = [a for a in cfd.rhs if pattern.is_constant_on(a)]
            variable_rhs = [a for a in cfd.rhs if not pattern.is_constant_on(a)]

            for tid in delta:
                row = self._relation.tuple(tid)
                if not pattern.matches(row, cfd.lhs):
                    continue

                # constant part: write the pattern's RHS constants
                for attribute in constant_rhs:
                    target = pattern.constant(attribute)
                    if str(row[attribute]) != str(target):
                        self._relation.update(tid, attribute, target)
                        changed = True
                        row = self._relation.tuple(tid)

                if not variable_rhs:
                    continue

                key = index.key_of(row)
                if any(is_null(value) for value in key):
                    continue
                group = index.bucket_view(key)
                base_tids = sorted(t for t in group if t not in delta_set)
                if base_tids:
                    # the base is clean: adopt its RHS values
                    base_row = self._relation.tuple(base_tids[0])
                    if not pattern.matches(base_row, cfd.lhs):
                        continue
                    for attribute in variable_rhs:
                        target = base_row[attribute]
                        if str(row[attribute]) != str(target):
                            self._relation.update(tid, attribute, target)
                            changed = True
                            row = self._relation.tuple(tid)
                else:
                    changed |= self._equalize_delta_group(
                        cfd, pattern, variable_rhs, sorted(t for t in group if t != tid) + [tid])
        return changed

    def _equalize_delta_group(self, cfd: CFD, pattern, variable_rhs: list[str],
                              tids: list[int]) -> bool:
        live = [tid for tid in tids
                if tid in self._relation
                and pattern.matches(self._relation.tuple(tid), cfd.lhs)]
        if len(live) < 2:
            return False
        changed = False
        for attribute in variable_rhs:
            cells = [(tid, attribute, self._relation.value(tid, attribute)) for tid in live]
            if len({str(v) for _, _, v in cells}) <= 1:
                continue
            target, _ = self._cost_model.cheapest_target(cells)
            for tid, _, current in cells:
                if str(current) != str(target):
                    self._relation.update(tid, attribute, target)
                    changed = True
        return changed

    # -- bookkeeping ----------------------------------------------------------------

    def _collect_changes(self, originals: dict[int, dict[str, Any]]) -> list[CellChange]:
        changes = []
        for tid, original in originals.items():
            if tid not in self._relation:
                continue
            current = self._relation.tuple(tid)
            for attribute, old_value in original.items():
                new_value = current[attribute]
                if str(old_value) != str(new_value):
                    changes.append(CellChange(tid, attribute.lower(), old_value, new_value))
        return changes

    def _delta_clean(self, delta_set: set[int]) -> bool:
        report = BatchCFDDetector(self._relation, self._cfds,
                                  use_columns=self._use_columns,
                                  engine=self._engine_name,
                                  workers=self._workers).detect()
        return not (report.violating_tids() & delta_set)
