"""IncRepair: repair newly inserted tuples against an already-clean base.

Cong et al. observe that in practice a database is cleaned once and then
receives batches of new tuples; re-running BatchRepair on the whole
database for every batch is wasteful.  IncRepair instead repairs *only the
delta*: the base relation is trusted (assumed to satisfy the CFDs) and
only the new tuples may be modified.

For each new tuple and each CFD:

* if the tuple violates a constant pattern, the pattern's RHS constants
  are written into it;
* if the tuple disagrees with the base group sharing its LHS values, its
  variable RHS attributes are overwritten with the base group's values;
* if several new tuples form a violating group of their own (no base
  tuple with that LHS key), they are equalized to the cost-minimal value
  among themselves.

A small number of passes handles cascades (a repaired RHS attribute can be
another CFD's LHS attribute).  Experiment E7 compares IncRepair with
running BatchRepair from scratch as the delta grows.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Sequence

from repro.constraints.cfd import CFD, merge_cfds
from repro.detection.batch import BatchCFDDetector
from repro.errors import RepairError
from repro.relational.columns import NULL_CODE
from repro.relational.index import HashIndex
from repro.relational.relation import Relation
from repro.relational.types import is_null
from repro.repair.batch_repair import CellChange, Repair
from repro.repair.cost import CostModel


class IncRepair:
    """Repairs a batch of new tuples against a clean base relation."""

    def __init__(self, relation: Relation, cfds: Sequence[CFD],
                 cost_model: CostModel | None = None, max_passes: int = 5) -> None:
        for cfd in cfds:
            cfd.validate_against(relation)
        self._relation = relation
        self._cfds = merge_cfds(cfds)
        self._cost_model = cost_model or CostModel()
        self._max_passes = max_passes

    def repair_delta(self, delta_tids: Iterable[int]) -> Repair:
        """Repair the tuples *delta_tids* in place (only those may change)."""
        delta = [tid for tid in delta_tids if tid in self._relation]
        delta_set = set(delta)
        originals = {tid: dict(self._relation.tuple(tid).as_dict()) for tid in delta}

        converged = False
        passes = 0
        for _ in range(self._max_passes):
            passes += 1
            changed = False
            for cfd in self._cfds:
                changed |= self._repair_cfd(cfd, delta, delta_set)
            if not changed:
                converged = True
                break

        changes = self._collect_changes(originals)
        cost = sum(self._cost_model.change_cost(c.tid, c.attribute, c.old_value, c.new_value)
                   for c in changes)
        if not converged:
            converged = self._delta_clean(delta_set)
        return Repair(relation=self._relation, changes=changes, cost=cost,
                      passes=passes, converged=converged)

    # -- per-CFD repair ---------------------------------------------------------

    def _repair_cfd(self, cfd: CFD, delta: list[int], delta_set: set[int]) -> bool:
        changed = False
        index = HashIndex(self._relation, list(cfd.lhs))
        for pattern in cfd.tableau:
            constant_rhs = [a for a in cfd.rhs if pattern.is_constant_on(a)]
            variable_rhs = [a for a in cfd.rhs if not pattern.is_constant_on(a)]

            for tid in delta:
                row = self._relation.tuple(tid)
                if not pattern.matches(row, cfd.lhs):
                    continue

                # constant part: write the pattern's RHS constants
                for attribute in constant_rhs:
                    target = pattern.constant(attribute)
                    if str(row[attribute]) != str(target):
                        self._relation.update(tid, attribute, target)
                        changed = True
                        row = self._relation.tuple(tid)

                if not variable_rhs:
                    continue

                key = index.key_of(row)
                if any(code == NULL_CODE for code in key):
                    continue
                group = index.bucket_view(key)
                base_tids = sorted(t for t in group if t not in delta_set)
                if base_tids:
                    # the base is clean: adopt its RHS values
                    base_row = self._relation.tuple(base_tids[0])
                    if not pattern.matches(base_row, cfd.lhs):
                        continue
                    for attribute in variable_rhs:
                        target = base_row[attribute]
                        if str(row[attribute]) != str(target):
                            self._relation.update(tid, attribute, target)
                            changed = True
                            row = self._relation.tuple(tid)
                else:
                    changed |= self._equalize_delta_group(
                        cfd, pattern, variable_rhs, sorted(t for t in group if t != tid) + [tid])
        return changed

    def _equalize_delta_group(self, cfd: CFD, pattern, variable_rhs: list[str],
                              tids: list[int]) -> bool:
        live = [tid for tid in tids
                if tid in self._relation
                and pattern.matches(self._relation.tuple(tid), cfd.lhs)]
        if len(live) < 2:
            return False
        changed = False
        for attribute in variable_rhs:
            cells = [(tid, attribute, self._relation.value(tid, attribute)) for tid in live]
            if len({str(v) for _, _, v in cells}) <= 1:
                continue
            target, _ = self._cost_model.cheapest_target(cells)
            for tid, _, current in cells:
                if str(current) != str(target):
                    self._relation.update(tid, attribute, target)
                    changed = True
        return changed

    # -- bookkeeping ----------------------------------------------------------------

    def _collect_changes(self, originals: dict[int, dict[str, Any]]) -> list[CellChange]:
        changes = []
        for tid, original in originals.items():
            if tid not in self._relation:
                continue
            current = self._relation.tuple(tid)
            for attribute, old_value in original.items():
                new_value = current[attribute]
                if str(old_value) != str(new_value):
                    changes.append(CellChange(tid, attribute.lower(), old_value, new_value))
        return changes

    def _delta_clean(self, delta_set: set[int]) -> bool:
        report = BatchCFDDetector(self._relation, self._cfds).detect()
        return not (report.violating_tids() & delta_set)
