"""Repair-quality metrics: precision and recall against a known clean relation.

The evaluation protocol of Cong et al. (reproduced by experiment E5):
start from a clean relation, inject noise at a controlled rate to obtain
the dirty relation, repair the dirty relation, then compare cell by cell:

* an **error** is a cell whose dirty value differs from the clean value;
* a **change** is a cell whose repaired value differs from the dirty value;
* a change is **correct** when the repaired value equals the clean value.

``precision = correct changes / changes`` (how much of what the repair
touched was right) and ``recall = corrected errors / errors`` (how many of
the injected errors were actually fixed); ``f1`` combines the two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RepairError
from repro.relational.relation import Relation


@dataclass
class RepairQuality:
    """Cell-level accuracy of a repair."""

    errors: int
    changes: int
    correct_changes: int
    corrected_errors: int

    @property
    def precision(self) -> float:
        """Fraction of changed cells whose new value equals the clean value."""
        return self.correct_changes / self.changes if self.changes else 1.0

    @property
    def recall(self) -> float:
        """Fraction of injected errors that the repair fixed."""
        return self.corrected_errors / self.errors if self.errors else 1.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "errors": self.errors,
            "changes": self.changes,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }

    def __repr__(self) -> str:
        return (f"RepairQuality(errors={self.errors}, changes={self.changes}, "
                f"precision={self.precision:.3f}, recall={self.recall:.3f}, f1={self.f1:.3f})")


def evaluate_repair(clean: Relation, dirty: Relation, repaired: Relation) -> RepairQuality:
    """Compare *repaired* against *clean*, treating *dirty* as the starting point.

    The three relations must have the same schema and the same tuple ids
    (as produced by the noise injector and the repair, which both preserve
    tids).
    """
    if not clean.schema.equivalent(dirty.schema) or not clean.schema.equivalent(repaired.schema):
        raise RepairError("evaluate_repair expects three relations over the same schema")

    errors = changes = correct_changes = corrected_errors = 0
    attributes = clean.schema.attribute_names
    for tid in clean.tids():
        if tid not in dirty or tid not in repaired:
            continue
        clean_row = clean.tuple(tid)
        dirty_row = dirty.tuple(tid)
        repaired_row = repaired.tuple(tid)
        for attribute in attributes:
            clean_value = str(clean_row[attribute])
            dirty_value = str(dirty_row[attribute])
            repaired_value = str(repaired_row[attribute])
            is_error = dirty_value != clean_value
            is_change = repaired_value != dirty_value
            if is_error:
                errors += 1
                if repaired_value == clean_value:
                    corrected_errors += 1
            if is_change:
                changes += 1
                if repaired_value == clean_value:
                    correct_changes += 1
    return RepairQuality(errors=errors, changes=changes,
                         correct_changes=correct_changes, corrected_errors=corrected_errors)
