"""Semandaq: the prototype data-quality system of the tutorial (§5).

Semandaq demonstrates that constraints can drive a practical cleaning
tool: the user registers data and CFDs/CINDs, the system detects
violations using SQL-based techniques, proposes a minimal-cost candidate
repair, and lets the user inspect the repair, confirm or override
individual cells, and re-repair taking those manual decisions into
account.

* :class:`~repro.semandaq.session.SemandaqSession` — the interactive
  workflow (register → detect → repair → edit → re-repair);
* :mod:`repro.semandaq.report` — violation and repair reports;
* :mod:`repro.semandaq.cli` — a small command-line front end
  (``python -m repro.semandaq.cli data.csv constraints.txt``).
"""

from repro.semandaq.session import SemandaqSession
from repro.semandaq.report import repair_report, violation_report

__all__ = ["SemandaqSession", "violation_report", "repair_report"]
