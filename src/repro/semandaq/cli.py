"""Command-line front end for Semandaq.

Usage::

    python -m repro.semandaq.cli DATA.csv [CONSTRAINTS.txt] [--repair OUT.csv]
        [--discover] [--min-support N] [--max-lhs-size N] [--sql QUERY]
        [--explain] [--stats OUT.json]
        [--engine {sequential,serial,parallel}] [--workers N]
        [--task-timeout SECONDS] [--task-retries N]

``DATA.csv`` is loaded as a relation named after the file; ``CONSTRAINTS.txt``
contains one CFD per line in the textual syntax of
:mod:`repro.constraints.parse` (blank lines and ``#`` comments allowed).
The tool prints the violation report; with ``--repair`` it also computes a
repair and writes the repaired relation to ``OUT.csv``.  With
``--discover`` the constraints file may be omitted: CFDs are discovered
from the data itself (CFDMiner-style profiling), printed, and registered
alongside any file-provided constraints before detection runs.  With
``--sql`` the constraints file may also be omitted: the query runs
against the loaded relation through the session's SQL engine and the
result table is printed (detection/repair still run when constraints are
given or discovered).
``--engine`` / ``--workers`` route detection, discovery partitions,
every repair pass's inner detection loop, and ``--sql``'s code-native
scans through the chunked execution engine (:mod:`repro.engine`);
reports, discovered CFDs, repairs and query results are identical, only
execution changes.  The ``REPRO_ENGINE`` / ``REPRO_WORKERS`` environment
variables provide the same defaults process-wide.
``--task-timeout`` / ``--task-retries`` tune the parallel engine's
supervision: how long one dispatched task may run before the worker is
declared hung and the pool rebuilt, and how often a failed task is
retried before degrading to in-process execution (environment defaults:
``REPRO_TASK_TIMEOUT`` / ``REPRO_TASK_RETRIES``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import obs
from repro.engine.executor import ENGINES
from repro.relational.csvio import read_csv, relation_to_csv
from repro.semandaq.session import SemandaqSession


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="semandaq",
        description="Detect and repair CFD violations in a CSV file.")
    parser.add_argument("data", help="CSV file containing the relation to clean")
    parser.add_argument("constraints", nargs="?", default=None,
                        help="text file with one CFD per line "
                             "(optional with --discover)")
    parser.add_argument("--repair", metavar="OUT",
                        help="compute a repair and write the repaired relation to OUT")
    parser.add_argument("--relation-name", default=None,
                        help="relation name used in the CFDs (default: the CSV file stem)")
    parser.add_argument("--discover", action="store_true",
                        help="discover CFDs from the data (profiling), print them, "
                             "and register them for detection/repair")
    parser.add_argument("--min-support", type=int, default=3, metavar="N",
                        help="minimum support for discovered CFDs (default: 3)")
    parser.add_argument("--max-lhs-size", type=int, default=2, metavar="N",
                        help="maximum LHS size for discovered CFDs (default: 2)")
    parser.add_argument("--sql", metavar="QUERY", default=None,
                        help="run a SQL query against the loaded relation and "
                             "print the result (honours --engine/--workers; "
                             "makes the constraints file optional)")
    parser.add_argument("--explain", action="store_true",
                        help="with --sql: also print the query plan report "
                             "(code-native scan / hash join / row path, why "
                             "the faster paths were rejected, push-down "
                             "pruning per conjunct, join shape)")
    parser.add_argument("--stats", metavar="OUT", default=None,
                        help="enable instrumentation (as REPRO_OBS=1 would) and "
                             "write the metrics snapshot as JSON to OUT after "
                             "the run ('-' prints to stdout)")
    parser.add_argument("--engine", choices=ENGINES, default=None,
                        help="execution engine for detection, discovery and repair: "
                             "'sequential' (one pass, the default), "
                             "'serial' (chunked, in-process) or 'parallel' "
                             "(chunked, multiprocessing); results are identical")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes for the parallel engine "
                             "(default: the CPU count; implies --engine parallel "
                             "when N > 1)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-task supervision timeout of the parallel "
                             "engine; a task running longer is declared hung, "
                             "the worker pool is rebuilt and the task retried "
                             "(0 disables; default: REPRO_TASK_TIMEOUT or 300)")
    parser.add_argument("--task-retries", type=int, default=None, metavar="N",
                        help="how many times a failed or timed-out task is "
                             "re-dispatched before running in-process "
                             "(default: REPRO_TASK_RETRIES or 2)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.constraints is None and not arguments.discover:
        if arguments.sql is None:
            parser.error("a constraints file is required unless --discover or --sql is given")
        if arguments.repair:
            parser.error("--repair requires a constraints file or --discover")
    if arguments.explain and arguments.sql is None:
        parser.error("--explain requires --sql")
    if arguments.stats is not None:
        obs.enable()
    data_path = Path(arguments.data)
    relation_name = arguments.relation_name or data_path.stem
    relation = read_csv(data_path, relation_name)

    session = SemandaqSession(relation, engine=arguments.engine,
                              workers=arguments.workers,
                              task_timeout=arguments.task_timeout,
                              task_retries=arguments.task_retries)

    if arguments.sql is not None:
        if arguments.explain:
            result, plan_report = session.sql(arguments.sql, explain=True)
        else:
            result = session.sql(arguments.sql)
            plan_report = None
        print(result.pretty())
        print(f"({len(result)} row(s))")
        if plan_report is not None:
            print(plan_report)
        if arguments.constraints is None and not arguments.discover:
            _write_stats(arguments, session)
            return 0  # pure query invocation: no detection/repair to run

    cfds = []
    if arguments.constraints is not None:
        constraints_text = Path(arguments.constraints).read_text(encoding="utf-8")
        cfds = session.register_cfds(constraints_text)
    if arguments.discover:
        discovered = session.discover_cfds(relation_name,
                                           min_support=arguments.min_support,
                                           max_lhs_size=arguments.max_lhs_size,
                                           register=True)
        print(f"discovered {len(discovered)} CFD(s) "
              f"(min support {arguments.min_support}):")
        for cfd in discovered:
            print(f"  {cfd!r}")
        cfds = cfds + discovered
    print(f"loaded {len(relation)} tuples and {len(cfds)} CFD(s)")

    consistency = session.check_consistency()
    if not consistency["satisfiable"]:
        print("warning: the CFD set is not satisfiable by any non-empty instance")

    if session.cfds:
        session.detect()
        print(session.report())
    else:
        print("no CFDs registered (nothing discovered); skipping detection")

    if arguments.repair:
        repair = session.apply_repair(relation_name)
        relation_to_csv(session.database.relation(relation_name), arguments.repair)
        print(f"wrote repaired relation ({len(repair.changes)} cells changed) "
              f"to {arguments.repair}")
    _write_stats(arguments, session)
    return 0


def _write_stats(arguments: argparse.Namespace, session: SemandaqSession) -> None:
    """Dump the metrics snapshot as JSON when --stats was given."""
    if arguments.stats is None:
        return
    text = json.dumps(session.metrics(), indent=2, sort_keys=True)
    if arguments.stats == "-":
        print(text)
    else:
        Path(arguments.stats).write_text(text + "\n", encoding="utf-8")
        print(f"wrote metrics snapshot to {arguments.stats}")


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
