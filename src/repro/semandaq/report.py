"""Human-readable violation and repair reports for Semandaq."""

from __future__ import annotations

from repro.constraints.violations import CFDViolation, ViolationReport
from repro.relational.database import Database
from repro.relational.types import value_repr
from repro.repair.batch_repair import Repair


def violation_report(report: ViolationReport, database: Database | None = None,
                     sample_size: int = 5) -> str:
    """Render a violation report: summary, per-constraint counts, sample violations."""
    lines = ["violations:", f"  {report.summary()}"]
    for constraint, count in sorted(report.count_by_constraint().items()):
        lines.append(f"  {count:6d} x {constraint}")
    samples = list(report.violations)[:sample_size]
    if samples:
        lines.append("  sample violations:")
    for violation in samples:
        if isinstance(violation, CFDViolation):
            kind = "single-tuple" if violation.is_single_tuple else f"group({violation.group_size})"
            lines.append(f"    [{kind}] tids {list(violation.tids)}")
            if database is not None and database.has_relation(violation.cfd.relation_name):
                relation = database.relation(violation.cfd.relation_name)
                for tid in violation.tids[:2]:
                    if tid in relation:
                        cells = ", ".join(
                            f"{a}={value_repr(relation.value(tid, a))}"
                            for a in violation.cfd.attributes())
                        lines.append(f"      t{tid}: {cells}")
        else:
            lines.append(f"    [inclusion] tid {violation.tid} of "
                         f"{violation.cind.lhs_relation} has no partner in "
                         f"{violation.cind.rhs_relation}")
    return "\n".join(lines)


def repair_report(repair: Repair, sample_size: int = 5) -> str:
    """Render a repair: summary plus a sample of the proposed cell changes."""
    lines = ["candidate repair:", f"  {repair.summary()}"]
    for change in repair.changes[:sample_size]:
        lines.append(
            f"    t{change.tid}.{change.attribute}: "
            f"{value_repr(change.old_value)} -> {value_repr(change.new_value)}")
    if len(repair.changes) > sample_size:
        lines.append(f"    ... ({len(repair.changes) - sample_size} more changes)")
    return "\n".join(lines)
