"""The Semandaq interactive cleaning session.

A session wraps a database, a set of constraints and the detection/repair
machinery and exposes the workflow of the demo paper:

1. :meth:`SemandaqSession.register_cfds` / :meth:`register_cinds` — declare
   the data semantics (textual syntax or constraint objects);
2. :meth:`detect` — find all violations (SQL-based detection for CFDs);
3. :meth:`propose_repair` — compute a candidate repair without touching
   the data;
4. :meth:`confirm_cell` / :meth:`override_cell` — the user inspects the
   proposal, locking cells they know to be correct or supplying the right
   value themselves (locked cells receive a very high weight so subsequent
   repairs will not change them);
5. :meth:`apply_repair` — apply the (re-computed) repair to the session's
   database;
6. :meth:`report` — a human-readable summary at any point.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro import obs
from repro.constraints.cfd import CFD
from repro.constraints.cind import CIND
from repro.constraints.parse import parse_cfd, parse_cfds, parse_cind
from repro.constraints.reasoning import is_satisfiable, pairwise_conflicts
from repro.constraints.violations import ViolationReport
from repro.detection.cfd_detect import CFDDetector, SQLCFDDetector
from repro.detection.cind_detect import CINDDetector
from repro.discovery.cfd_discovery import CFDDiscovery
from repro.errors import ReproError
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.sql.engine import SQLEngine
from repro.repair.batch_repair import BatchRepair, Repair
from repro.repair.cost import CostModel
from repro.semandaq.report import repair_report, violation_report

#: weight given to cells the user confirmed or overrode: effectively "do not touch".
LOCKED_WEIGHT = 10_000.0


class SemandaqSession:
    """An interactive constraint-based cleaning session over a database.

    ``engine=``/``workers=`` select the chunked execution engine for
    detection *and* repair (see :mod:`repro.engine`): when either is
    given, CFD detection switches from the SQL-generation path to the
    direct columnar detector running on the engine, CIND detection runs
    its chunked anti-join, :meth:`propose_repair` / :meth:`apply_repair`
    route every repair pass's inner detection loop through the same
    engine, and :meth:`sql` fans its code-native scans across it.
    Without them everything behaves as before
    (the ``REPRO_ENGINE`` environment variable still reaches the
    underlying detectors and repairs as a process-wide default).

    ``task_timeout=``/``task_retries=`` tune the parallel engine's
    supervision (per-task timeout in seconds and retry budget; see
    :mod:`repro.engine`); they default to the ``REPRO_TASK_TIMEOUT`` /
    ``REPRO_TASK_RETRIES`` environment variables and are ignored by the
    serial and sequential paths.
    """

    def __init__(self, database: Database | Relation,
                 engine: str | None = None, workers: int | None = None,
                 task_timeout: float | None = None,
                 task_retries: int | None = None) -> None:
        if isinstance(database, Relation):
            wrapped = Database()
            wrapped.add(database)
            database = wrapped
        self._engine = engine
        self._workers = workers
        self._task_timeout = task_timeout
        self._task_retries = task_retries
        self._database = database
        # detector caches (so engine plans and worker pools survive across
        # detect() calls); invalidated when constraints are registered.
        self._cfd_detectors: dict[str, CFDDetector] | None = None
        self._cind_detector: CINDDetector | None = None
        self._cfds: list[CFD] = []
        self._cinds: list[CIND] = []
        self._sql_engine: SQLEngine | None = None
        self._cost_model = CostModel()
        self._locked_cells: dict[tuple[str, int, str], Any] = {}
        self._last_report: ViolationReport | None = None
        self._last_repair: dict[str, Repair] = {}

    # -- registration -----------------------------------------------------------

    @property
    def database(self) -> Database:
        return self._database

    @property
    def cfds(self) -> list[CFD]:
        return list(self._cfds)

    @property
    def cinds(self) -> list[CIND]:
        return list(self._cinds)

    def register_cfds(self, cfds: str | Sequence[CFD | str]) -> list[CFD]:
        """Register CFDs given as objects, single strings, or a multi-line block."""
        added: list[CFD] = []
        if isinstance(cfds, str):
            added = parse_cfds(cfds)
        else:
            for cfd in cfds:
                added.append(parse_cfd(cfd) if isinstance(cfd, str) else cfd)
        for cfd in added:
            cfd.validate_against(self._database.relation(cfd.relation_name))
        self._cfds.extend(added)
        self._cfd_detectors = None
        # new CFDs may sharpen multiway-join variable ordering (FD hints);
        # rebuild the SQL engine lazily on the next query
        self._sql_engine = None
        return added

    def register_cinds(self, cinds: Sequence[CIND | str] | str) -> list[CIND]:
        """Register CINDs given as objects or textual definitions."""
        if isinstance(cinds, str):
            cinds = [cinds]
        added = [parse_cind(c) if isinstance(c, str) else c for c in cinds]
        for cind in added:
            cind.validate_against(self._database)
        self._cinds.extend(added)
        self._cind_detector = None
        return added

    def check_consistency(self) -> dict[str, Any]:
        """Static analysis of the registered CFDs before any data is touched."""
        by_relation: dict[str, list[CFD]] = {}
        for cfd in self._cfds:
            by_relation.setdefault(cfd.relation_name.lower(), []).append(cfd)
        satisfiable = all(is_satisfiable(group) for group in by_relation.values())
        conflicts = pairwise_conflicts(self._cfds)
        return {"satisfiable": satisfiable, "conflicts": conflicts}

    # -- detection ------------------------------------------------------------------

    def detect(self) -> ViolationReport:
        """Detect all violations of the registered constraints.

        CFD detection is SQL-based (the demo paper's approach) unless the
        session was created with an explicit ``engine``/``workers``, in
        which case the direct columnar detector runs on the chunked
        engine.
        """
        if not self._cfds and not self._cinds:
            raise ReproError("register constraints before calling detect()")
        reports: list[ViolationReport] = []
        if self._cfds:
            if self._engine is not None or self._workers is not None:
                reports.append(self._detect_cfds_direct())
            else:
                reports.append(SQLCFDDetector(self._database, self._cfds).detect())
        if self._cinds:
            if self._cind_detector is None:
                self._cind_detector = CINDDetector(self._database, self._cinds,
                                                   engine=self._engine,
                                                   workers=self._workers,
                                                   task_timeout=self._task_timeout,
                                                   task_retries=self._task_retries)
            reports.append(self._cind_detector.detect())
        merged = reports[0]
        for report in reports[1:]:
            merged = merged.merge(report)
        self._last_report = merged
        return merged

    def _detect_cfds_direct(self) -> ViolationReport:
        """Direct columnar CFD detection on the chunked engine (per relation)."""
        relation_names = {cfd.relation_name for cfd in self._cfds}
        report_name = next(iter(relation_names)) if len(relation_names) == 1 else "multiple"
        total = sum(len(self._database.relation(name)) for name in relation_names)
        report = ViolationReport(report_name, tuples_checked=total)
        if self._cfd_detectors is None:
            self._cfd_detectors = {}
            for cfd in self._cfds:
                key = cfd.relation_name.lower()
                if key not in self._cfd_detectors:
                    relevant = [c for c in self._cfds
                                if c.relation_name.lower() == key]
                    self._cfd_detectors[key] = CFDDetector(
                        self._database.relation(cfd.relation_name), relevant,
                        engine=self._engine, workers=self._workers,
                        task_timeout=self._task_timeout,
                        task_retries=self._task_retries)
        for cfd in self._cfds:
            detector = self._cfd_detectors[cfd.relation_name.lower()]
            report.extend(detector.detect_one(cfd))
        return report

    # -- ad-hoc queries --------------------------------------------------------------

    def sql(self, query: str, result_name: str = "result",
            explain: bool = False) -> Relation | tuple[Relation, str]:
        """Run a SQL query against the session's database.

        The session's ``engine=``/``workers=`` apply: single-table
        scan/filter/group/aggregate plans execute code-natively on the
        chunked engine (see :mod:`repro.relational.sql.columnar`), like
        :meth:`detect` / :meth:`propose_repair` / :meth:`discover_cfds`
        do.  The SQL engine (and with it the per-relation broadcast
        state) is kept for the session's lifetime, so repeated queries
        over unchanged relations pay no re-broadcast.

        With ``explain=True`` the return value is ``(result, report)``
        where *report* is the EXPLAIN text: chosen plan (code-native
        scan / hash join / row path, and why the faster paths were
        rejected), per-conjunct push-down pruning, and join shape.
        """
        from repro.relational.sql.explain import format_explain

        if self._sql_engine is None:
            # variable CFDs hold on every tuple matching their (all-wildcard
            # RHS) patterns, so their embedded FDs are safe variable-ordering
            # hints for multiway joins — ordering never changes results
            hints = [cfd.embedded_fd for cfd in self._cfds if cfd.is_variable()]
            self._sql_engine = SQLEngine(self._database, engine=self._engine,
                                         workers=self._workers, fds=hints,
                                         task_timeout=self._task_timeout,
                                         task_retries=self._task_retries)
        result = self._sql_engine.query(query, result_name=result_name,
                                        explain=explain)
        if not explain:
            return result
        info = self._sql_engine.last_explain
        return result, (format_explain(info) if info is not None else "plan: unknown")

    # -- discovery (profiling) ----------------------------------------------------------

    def discover_cfds(self, relation_name: str | None = None, min_support: int = 3,
                      max_lhs_size: int = 2, constant_only: bool = False,
                      register: bool = False) -> list[CFD]:
        """Profile one relation for CFDs (constant plus variable by default).

        The session's ``engine=``/``workers=`` apply: candidate-FD
        partitions are computed chunk-parallel on :mod:`repro.engine`
        when either knob (or ``REPRO_ENGINE``) asks for it — the
        discovered CFDs are identical either way.  With ``register=True``
        the discovered CFDs are registered on the session, ready for
        :meth:`detect` / :meth:`propose_repair`.
        """
        relation = self._resolve_relation(relation_name)
        discovery = CFDDiscovery(relation, min_support=min_support,
                                 max_lhs_size=max_lhs_size,
                                 engine=self._engine, workers=self._workers,
                                 task_timeout=self._task_timeout,
                                 task_retries=self._task_retries)
        discovered = (discovery.discover_constant_cfds() if constant_only
                      else discovery.discover())
        if register:
            self.register_cfds(discovered)
        return discovered

    # -- repair ------------------------------------------------------------------------

    def propose_repair(self, relation_name: str | None = None) -> Repair:
        """Compute (but do not apply) a candidate repair for one relation."""
        relation = self._resolve_relation(relation_name)
        cfds = [cfd for cfd in self._cfds
                if cfd.relation_name.lower() == relation.name.lower()]
        if not cfds:
            raise ReproError(f"no CFDs registered for relation {relation.name!r}")
        repair = BatchRepair(relation, cfds, cost_model=self._cost_model,
                             engine=self._engine, workers=self._workers,
                             task_timeout=self._task_timeout,
                             task_retries=self._task_retries).repair()
        self._last_repair[relation.name.lower()] = repair
        return repair

    def apply_repair(self, relation_name: str | None = None) -> Repair:
        """Re-compute the repair (honouring locked cells) and apply it in place."""
        relation = self._resolve_relation(relation_name)
        repair = self.propose_repair(relation.name)
        for change in repair.changes:
            key = (relation.name.lower(), change.tid, change.attribute)
            if key in self._locked_cells:
                continue  # user decision wins
            relation.update(change.tid, change.attribute, change.new_value)
        return repair

    # -- user interaction -----------------------------------------------------------------

    def confirm_cell(self, tid: int, attribute: str, relation_name: str | None = None) -> None:
        """The user asserts the current value of a cell is correct (lock it)."""
        relation = self._resolve_relation(relation_name)
        value = relation.value(tid, attribute)
        self._lock(relation, tid, attribute, value)

    def override_cell(self, tid: int, attribute: str, value: Any,
                      relation_name: str | None = None) -> None:
        """The user supplies the correct value of a cell (write it and lock it)."""
        relation = self._resolve_relation(relation_name)
        relation.update(tid, attribute, value)
        self._lock(relation, tid, attribute, value)

    def locked_cells(self) -> dict[tuple[str, int, str], Any]:
        """All cells the user has confirmed or overridden."""
        return dict(self._locked_cells)

    def _lock(self, relation: Relation, tid: int, attribute: str, value: Any) -> None:
        self._locked_cells[(relation.name.lower(), tid, attribute.lower())] = value
        self._cost_model.set_weight(tid, attribute, LOCKED_WEIGHT)

    # -- reporting -------------------------------------------------------------------------

    def metrics(self) -> dict[str, Any]:
        """The process-wide instrumentation snapshot (see :mod:`repro.obs`).

        Returns ``{"enabled": bool, "counters": {...}, "gauges": {...},
        "histograms": {...}, "trace": [...]}``.  Counters and histograms
        only accumulate while observability is on (``obs.enable()`` or
        ``REPRO_OBS=1``); the snapshot itself is always available.
        """
        snapshot = obs.metrics()
        snapshot["enabled"] = obs.enabled
        return snapshot

    def report(self) -> str:
        """A human-readable status report of the session."""
        lines = [f"Semandaq session over database {self._database.name!r}",
                 f"  relations: {', '.join(self._database.relation_names())}",
                 f"  constraints: {len(self._cfds)} CFD(s), {len(self._cinds)} CIND(s)",
                 f"  locked cells: {len(self._locked_cells)}"]
        if self._last_report is not None:
            lines.append(violation_report(self._last_report, self._database))
        for repair in self._last_repair.values():
            lines.append(repair_report(repair))
        return "\n".join(lines)

    # -- internals ------------------------------------------------------------------------

    def _resolve_relation(self, relation_name: str | None) -> Relation:
        if relation_name is not None:
            return self._database.relation(relation_name)
        names = self._database.relation_names()
        if len(names) != 1:
            raise ReproError(
                "the database has several relations; pass relation_name explicitly")
        return self._database.relation(names[0])
