"""Tests for CFDs, CINDs and eCFDs (structure and semantics)."""

import pytest

from repro.errors import ConstraintError
from repro.constraints.cfd import CFD, group_by_embedded_fd, merge_cfds
from repro.constraints.cind import CIND
from repro.constraints.ecfd import ECFD, AttributeCondition, ECFDPattern
from repro.constraints.fd import FunctionalDependency
from repro.constraints.tableau import PatternTuple
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema


@pytest.fixture
def customer():
    schema = RelationSchema("customer", [
        Attribute("cc"), Attribute("ac"), Attribute("phn"),
        Attribute("city"), Attribute("zip"), Attribute("street"),
    ])
    return Relation.from_dicts(schema, [
        {"cc": "44", "ac": "131", "phn": "1111", "city": "edi", "zip": "EH8", "street": "mayfield"},
        {"cc": "44", "ac": "131", "phn": "2222", "city": "edi", "zip": "EH8", "street": "mayfield"},
        {"cc": "44", "ac": "131", "phn": "3333", "city": "edi", "zip": "EH8", "street": "crichton"},
        {"cc": "01", "ac": "908", "phn": "4444", "city": "mh", "zip": "07974", "street": "mtn ave"},
        {"cc": "01", "ac": "908", "phn": "4444", "city": "nyc", "zip": "07974", "street": "mtn ave"},
    ])


class TestCFDStructure:
    def test_paper_example_uk_zip_determines_street(self, customer):
        cfd = CFD.single("customer", ["cc", "zip"], ["street"], {"cc": "44"})
        assert not cfd.holds_on(customer)

    def test_cfd_holds_when_pattern_excludes_dirty_part(self, customer):
        cfd = CFD.single("customer", ["cc", "zip"], ["street"], {"cc": "01"})
        assert cfd.holds_on(customer)

    def test_constant_rhs_pattern(self, customer):
        # US customers with area code 908 must live in city 'mh'
        cfd = CFD.single("customer", ["cc", "ac"], ["city"], {"cc": "01", "ac": "908", "city": "mh"})
        assert not cfd.holds_on(customer)

    def test_from_fd_is_all_wildcard(self):
        fd = FunctionalDependency("customer", ["zip"], ["city"])
        cfd = CFD.from_fd(fd)
        assert not cfd.is_constant()
        assert cfd.is_variable()

    def test_pattern_attribute_must_belong_to_fd(self):
        with pytest.raises(ConstraintError):
            CFD.single("customer", ["zip"], ["street"], {"country": "uk"})

    def test_is_constant(self):
        cfd = CFD.single("customer", ["cc"], ["city"], {"cc": "01", "city": "mh"})
        assert cfd.is_constant()
        assert not cfd.is_variable()

    def test_normalize_splits_rhs_and_patterns(self):
        cfd = CFD("customer", ["cc", "zip"], ["street", "city"],
                  [PatternTuple({"cc": "44"}), PatternTuple({"cc": "01"})])
        normalized = cfd.normalize()
        assert len(normalized) == 4
        assert all(len(n.rhs) == 1 and len(n.tableau) == 1 for n in normalized)

    def test_merge_requires_same_embedded_fd(self):
        a = CFD.single("customer", ["zip"], ["city"])
        b = CFD.single("customer", ["zip"], ["street"])
        with pytest.raises(ConstraintError):
            a.merge_with(b)

    def test_merge_cfds_groups_by_fd(self):
        a = CFD.single("customer", ["cc", "zip"], ["street"], {"cc": "44"})
        b = CFD.single("customer", ["cc", "zip"], ["street"], {"cc": "01"})
        c = CFD.single("customer", ["zip"], ["city"])
        merged = merge_cfds([a, b, c])
        assert len(merged) == 2
        sizes = sorted(len(m.tableau) for m in merged)
        assert sizes == [1, 2]
        assert len(group_by_embedded_fd([a, b, c])) == 2

    def test_applicable_tids(self, customer):
        cfd = CFD.single("customer", ["cc", "zip"], ["street"], {"cc": "44"})
        assert cfd.applicable_tids(customer) == {0, 1, 2}

    def test_repr_mentions_constants(self):
        cfd = CFD.single("customer", ["cc", "zip"], ["street"], {"cc": "44"}, name="phi1")
        text = repr(cfd)
        assert "cc='44'" in text and "phi1" in text


class TestCIND:
    @pytest.fixture
    def database(self):
        db = Database()
        cd_schema = RelationSchema("cd", [Attribute("album"), Attribute("price"), Attribute("genre")])
        book_schema = RelationSchema("book", [Attribute("title"), Attribute("price"), Attribute("format")])
        db.create_from_dicts(cd_schema, [
            {"album": "war and peace", "price": "20", "genre": "a-book"},
            {"album": "abbey road", "price": "15", "genre": "rock"},
            {"album": "hamlet", "price": "10", "genre": "a-book"},
        ])
        db.create_from_dicts(book_schema, [
            {"title": "war and peace", "price": "20", "format": "audio"},
            {"title": "hamlet", "price": "10", "format": "hardcover"},
        ])
        return db

    def test_paper_example(self, database):
        cind = CIND("cd", ["album", "price"], "book", ["title", "price"],
                    lhs_pattern={"genre": "a-book"}, rhs_pattern={"format": "audio"})
        # 'hamlet' has a book partner but with the wrong format -> violation
        assert not cind.holds_on(database)

    def test_condition_restricts_applicability(self, database):
        cind = CIND("cd", ["album"], "book", ["title"], lhs_pattern={"genre": "a-book"})
        # only audio books are constrained; 'abbey road' is irrelevant
        assert cind.holds_on(database)

    def test_standard_ind_degenerate(self, database):
        cind = CIND("cd", ["album"], "book", ["title"])
        assert cind.is_standard_ind()
        assert not cind.holds_on(database)

    def test_pattern_attributes_cannot_overlap_correspondence(self):
        with pytest.raises(ConstraintError):
            CIND("cd", ["album"], "book", ["title"], lhs_pattern={"album": "x"})

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ConstraintError):
            CIND("cd", ["album", "price"], "book", ["title"])

    def test_repr(self, database):
        cind = CIND("cd", ["album"], "book", ["title"], lhs_pattern={"genre": "a-book"},
                    name="psi1")
        assert "psi1" in repr(cind) and "genre" in repr(cind)


class TestECFD:
    def test_condition_semantics(self):
        cond = AttributeCondition.one_of(["44", "01"])
        assert cond.accepts("44") and not cond.accepts("86")
        neg = AttributeCondition.none_of(["86"])
        assert neg.accepts("44") and not neg.accepts("86")
        assert AttributeCondition.any().accepts(None)
        assert not cond.accepts(None)

    def test_empty_value_set_rejected(self):
        with pytest.raises(ConstraintError):
            AttributeCondition.one_of([])

    def test_disjunctive_lhs(self, customer):
        # for UK or US customers, zip -> street (dirty only within cc=44, EH8)
        ecfd = ECFD("customer", ["cc", "zip"], ["street"],
                    [{"cc": AttributeCondition.one_of(["44", "01"])}])
        violations = ecfd.violations(customer)
        assert violations and all(len(v) >= 2 for v in violations)

    def test_negation_excludes_dirty_part(self, customer):
        ecfd = ECFD("customer", ["cc", "zip"], ["street"],
                    [{"cc": AttributeCondition.none_of(["44"])}])
        assert ecfd.holds_on(customer)

    def test_rhs_condition_single_tuple_violation(self, customer):
        ecfd = ECFD("customer", ["cc", "ac"], ["city"],
                    [{"cc": AttributeCondition.equals("01"),
                      "ac": AttributeCondition.equals("908"),
                      "city": AttributeCondition.one_of(["mh"])}])
        violations = ecfd.violations(customer)
        assert (4,) in violations

    def test_from_cfd_equivalence(self, customer):
        cfd = CFD.single("customer", ["cc", "zip"], ["street"], {"cc": "44"})
        ecfd = ECFD.from_cfd(cfd)
        assert ecfd.holds_on(customer) == cfd.holds_on(customer)

    def test_unknown_attribute_raises(self, customer):
        ecfd = ECFD("customer", ["country"], ["city"])
        with pytest.raises(ConstraintError):
            ecfd.violations(customer)

    def test_pattern_repr(self):
        pattern = ECFDPattern({"cc": AttributeCondition.one_of(["44"])})
        assert "44" in repr(pattern)
