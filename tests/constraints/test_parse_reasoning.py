"""Tests for the constraint parser and the CFD reasoning algorithms."""

import pytest

from repro.errors import ConstraintParseError
from repro.constraints.cfd import CFD
from repro.constraints.parse import parse_cfd, parse_cfds, parse_cind, parse_fd
from repro.constraints.reasoning import (
    find_witness_tuple,
    implies,
    is_satisfiable,
    minimal_cover,
    pairwise_conflicts,
)
from repro.constraints.tableau import UNDERSCORE, PatternTuple


class TestParseFD:
    def test_basic(self):
        fd = parse_fd("customer: [cc, zip] -> [street]")
        assert fd.lhs == ("cc", "zip") and fd.rhs == ("street",)

    def test_bad_syntax(self):
        with pytest.raises(ConstraintParseError):
            parse_fd("customer cc -> street")


class TestParseCFD:
    def test_paper_example_one(self):
        cfd = parse_cfd("customer([cc='44', zip] -> [street])")
        assert cfd.lhs == ("cc", "zip")
        assert cfd.tableau[0].constant("cc") == "44"
        assert not cfd.tableau[0].is_constant_on("zip")

    def test_paper_example_two(self):
        cfd = parse_cfd("customer([cc='01', ac='908', phn] -> [street, city='mh', zip])")
        pattern = cfd.tableau[0]
        assert pattern.constant("city") == "mh"
        assert cfd.rhs == ("street", "city", "zip")

    def test_bare_constants(self):
        cfd = parse_cfd("customer([cc=44, zip] -> [street])")
        assert cfd.tableau[0].constant("cc") == "44"

    def test_explicit_wildcard(self):
        cfd = parse_cfd("customer([cc='44', zip=_] -> [street=_])")
        assert not cfd.tableau[0].is_constant_on("zip")
        assert not cfd.tableau[0].is_constant_on("street")

    def test_quoted_constant_with_spaces_and_quote(self):
        cfd = parse_cfd("customer([city='new york', zip] -> [street='o''hara st'])")
        assert cfd.tableau[0].constant("city") == "new york"
        assert cfd.tableau[0].constant("street") == "o'hara st"

    def test_fd_syntax_becomes_wildcard_cfd(self):
        cfd = parse_cfd("customer: [zip] -> [city]")
        assert cfd.is_variable()

    def test_multi_line_block_with_comments(self):
        cfds = parse_cfds(
            """
            # UK rule
            customer([cc='44', zip] -> [street])

            customer([cc='01', ac='908', phn] -> [street, city='mh', zip])  # US rule
            """
        )
        assert len(cfds) == 2

    def test_error_reports_line_number(self):
        with pytest.raises(ConstraintParseError, match="line 2"):
            parse_cfds("customer([cc='44', zip] -> [street])\n???")

    def test_garbage_rejected(self):
        with pytest.raises(ConstraintParseError):
            parse_cfd("this is not a cfd")


class TestParseCIND:
    def test_paper_example(self):
        cind = parse_cind(
            "CD(album, price; genre='a-book') SUBSET book(title, price; format='audio')")
        assert cind.lhs_attributes == ("album", "price")
        assert cind.rhs_attributes == ("title", "price")
        assert cind.lhs_pattern.constant("genre") == "a-book"
        assert cind.rhs_pattern.constant("format") == "audio"

    def test_unicode_subset_symbol(self):
        cind = parse_cind("cd(album) ⊆ book(title)")
        assert cind.is_standard_ind()

    def test_missing_subset_rejected(self):
        with pytest.raises(ConstraintParseError):
            parse_cind("cd(album) book(title)")


class TestSatisfiability:
    def test_empty_set_is_satisfiable(self):
        assert is_satisfiable([])

    def test_consistent_constants(self):
        cfds = [
            parse_cfd("customer([cc='44', zip] -> [street])"),
            parse_cfd("customer([cc='01', ac='908', phn] -> [street, city='mh', zip])"),
        ]
        assert is_satisfiable(cfds)
        witness = find_witness_tuple(cfds)
        assert witness is not None

    def test_wildcard_lhs_conflicting_rhs_constants_unsatisfiable(self):
        # every tuple must have city='mh' AND city='nyc' -> impossible
        cfds = [
            CFD.single("r", ["a"], ["city"], {"city": "mh"}),
            CFD.single("r", ["a"], ["city"], {"city": "nyc"}),
        ]
        assert not is_satisfiable(cfds)

    def test_conditioned_conflicts_are_satisfiable(self):
        # conflicting RHS constants but guarded by a constant LHS: a tuple
        # can simply avoid cc='44'
        cfds = [
            CFD.single("r", ["cc"], ["city"], {"cc": "44", "city": "mh"}),
            CFD.single("r", ["cc"], ["city"], {"cc": "44", "city": "nyc"}),
        ]
        assert is_satisfiable(cfds)
        witness = find_witness_tuple(cfds)
        assert str(witness["cc"]) != "44"

    def test_witness_respects_forced_constant(self):
        cfds = [CFD.single("r", ["a"], ["b"], {"b": "x"})]
        witness = find_witness_tuple(cfds)
        assert witness["b"] == "x"

    def test_mixed_relations_rejected(self):
        cfds = [CFD.single("r", ["a"], ["b"]), CFD.single("s", ["a"], ["b"])]
        with pytest.raises(Exception):
            find_witness_tuple(cfds)


class TestImplication:
    def test_reflexivity(self):
        cfd = parse_cfd("customer([cc='44', zip] -> [street])")
        assert implies([cfd], cfd)

    def test_fd_transitivity_lifts_to_cfds(self):
        sigma = [CFD.single("r", ["a"], ["b"]), CFD.single("r", ["b"], ["c"])]
        assert implies(sigma, CFD.single("r", ["a"], ["c"]))
        assert not implies(sigma, CFD.single("r", ["c"], ["a"]))

    def test_more_specific_pattern_is_implied(self):
        general = CFD.single("customer", ["cc", "zip"], ["street"])
        specific = CFD.single("customer", ["cc", "zip"], ["street"], {"cc": "44"})
        assert implies([general], specific)
        assert not implies([specific], general)

    def test_constant_propagation(self):
        sigma = [CFD.single("r", ["cc"], ["city"], {"cc": "01", "city": "mh"})]
        candidate = CFD.single("r", ["cc"], ["city"], {"cc": "01", "city": "mh"})
        assert implies(sigma, candidate)
        other_city = CFD.single("r", ["cc"], ["city"], {"cc": "01", "city": "nyc"})
        assert not implies(sigma, other_city)

    def test_unrelated_cfd_not_implied(self):
        sigma = [CFD.single("r", ["a"], ["b"])]
        assert not implies(sigma, CFD.single("r", ["a"], ["c"]))


class TestMinimalCoverAndConflicts:
    def test_redundant_cfd_removed(self):
        general = CFD.single("customer", ["cc", "zip"], ["street"])
        specific = CFD.single("customer", ["cc", "zip"], ["street"], {"cc": "44"})
        cover = minimal_cover([general, specific])
        assert len(cover) == 1
        assert not cover[0].tableau[0].constants()

    def test_transitive_redundancy_removed(self):
        sigma = [CFD.single("r", ["a"], ["b"]), CFD.single("r", ["b"], ["c"]),
                 CFD.single("r", ["a"], ["c"])]
        cover = minimal_cover(sigma)
        assert len(cover) == 2

    def test_pairwise_conflicts_found(self):
        first = CFD.single("r", ["cc"], ["city"], {"cc": "44", "city": "mh"})
        second = CFD.single("r", ["cc"], ["city"], {"cc": "44", "city": "nyc"})
        third = CFD.single("r", ["cc"], ["city"], {"cc": "01", "city": "la"})
        conflicts = pairwise_conflicts([first, second, third])
        assert len(conflicts) == 1
