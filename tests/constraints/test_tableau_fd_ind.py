"""Tests for pattern tableaux, classical FDs and INDs."""

import pytest

from repro.errors import ConstraintError
from repro.constraints.fd import FunctionalDependency, closure, implies, minimal_cover
from repro.constraints.ind import InclusionDependency
from repro.constraints.tableau import UNDERSCORE, PatternTuple, is_wildcard, normalize_pattern
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import NULL


@pytest.fixture
def customer():
    schema = RelationSchema("customer", [
        Attribute("cc"), Attribute("ac"), Attribute("phn"),
        Attribute("city"), Attribute("zip"), Attribute("street"),
    ])
    return Relation.from_dicts(schema, [
        {"cc": "44", "ac": "131", "phn": "1111", "city": "edi", "zip": "EH8", "street": "mayfield"},
        {"cc": "44", "ac": "131", "phn": "2222", "city": "edi", "zip": "EH8", "street": "mayfield"},
        {"cc": "44", "ac": "131", "phn": "3333", "city": "edi", "zip": "EH8", "street": "crichton"},
        {"cc": "01", "ac": "908", "phn": "4444", "city": "mh", "zip": "07974", "street": "mtn ave"},
    ])


class TestPatternTuple:
    def test_wildcard_normalization(self):
        assert normalize_pattern("_") is UNDERSCORE
        assert normalize_pattern(None) is UNDERSCORE
        assert normalize_pattern("44") == "44"

    def test_matches_constants(self, customer):
        pattern = PatternTuple({"cc": "44", "zip": UNDERSCORE})
        rows = customer.tuples()
        assert pattern.matches(rows[0])
        assert not pattern.matches(rows[3])

    def test_null_never_matches_constant(self, customer):
        tid = customer.insert_dict({"cc": NULL, "zip": "EH8"})
        pattern = PatternTuple({"cc": "44"})
        assert not pattern.matches(customer.tuple(tid))

    def test_constant_comparison_tolerates_numeric_strings(self, customer):
        pattern = PatternTuple({"cc": 44})
        assert pattern.matches(customer.tuples()[0])

    def test_unmentioned_attribute_is_wildcard(self):
        pattern = PatternTuple({"cc": "44"})
        assert is_wildcard(pattern.pattern("zip"))

    def test_constants_and_wildcard_accessors(self):
        pattern = PatternTuple({"cc": "44", "zip": "_"})
        assert pattern.constants() == {"cc": "44"}
        assert pattern.wildcard_attributes() == ["zip"]
        with pytest.raises(ConstraintError):
            pattern.constant("zip")

    def test_compatibility_and_generality(self):
        general = PatternTuple({"cc": UNDERSCORE, "zip": UNDERSCORE})
        specific = PatternTuple({"cc": "44", "zip": "EH8"})
        other = PatternTuple({"cc": "01"})
        assert general.more_general_than(specific, ["cc", "zip"])
        assert not specific.more_general_than(general, ["cc", "zip"])
        assert specific.is_compatible_with(general, ["cc", "zip"])
        assert not specific.is_compatible_with(other, ["cc"])

    def test_equality_and_hash(self):
        assert PatternTuple({"cc": "44"}) == PatternTuple({"CC": "44"})
        assert hash(PatternTuple({"cc": "44"})) == hash(PatternTuple({"CC": "44"}))


class TestFunctionalDependency:
    def test_holds_on_clean_part(self, customer):
        fd = FunctionalDependency("customer", ["zip"], ["city"])
        assert fd.holds_on(customer)

    def test_detects_violation(self, customer):
        fd = FunctionalDependency("customer", ["zip"], ["street"])
        assert not fd.holds_on(customer)
        pairs = fd.violating_pairs(customer)
        assert len(pairs) == 2  # tuple 3 conflicts with tuples 1 and 2

    def test_unknown_attribute_raises(self, customer):
        fd = FunctionalDependency("customer", ["country"], ["city"])
        with pytest.raises(ConstraintError):
            fd.holds_on(customer)

    def test_rhs_subset_of_lhs_rejected(self):
        with pytest.raises(ConstraintError):
            FunctionalDependency("r", ["a", "b"], ["a"])

    def test_decompose(self):
        fd = FunctionalDependency("r", ["a"], ["b", "c"])
        parts = fd.decompose()
        assert len(parts) == 2 and all(len(p.rhs) == 1 for p in parts)

    def test_empty_sides_rejected(self):
        with pytest.raises(ConstraintError):
            FunctionalDependency("r", [], ["a"])
        with pytest.raises(ConstraintError):
            FunctionalDependency("r", ["a"], [])


class TestFDReasoning:
    def test_closure(self):
        fds = [FunctionalDependency("r", ["a"], ["b"]),
               FunctionalDependency("r", ["b"], ["c"])]
        assert closure(["a"], fds) == {"a", "b", "c"}

    def test_implies_transitivity(self):
        fds = [FunctionalDependency("r", ["a"], ["b"]),
               FunctionalDependency("r", ["b"], ["c"])]
        assert implies(fds, FunctionalDependency("r", ["a"], ["c"]))
        assert not implies(fds, FunctionalDependency("r", ["c"], ["a"]))

    def test_implication_is_per_relation(self):
        fds = [FunctionalDependency("s", ["a"], ["b"])]
        assert not implies(fds, FunctionalDependency("r", ["a"], ["b"]))

    def test_minimal_cover_removes_redundancy(self):
        fds = [FunctionalDependency("r", ["a"], ["b"]),
               FunctionalDependency("r", ["b"], ["c"]),
               FunctionalDependency("r", ["a"], ["c"])]
        cover = minimal_cover(fds)
        assert FunctionalDependency("r", ["a"], ["c"]) not in cover
        assert len(cover) == 2

    def test_minimal_cover_reduces_lhs(self):
        fds = [FunctionalDependency("r", ["a"], ["b"]),
               FunctionalDependency("r", ["a", "c"], ["b"])]
        cover = minimal_cover(fds)
        assert cover == [FunctionalDependency("r", ["a"], ["b"])]


class TestInclusionDependency:
    @pytest.fixture
    def database(self):
        db = Database()
        cd_schema = RelationSchema("cd", [Attribute("album"), Attribute("price"), Attribute("genre")])
        book_schema = RelationSchema("book", [Attribute("title"), Attribute("price"), Attribute("format")])
        db.create_from_dicts(cd_schema, [
            {"album": "x", "price": "9", "genre": "a-book"},
            {"album": "y", "price": "7", "genre": "rock"},
        ])
        db.create_from_dicts(book_schema, [
            {"title": "x", "price": "9", "format": "audio"},
        ])
        return db

    def test_holds(self, database):
        ind = InclusionDependency("cd", ["album"], "book", ["title"])
        assert not ind.holds_on(database)
        assert ind.violating_tids(database) == [1]

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ConstraintError):
            InclusionDependency("cd", ["a", "b"], "book", ["x"])

    def test_null_lhs_skipped(self, database):
        database.relation("cd").insert_dict({"album": NULL, "price": "1", "genre": "rock"})
        ind = InclusionDependency("cd", ["album"], "book", ["title"])
        assert 2 not in ind.violating_tids(database)

    def test_unknown_attribute_raises(self, database):
        ind = InclusionDependency("cd", ["nope"], "book", ["title"])
        with pytest.raises(ConstraintError):
            ind.holds_on(database)
