"""Tests for the high-level facade (repro.core and the top-level package)."""

import pytest

import repro
from repro.core.pipeline import (
    CleaningPipeline,
    detect_violations,
    discover_cfds,
    match_records,
    repair,
)
from repro.datagen.cards import CardBillingGenerator
from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.datagen.orders import OrdersGenerator
from repro.detection.cfd_detect import detect_cfd_violations
from repro.errors import ReproError
from repro.matching.rules import Comparator, MatchingRule


class TestTopLevelPackage:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in ("Relation", "CFD", "detect_violations", "repair", "SemandaqSession"):
            assert hasattr(repro, name)


class TestDetectAndRepairFacade:
    @pytest.fixture
    def workload(self):
        generator = CustomerGenerator(seed=41)
        clean = generator.generate(200)
        noise = inject_noise(clean, rate=0.04, attributes=["street", "city"], seed=1)
        return generator, clean, noise.dirty

    def test_detect_violations_with_textual_cfds(self, workload):
        _, _, dirty = workload
        report = detect_violations(dirty, cfds=["customer([cc='44', zip] -> [street])"])
        assert report.tuples_checked == len(dirty)

    def test_detect_violations_requires_constraints(self, workload):
        _, _, dirty = workload
        with pytest.raises(ReproError):
            detect_violations(dirty)

    def test_detect_violations_on_database_with_cinds(self):
        database, expected = OrdersGenerator(seed=2).generate(200, violation_rate=0.1)
        report = detect_violations(database, cinds=[OrdersGenerator.canonical_cind()])
        assert len(report.cind_violations()) == expected

    def test_cind_detection_requires_database(self, workload):
        _, _, dirty = workload
        with pytest.raises(ReproError):
            detect_violations(dirty, cinds=[OrdersGenerator.canonical_cind()])

    def test_repair_facade(self, workload):
        generator, _, dirty = workload
        result = repair(dirty, generator.canonical_cfds())
        assert detect_cfd_violations(result.relation, generator.canonical_cfds()).is_clean()

    def test_pipeline_with_quality(self, workload):
        generator, clean, dirty = workload
        pipeline = CleaningPipeline(generator.canonical_cfds())
        result = pipeline.run(dirty, clean=clean)
        assert not result.report.is_clean()
        assert result.quality is not None and result.quality.recall > 0.5
        assert "precision" in repr(result.quality)
        assert "violations" in result.summary()

    def test_pipeline_needs_cfds(self):
        with pytest.raises(ReproError):
            CleaningPipeline([])


class TestDiscoveryAndMatchingFacade:
    def test_discover_cfds_facade(self):
        relation = CustomerGenerator(seed=41).generate(150)
        constant_only = discover_cfds(relation, min_support=5, constant_only=True)
        both = discover_cfds(relation, min_support=5)
        assert len(both) >= len(constant_only)

    def test_match_records_with_rules(self):
        workload = CardBillingGenerator(seed=3).generate(holders=30, dirty_rate=0.3)
        rules = [
            MatchingRule.build([Comparator.equality("phn")], ["addr"]),
            MatchingRule.build([Comparator.equality("email")], ["fn", "ln"]),
            MatchingRule.build(
                [Comparator.equality("ln"), Comparator.equality("addr"),
                 Comparator.similar("fn", threshold=0.7)],
                ["fn", "ln", "addr", "phn", "email"]),
        ]
        decisions = match_records(workload.card, workload.billing, rules=rules,
                                  target=["fn", "ln", "addr", "phn", "email"])
        predicted = {d.pair for d in decisions}
        assert predicted & workload.true_matches

    def test_match_records_needs_rules_or_rcks(self):
        workload = CardBillingGenerator(seed=3).generate(holders=5)
        with pytest.raises(ReproError):
            match_records(workload.card, workload.billing)
