"""Tests for consistent query answering (repairs, rewriting, engine)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cqa.answer import CQAEngine, SelectionQuery
from repro.cqa.repairs import count_key_repairs, enumerate_key_repairs, key_conflict_groups
from repro.cqa.rewriting import certain_answers_rewriting
from repro.errors import CQAError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import NULL


@pytest.fixture
def accounts():
    schema = RelationSchema("account", [
        Attribute("acct"), Attribute("owner"), Attribute("city"),
    ])
    return Relation.from_dicts(schema, [
        {"acct": "a1", "owner": "ann", "city": "edi"},
        {"acct": "a1", "owner": "ann", "city": "ldn"},   # conflicting city
        {"acct": "a2", "owner": "bob", "city": "nyc"},
        {"acct": "a3", "owner": "cid", "city": "edi"},
        {"acct": "a3", "owner": "cid", "city": "edi"},   # duplicate, not a conflict
    ])


class TestRepairs:
    def test_conflict_groups(self, accounts):
        groups = key_conflict_groups(accounts, ["acct"])
        assert groups == [[0, 1]]

    def test_count_and_enumerate(self, accounts):
        assert count_key_repairs(accounts, ["acct"]) == 2
        repairs = list(enumerate_key_repairs(accounts, ["acct"]))
        assert len(repairs) == 2
        for repaired in repairs:
            assert key_conflict_groups(repaired, ["acct"]) == []

    def test_clean_relation_has_one_repair(self, accounts):
        clean = accounts.filter(lambda t: t.tid != 1)
        repairs = list(enumerate_key_repairs(clean, ["acct"]))
        assert len(repairs) == 1
        assert len(repairs[0]) == len(clean)

    def test_enumeration_limit(self, accounts):
        with pytest.raises(CQAError):
            list(enumerate_key_repairs(accounts, ["acct"], max_repairs=1))

    def test_null_keys_not_conflicting(self, accounts):
        accounts.insert_dict({"acct": NULL, "owner": "x", "city": "a"})
        accounts.insert_dict({"acct": NULL, "owner": "y", "city": "b"})
        assert key_conflict_groups(accounts, ["acct"]) == [[0, 1]]


class TestCertainAnswers:
    def test_certain_vs_naive(self, accounts):
        engine = CQAEngine(accounts, ["acct"])
        query = SelectionQuery(project=("owner", "city"), equalities={"owner": "ann"})
        naive = engine.naive_answers(query)
        certain = engine.certain_answers(query)
        assert ("ann", "edi") in naive and ("ann", "ldn") in naive
        assert certain == set()  # the city of a1 is uncertain

    def test_projection_away_from_conflict_is_certain(self, accounts):
        engine = CQAEngine(accounts, ["acct"])
        query = SelectionQuery(project=("owner",), equalities={"owner": "ann"})
        assert engine.certain_answers(query) == {("ann",)}

    def test_untouched_tuples_are_certain(self, accounts):
        engine = CQAEngine(accounts, ["acct"])
        query = SelectionQuery(project=("owner", "city"), equalities={"city": "nyc"})
        assert engine.certain_answers(query) == {("bob", "nyc")}

    def test_possible_answers_superset(self, accounts):
        engine = CQAEngine(accounts, ["acct"])
        query = SelectionQuery(project=("owner", "city"))
        certain = engine.certain_answers(query)
        possible = engine.possible_answers(query)
        assert certain <= possible
        assert ("ann", "ldn") in possible

    def test_rewriting_matches_enumeration(self, accounts):
        engine = CQAEngine(accounts, ["acct"])
        for query in (
            SelectionQuery(project=("owner",)),
            SelectionQuery(project=("owner", "city")),
            SelectionQuery(project=("city",), equalities={"owner": "ann"}),
            SelectionQuery(project=("owner",), equalities={"city": "edi"}),
        ):
            assert engine.certain_answers(query) == engine.certain_answers_rewritten(query)

    def test_predicate_query(self, accounts):
        engine = CQAEngine(accounts, ["acct"])
        query = SelectionQuery(project=("owner",), predicate=lambda t: t["city"] != "nyc")
        assert ("cid",) in engine.certain_answers_rewritten(query)

    def test_empty_projection_rejected(self):
        with pytest.raises(CQAError):
            SelectionQuery(project=())

    owners = st.sampled_from(["ann", "bob", "cid"])
    cities = st.sampled_from(["edi", "ldn", "nyc"])
    rows = st.lists(st.tuples(st.sampled_from(["a1", "a2", "a3"]), owners, cities),
                    min_size=0, max_size=9)

    @given(rows)
    @settings(max_examples=40, deadline=None)
    def test_rewriting_equals_enumeration_randomized(self, data):
        schema = RelationSchema("account", [
            Attribute("acct"), Attribute("owner"), Attribute("city")])
        relation = Relation.from_rows(schema, data)
        query = SelectionQuery(project=("owner",), equalities={"city": "edi"})
        try:
            engine = CQAEngine(relation, ["acct"])
            enumerated = engine.certain_answers(query, max_repairs=100000)
        except CQAError:
            return  # too many repairs for the oracle; skip
        rewritten = certain_answers_rewriting(relation, ["acct"], query)
        assert enumerated == rewritten
