"""Tests for the synthetic workload generators and noise injection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.cards import CardBillingGenerator
from repro.datagen.customer import CustomerGenerator
from repro.datagen.noise import inject_noise
from repro.datagen.orders import OrdersGenerator
from repro.detection.cfd_detect import detect_cfd_violations
from repro.detection.cind_detect import detect_cind_violations
from repro.errors import ReproError


class TestCustomerGenerator:
    def test_requested_size(self):
        relation = CustomerGenerator(seed=1).generate(250)
        assert len(relation) == 250
        assert relation.schema.has_attribute("zip")

    def test_clean_data_satisfies_canonical_cfds(self):
        generator = CustomerGenerator(seed=1)
        relation = generator.generate(400)
        report = detect_cfd_violations(relation, generator.canonical_cfds())
        assert report.is_clean()

    def test_deterministic_given_seed(self):
        first = CustomerGenerator(seed=4).generate(50).to_dicts()
        second = CustomerGenerator(seed=4).generate(50).to_dicts()
        assert first == second

    def test_different_seeds_differ(self):
        first = CustomerGenerator(seed=4).generate(50).to_dicts()
        second = CustomerGenerator(seed=5).generate(50).to_dicts()
        assert first != second

    def test_contains_both_countries(self):
        relation = CustomerGenerator(seed=1).generate(300)
        assert relation.active_domain("cc") == {"44", "01"}

    def test_extended_cfds_for_tableau_experiments(self):
        cfds = CustomerGenerator.extended_cfds(10)
        assert len(cfds) == 10
        assert all(cfd.lhs == ("cc", "zip") for cfd in cfds)


class TestNoiseInjection:
    def test_rate_zero_changes_nothing(self):
        clean = CustomerGenerator(seed=2).generate(100)
        result = inject_noise(clean, rate=0.0)
        assert result.errors == []
        assert result.dirty.to_dicts() == clean.to_dicts()

    def test_errors_recorded_match_differences(self):
        clean = CustomerGenerator(seed=2).generate(150)
        result = inject_noise(clean, rate=0.05, attributes=["street", "city"], seed=3)
        assert result.errors
        for error in result.errors:
            assert str(result.dirty.value(error.tid, error.attribute)) == str(error.dirty_value)
            assert str(clean.value(error.tid, error.attribute)) == str(error.clean_value)

    def test_clean_relation_untouched(self):
        clean = CustomerGenerator(seed=2).generate(100)
        snapshot = clean.to_dicts()
        inject_noise(clean, rate=0.2, seed=3)
        assert clean.to_dicts() == snapshot

    def test_noise_creates_detectable_violations(self):
        generator = CustomerGenerator(seed=2)
        clean = generator.generate(300)
        result = inject_noise(clean, rate=0.05, attributes=["street", "city"], seed=3)
        report = detect_cfd_violations(result.dirty, generator.canonical_cfds())
        assert not report.is_clean()

    def test_invalid_rate_rejected(self):
        clean = CustomerGenerator(seed=2).generate(10)
        with pytest.raises(ReproError):
            inject_noise(clean, rate=1.5)
        with pytest.raises(ReproError):
            inject_noise(clean, rate=0.1, kind="gremlins")

    def test_null_noise_kind(self):
        clean = CustomerGenerator(seed=2).generate(100)
        result = inject_noise(clean, rate=0.1, attributes=["street"], kind="null", seed=3)
        assert any(result.dirty.null_count("street") > 0 for _ in [0])

    def test_typo_noise_kind(self):
        clean = CustomerGenerator(seed=2).generate(100)
        result = inject_noise(clean, rate=0.1, attributes=["street"], kind="typo", seed=3)
        assert result.errors
        assert all(not str(e.dirty_value) == str(e.clean_value) for e in result.errors)

    @given(st.floats(min_value=0.0, max_value=0.3), st.integers(0, 10))
    @settings(max_examples=15, deadline=None)
    def test_achieved_rate_close_to_requested(self, rate, seed):
        clean = CustomerGenerator(seed=2).generate(120)
        result = inject_noise(clean, rate=rate, seed=seed)
        requested_cells = int(round(rate * len(clean) * len(clean.schema)))
        assert len(result.errors) <= requested_cells
        # domain noise always finds a different value for these attributes,
        # so nearly every selected cell becomes an error
        assert len(result.errors) >= int(0.8 * requested_cells) - 1


class TestOrdersGenerator:
    def test_violation_count_matches_detection(self):
        generator = OrdersGenerator(seed=6)
        database, expected = generator.generate(cd_count=400, violation_rate=0.1)
        report = detect_cind_violations(database, [generator.canonical_cind()])
        assert len(report.cind_violations()) == expected

    def test_zero_violation_rate_is_clean(self):
        generator = OrdersGenerator(seed=6)
        database, expected = generator.generate(cd_count=200, violation_rate=0.0)
        assert expected == 0
        assert detect_cind_violations(database, [generator.canonical_cind()]).is_clean()

    def test_relations_present(self):
        database, _ = OrdersGenerator(seed=6).generate(cd_count=50)
        assert database.has_relation("cd") and database.has_relation("book")


class TestCardBillingGenerator:
    def test_ground_truth_covers_all_billing_tuples(self):
        workload = CardBillingGenerator(seed=8).generate(holders=40, billings_per_holder=2)
        assert len(workload.true_matches) == len(workload.billing)

    def test_dirty_rate_zero_keeps_exact_copies(self):
        workload = CardBillingGenerator(seed=8).generate(holders=30, dirty_rate=0.0)
        for card_tid, billing_tid in workload.true_matches:
            card_row = workload.card.tuple(card_tid)
            billing_row = workload.billing.tuple(billing_tid)
            for attribute in ("fn", "ln", "addr", "phn", "email"):
                assert card_row[attribute] == billing_row[attribute]

    def test_dirty_rate_one_perturbs_most_records(self):
        workload = CardBillingGenerator(seed=8).generate(holders=40, dirty_rate=1.0)
        differing = 0
        for card_tid, billing_tid in workload.true_matches:
            card_row = workload.card.tuple(card_tid)
            billing_row = workload.billing.tuple(billing_tid)
            if any(str(card_row[a]) != str(billing_row[a])
                   for a in ("fn", "ln", "addr", "phn", "email")):
                differing += 1
        assert differing >= 0.9 * len(workload.true_matches)

    def test_deterministic(self):
        first = CardBillingGenerator(seed=8).generate(holders=20)
        second = CardBillingGenerator(seed=8).generate(holders=20)
        assert first.billing.to_dicts() == second.billing.to_dicts()
